//! Value-generation strategies: the composable core of the harness.

use std::marker::PhantomData;

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange, UniformSample};

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — uniform over the whole domain.
pub struct Any<T>(PhantomData<T>);

/// Uniform values over the entire domain of `T` (`bool`, the unsigned
/// integers, `f64` in `[0, 1)`).
pub fn any<T: UniformSample>() -> Any<T> {
    Any(PhantomData)
}

impl<T: UniformSample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random::<T>()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union of same-valued strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.random_range(0..self.total);
        for (w, arm) in &self.arms {
            if roll < *w {
                return arm.sample(rng);
            }
            roll -= *w;
        }
        unreachable!("roll exceeded total weight")
    }
}

/// Half-open numeric ranges are strategies.
impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Inclusive numeric ranges are strategies.
impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_union() {
        let mut rng = TestRng::for_test("strategy::tests");
        let s = (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        for _ in 0..500 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
        }
        let u = Union::new(vec![(3, (0u32..5).boxed()), (1, (10u32..15).boxed())]);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..2_000 {
            let v = u.sample(&mut rng);
            assert!(v < 5 || (10..15).contains(&v));
            if v < 5 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > high, "3:1 weighting not respected ({low} vs {high})");
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }
}
