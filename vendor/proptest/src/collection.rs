//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with a strategy-driven length (any
/// `usize`-valued strategy works, typically a range like `0..32`).
pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

/// Output of [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_follow_size_strategy() {
        let mut rng = TestRng::for_test("collection::tests");
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }
}
