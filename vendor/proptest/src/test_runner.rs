//! Configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-property configuration, mirroring the real crate's field names.
/// Carries more than one field (like the real crate) so the idiomatic
/// `ProptestConfig { cases: N, ..Default::default() }` construction
/// keeps a purpose.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections per passing
    /// case (scaled by `cases`); mirrors the real crate's global-reject
    /// budget.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 1_024 }
    }
}

/// Resolve the effective case count: `PROPTEST_CASES` overrides the
/// configured value.
pub fn case_count(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// The RNG driving a property: deterministic per test name so failures
/// reproduce, perturbable with `PROPTEST_SEED`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test (pass `module_path!()::test_name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, mixed with the optional user seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let user: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Self { inner: StdRng::seed_from_u64(h ^ user) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
