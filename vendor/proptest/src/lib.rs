//! Vendored miniature property-testing harness.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of the `proptest` API the workspace's test
//! suites use: the [`proptest!`] macro, strategies built from ranges,
//! tuples, [`strategy::Strategy::prop_map`], [`prop_oneof!`],
//! [`collection::vec()`] and [`strategy::any`], plus the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with its inputs printed,
//!   which are reproducible from the fixed per-test seed;
//! * **uniform sampling only** — no bias toward boundary values;
//! * cases default to 64 per property (the real crate's 256 is mostly
//!   spent feeding the shrinker we don't have). `PROPTEST_CASES`
//!   overrides the count, `PROPTEST_SEED` the base seed.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In a test suite this fn would also carry #[test].
//!     fn addition_commutes(a in 0u32..1_000, b in 0u32..1_000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() { addition_commutes(); }
//! ```

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — it does not count
    /// against the case budget.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Outcome type of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError, TestCaseResult,
    };
}

/// Run a block of property tests. See the crate docs for the accepted
/// grammar; it mirrors the real `proptest!` macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one zero-argument test fn per
/// property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::case_count(config.cases);
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cases.saturating_add(config.max_global_rejects).max(64);
            while passed < cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest {}: gave up after {} attempts ({} cases passed) — \
                         prop_assume! rejects nearly every input",
                        stringify!($name), attempts, passed
                    );
                }
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let __proptest_inputs = {
                    #[allow(unused_mut)]
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", &$arg));
                    )*
                    s
                };
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                        stringify!($name), passed, msg, __proptest_inputs
                    ),
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => $crate::prop_assert!(
                left == right,
                "assertion failed: {:?} != {:?}", left, right
            ),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => $crate::prop_assert!(
                left == right,
                "assertion failed: {:?} != {:?}: {}", left, right, format!($($fmt)*)
            ),
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => $crate::prop_assert!(
                left != right,
                "assertion failed: {:?} == {:?}", left, right
            ),
        }
    };
}

/// Discard the current case (it does not count against the budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` or unweighted `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
