//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API surface it consumes — nothing more:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point the
//!   workspace uses;
//! * [`Rng::random`] for `f64` / `f32` / `bool` and the unsigned
//!   integer types;
//! * [`Rng::random_range`] over half-open and inclusive integer ranges.
//!
//! The generator is *not* cryptographic and the streams differ from the
//! real `rand::rngs::StdRng` (which is ChaCha12); every consumer in
//! this workspace only relies on seeded determinism and reasonable
//! uniformity, both of which hold.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random::<u64>(), b.random::<u64>());
//! let x: f64 = a.random();
//! assert!((0.0..1.0).contains(&x));
//! assert!((10..20).contains(&a.random_range(10u32..20)));
//! ```

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the
/// vendored equivalent of `StandardUniform: Distribution<T>`.
pub trait UniformSample: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range of a 128-bit-wide type
                    // cannot occur for the types below; full u64 range:
                    return (rng.next_u64() as u128) as $t;
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform random value inside `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64. Passes BigCrush; not
    /// cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(1u8..=3);
            assert!((1..=3).contains(&w));
            seen_low |= w == 1;
            seen_high |= w == 3;
            let f = r.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&f));
        }
        assert!(seen_low && seen_high, "inclusive bounds never sampled");
    }
}
