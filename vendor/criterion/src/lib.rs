//! Vendored minimal benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! stands in for `criterion` with the API surface the workspace's
//! benches use: [`Criterion::benchmark_group`] /
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both forms).
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples; the per-iteration median, mean, and
//! min are printed. No plots, no statistics beyond that — enough to
//! compare hot paths locally.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().sample_size(10);
//! c.bench_function("shift", |b| b.iter(|| std::hint::black_box(1u64 << 7)));
//! ```

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on —
/// every batch re-runs setup in this implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { sample_size, samples_ns: Vec::new() }
    }

    /// Time `routine` repeatedly, recording per-iteration cost.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for ~5 ms per sample.
        let t0 = Instant::now();
        let mut warmup_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = t0.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let batch = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns.push(s.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up: one run.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let s = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(s.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples_ns.sort_by(f64::total_cmp);
        let n = self.samples_ns.len();
        let median = self.samples_ns[n / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / n as f64;
        let min = self.samples_ns[0];
        println!(
            "{name:<40} time: [median {} mean {} min {}] ({n} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accept (and ignore) the CLI arguments cargo-bench passes.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { criterion: self, sample_size: None }
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_bench(name.into(), self.sample_size, f);
    }
}

fn run_bench(name: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    b.report(&name);
}

/// A named collection of benchmarks with an optional sample-size
/// override.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(format!("  {}", name.into()), n, f);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Define a benchmark group — supports both the positional and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
        });
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 1u64, |x| std::hint::black_box(x + 1), BatchSize::SmallInput);
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
