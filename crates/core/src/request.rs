//! Ride requests (§VII): "a ride request is characterised by the
//! following information: source location, destination location,
//! departure time window and walking threshold."

use xar_geo::GeoPoint;

use crate::error::XarError;

/// A rider's request for a shared ride.
#[derive(Debug, Clone)]
pub struct RideRequest {
    /// Where the rider starts.
    pub source: GeoPoint,
    /// Where the rider wants to go.
    pub destination: GeoPoint,
    /// Earliest acceptable pick-up time, absolute seconds.
    pub window_start_s: f64,
    /// Latest acceptable pick-up time, absolute seconds.
    pub window_end_s: f64,
    /// Maximum total walking distance (pick-up plus drop-off) the rider
    /// accepts, metres.
    pub walk_limit_m: f64,
}

impl RideRequest {
    /// Validate the request parameters.
    pub fn validate(&self) -> Result<(), XarError> {
        if !(self.window_start_s.is_finite() && self.window_end_s.is_finite()) {
            return Err(XarError::InvalidRequest("time window must be finite"));
        }
        if self.window_end_s < self.window_start_s {
            return Err(XarError::InvalidRequest("time window end precedes start"));
        }
        if !(self.walk_limit_m.is_finite() && self.walk_limit_m >= 0.0) {
            return Err(XarError::InvalidRequest("walking limit must be non-negative"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RideRequest {
        RideRequest {
            source: GeoPoint::new(40.71, -74.00),
            destination: GeoPoint::new(40.72, -73.99),
            window_start_s: 100.0,
            window_end_s: 700.0,
            walk_limit_m: 400.0,
        }
    }

    #[test]
    fn valid_request_passes() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn inverted_window_fails() {
        let mut r = base();
        r.window_end_s = 50.0;
        assert!(matches!(r.validate(), Err(XarError::InvalidRequest(_))));
    }

    #[test]
    fn degenerate_window_is_allowed() {
        let mut r = base();
        r.window_end_s = r.window_start_s;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn negative_walk_limit_fails() {
        let mut r = base();
        r.walk_limit_m = -1.0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn nan_window_fails() {
        let mut r = base();
        r.window_start_s = f64::NAN;
        assert!(r.validate().is_err());
    }
}
