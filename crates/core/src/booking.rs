//! Ride booking (§VIII.B).
//!
//! When a rider confirms a match, new via-points are created at the
//! pick-up and drop-off landmarks, the route is updated with freshly
//! computed shortest paths (at most 4 — "since it is done in the
//! back-end after the booking is confirmed, it does not affect the user
//! experience"), the detour budget and seat count are decremented, and
//! the pass-through / reachable clusters of the ride are recomputed —
//! "such an update may render some of the earlier pass through and
//! reachable clusters invalid".

use xar_roadnet::{NodeId, Route, ShortestPaths};

use crate::engine::XarEngine;
use crate::error::XarError;
use crate::ride::{Booking, RideStatus, ViaPoint};
use crate::search::RideMatch;

/// The result of a confirmed booking — including the realised detour,
/// which the quality experiment (Figure 3a) compares against the
/// search-time estimate and the ε guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BookingOutcome {
    /// The ride booked.
    pub ride: crate::ride::RideId,
    /// Extra distance the route actually grew by, metres.
    pub actual_detour_m: f64,
    /// The search-time estimate for the same quantity, metres.
    pub estimated_detour_m: f64,
    /// Total walking the rider incurs, metres.
    pub walk_total_m: f64,
    /// Scheduled pick-up time, absolute seconds.
    pub pickup_eta_s: f64,
    /// Scheduled drop-off time, absolute seconds.
    pub dropoff_eta_s: f64,
    /// Shortest-path computations this booking performed (≤ 4).
    pub shortest_paths: usize,
    /// The ride's remaining detour budget *before* this booking,
    /// metres. `actual_detour_m - detour_budget_before_m` (when
    /// positive) is the "detour limit exceeded by" quantity whose ε
    /// bound Figure 3a evaluates.
    pub detour_budget_before_m: f64,
}

impl XarEngine {
    /// Re-run the search-time feasibility checks for `m` against the
    /// *current* ride state, without mutating anything: the ride must
    /// still exist and be active, have a free seat, not have driven
    /// past the pick-up segment, and still hold enough detour budget
    /// for the match's estimate. Returns the first violated condition.
    ///
    /// [`XarEngine::book`] performs the first three checks itself; the
    /// detour-budget check is *stricter* than booking (which honours
    /// the ε overshoot of an estimate made when the budget still
    /// covered it — see Figure 3a). Batch dispatchers call this at
    /// commit time, where the estimate may predate other bookings that
    /// consumed the budget in between.
    pub fn validate_match(&self, m: &RideMatch) -> Result<(), XarError> {
        let ride = self.ride(m.ride).ok_or(XarError::UnknownRide(m.ride))?;
        if ride.status != RideStatus::Active {
            return Err(XarError::UnknownRide(m.ride));
        }
        if ride.seats_available == 0 {
            return Err(XarError::NoSeats(m.ride));
        }
        let n_seg = ride.via_points.len() - 1;
        let (pickup_seg, dropoff_seg) =
            (m.pickup_seg.min(n_seg - 1), m.dropoff_seg.min(n_seg - 1));
        if pickup_seg > dropoff_seg {
            return Err(XarError::InvalidRequest("pick-up segment after drop-off segment"));
        }
        if ride.progress_idx > ride.via_points[pickup_seg + 1].route_idx {
            return Err(XarError::AlreadyPassed(m.ride));
        }
        let remaining = ride.detour_remaining_m();
        if m.detour_est_m > remaining {
            return Err(XarError::DetourExceeded {
                ride: m.ride,
                needed_m: m.detour_est_m,
                remaining_m: remaining,
            });
        }
        Ok(())
    }

    /// **Book** with a speculative-feasibility re-check first
    /// ([`XarEngine::validate_match`]): the match is rejected — before
    /// any route work — when the ride state it was searched against no
    /// longer holds, including the case booking itself would honour
    /// where the remaining detour budget has shrunk below the
    /// estimate. The entry point for commit stages that held the match
    /// across a batch window.
    pub fn book_checked(&mut self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        self.validate_match(m)?;
        self.book(m)
    }

    /// **Book** a match previously returned by [`XarEngine::search`].
    ///
    /// Fails if the ride is gone, full, has driven past the pick-up
    /// point, or no longer has the detour budget for the realised
    /// route change.
    pub fn book(&mut self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        let t0 = std::time::Instant::now();
        let _span = xar_obs::SpanTimer::new(std::sync::Arc::clone(&self.metrics.book_ns));
        let mut tspan = xar_obs::trace::span("book");
        let region = std::sync::Arc::clone(self.region());
        let pickup_node = region.landmark(m.pickup_landmark).node;
        let dropoff_node = region.landmark(m.dropoff_landmark).node;

        let ride = self.ride(m.ride).ok_or(XarError::UnknownRide(m.ride))?;
        if ride.status != RideStatus::Active {
            return Err(XarError::UnknownRide(m.ride));
        }
        if ride.seats_available == 0 {
            return Err(XarError::NoSeats(m.ride));
        }
        let n_seg = ride.via_points.len() - 1;
        let (pickup_seg, dropoff_seg) = (m.pickup_seg.min(n_seg - 1), m.dropoff_seg.min(n_seg - 1));
        if pickup_seg > dropoff_seg {
            return Err(XarError::InvalidRequest("pick-up segment after drop-off segment"));
        }
        // The ride must not have passed the pick-up segment's start.
        if ride.progress_idx > ride.via_points[pickup_seg + 1].route_idx {
            return Err(XarError::AlreadyPassed(m.ride));
        }

        let old_len = ride.route.dist_m();
        let budget_before = ride.detour_remaining_m();
        let sp = ShortestPaths::driving(region.graph());
        let graph = region.graph();
        let mut sp_count = 0usize;
        let sp_ns = std::sync::Arc::clone(&self.metrics.sp_ns);
        let mut path_route = |a: NodeId, b: NodeId| -> Result<Route, XarError> {
            sp_count += 1;
            let p = {
                let _sp_span = xar_obs::SpanTimer::new(std::sync::Arc::clone(&sp_ns));
                let _sp_trace = xar_obs::trace::span("shortest_path");
                sp.path(a, b)
            }
            .ok_or(XarError::NoRoute)?;
            Route::from_path_result(graph, &p).ok_or(XarError::NoRoute)
        };

        // Build the new route, the way-point indices of the two new
        // via-points, and the exactly recomputed indices of the old
        // via-points (splices shift everything downstream of them).
        let (new_route, pickup_idx, dropoff_idx);
        let mut vps: Vec<ViaPoint>;
        if pickup_seg == dropoff_seg {
            // §VIII.B Step 2: both on one segment — SP(s1, src),
            // SP(src, dest), SP(dest, s2).
            let s1 = ride.via_points[pickup_seg];
            let s2 = ride.via_points[pickup_seg + 1];
            let leg1 = path_route(s1.node, pickup_node)?;
            let leg2 = path_route(pickup_node, dropoff_node)?;
            let leg3 = path_route(dropoff_node, s2.node)?;
            pickup_idx = s1.route_idx + leg1.len() - 1;
            dropoff_idx = pickup_idx + leg2.len() - 1;
            let replacement = leg1.concat(&leg2).concat(&leg3);
            new_route = ride.route.splice(s1.route_idx, s2.route_idx, &replacement);
            let delta = new_route.len() as isize - ride.route.len() as isize;
            // Shift by list position, not by route-index comparison:
            // consecutive via-points may share a route_idx (a booking
            // whose pick-up landed exactly on a via node leaves a
            // zero-length segment), and comparing indices would drag
            // the splice's start point along with its end.
            vps = ride
                .via_points
                .iter()
                .enumerate()
                .map(|(pos, v)| {
                    if pos > pickup_seg {
                        ViaPoint { route_idx: (v.route_idx as isize + delta) as usize, node: v.node }
                    } else {
                        *v
                    }
                })
                .collect();
            vps.insert(pickup_seg + 1, ViaPoint { route_idx: pickup_idx, node: pickup_node });
            vps.insert(pickup_seg + 2, ViaPoint { route_idx: dropoff_idx, node: dropoff_node });
        } else {
            // §VIII.B Step 3: different segments — SP(s1, src),
            // SP(src, s2), SP(d1, dest), SP(dest, d2).
            let s1 = ride.via_points[pickup_seg];
            let s2 = ride.via_points[pickup_seg + 1];
            let leg1 = path_route(s1.node, pickup_node)?;
            let leg2 = path_route(pickup_node, s2.node)?;
            pickup_idx = s1.route_idx + leg1.len() - 1;
            let after_pickup = ride.route.splice(s1.route_idx, s2.route_idx, &leg1.concat(&leg2));
            // The pick-up splice shifted the via-points *behind* s2 in
            // the list. Shift by list position, not by route-index
            // comparison: consecutive via-points may share a route_idx
            // (zero-length segments left by earlier bookings), and
            // comparing indices would drag a splice's start point along
            // with its end.
            let shift1 = after_pickup.len() as isize - ride.route.len() as isize;
            let at1 = |pos: usize, old: usize| -> usize {
                if pos > pickup_seg {
                    (old as isize + shift1) as usize
                } else {
                    old
                }
            };
            let d1_idx = at1(dropoff_seg, ride.via_points[dropoff_seg].route_idx);
            let d2_idx = at1(dropoff_seg + 1, ride.via_points[dropoff_seg + 1].route_idx);
            let d1_node = after_pickup.nodes()[d1_idx];
            let d2_node = after_pickup.nodes()[d2_idx];
            let leg3 = path_route(d1_node, dropoff_node)?;
            let leg4 = path_route(dropoff_node, d2_node)?;
            dropoff_idx = d1_idx + leg3.len() - 1;
            new_route = after_pickup.splice(d1_idx, d2_idx, &leg3.concat(&leg4));
            let shift2 = new_route.len() as isize - after_pickup.len() as isize;
            let at2 = |pos: usize, idx1: usize| -> usize {
                if pos > dropoff_seg {
                    (idx1 as isize + shift2) as usize
                } else {
                    idx1
                }
            };
            vps = ride
                .via_points
                .iter()
                .enumerate()
                .map(|(pos, v)| ViaPoint {
                    route_idx: at2(pos, at1(pos, v.route_idx)),
                    node: v.node,
                })
                .collect();
            vps.insert(pickup_seg + 1, ViaPoint { route_idx: pickup_idx, node: pickup_node });
            vps.insert(dropoff_seg + 2, ViaPoint { route_idx: dropoff_idx, node: dropoff_node });
        }
        self.stats.shortest_paths.add(sp_count as u64);
        debug_assert!(vps.windows(2).all(|w| w[0].route_idx <= w[1].route_idx), "via-points out of order");
        debug_assert!(vps.iter().all(|v| new_route.nodes()[v.route_idx] == v.node));

        let actual_detour = (new_route.dist_m() - old_len).max(0.0);
        // The search-time estimate respected the budget; the realised
        // detour may exceed it by the discretization error (bounded by
        // the ε guarantee). The booking is honoured either way — that
        // overshoot is exactly what the Figure 3a experiment measures —
        // but the consumed budget is recorded truthfully, so the ride
        // stops accepting further riders once it is exhausted.
        let ride = self.rides_mut().get_mut(&m.ride).expect("checked above");

        let pickup_eta;
        let dropoff_eta;
        {
            ride.route = new_route;
            ride.via_points = vps;
            ride.seats_available -= 1;
            ride.detour_used_m += actual_detour;
            ride.bookings.push(Booking { pickup_idx, dropoff_idx, detour_m: actual_detour });
            pickup_eta = ride.eta_at_route_idx(pickup_idx);
            dropoff_eta = ride.eta_at_route_idx(dropoff_idx);
        }

        // Refresh the index: remove every stale entry, recompute the
        // pass-through and reachable clusters for the updated route and
        // the reduced detour budget.
        let (region, config) = (std::sync::Arc::clone(self.region()), self.config().clone());
        self.with_index_and_ride(m.ride, |ride, index| {
            XarEngine::deindex_ride(ride, index);
            let from = ride.progress_idx;
            XarEngine::index_ride(&region, &config, ride, index, from);
        });
        // Seats and remaining detour budget changed but the ride set
        // did not: the next publish can patch this ride's row in the
        // snapshot table instead of rebuilding it.
        self.mark_ride_updated(m.ride);
        self.bump_state_version();
        self.stats.bookings.inc();
        // Per-cluster labeled series (successful bookings only): the
        // pick-up cluster folded into a fixed bucket keeps cardinality
        // bounded while still exposing spatial skew.
        let bucket = crate::metrics::EngineMetrics::cluster_bucket(m.pickup_cluster.0);
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        self.metrics.book_ns_cluster[bucket].record(elapsed_ns);
        self.metrics.bookings_cluster[bucket].inc();
        // Latency exemplar: remember which trace produced a slow
        // booking so /metrics links back to the flight recorder.
        if let Some(ctx) = xar_obs::trace::current_ctx() {
            self.metrics.book_exemplar.offer(elapsed_ns, ctx.trace);
        }
        tspan.attr("ride", m.ride.0);
        tspan.attr("shortest_paths", sp_count);
        tspan.attr("detour_m", actual_detour);

        Ok(BookingOutcome {
            ride: m.ride,
            actual_detour_m: actual_detour,
            estimated_detour_m: m.detour_est_m,
            walk_total_m: m.walk_total_m(),
            pickup_eta_s: pickup_eta,
            dropoff_eta_s: dropoff_eta,
            shortest_paths: sp_count,
            detour_budget_before_m: budget_before,
        })
    }
}
