//! The XAR run-time unit (Figure 1): ride creation and the shared
//! engine state the search / booking / tracking operations act on.

use std::collections::HashMap;
use std::sync::Arc;

use xar_discretize::{ClusterId, RegionIndex};
use xar_obs::{Counter, Registry};
use xar_roadnet::{Route, ShortestPaths};

use crate::error::XarError;
use crate::index::{ClusterIndex, PotentialRide};
use crate::metrics::EngineMetrics;
use crate::ride::{PassCluster, Ride, RideId, RideOffer, RideStatus, ViaPoint};

/// Tunables of the runtime unit.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Historical average driving speed used to estimate arrival times
    /// at reachable clusters ("the time of arrival is estimated from
    /// historical travel times", §VI), m/s.
    pub historical_speed_mps: f64,
    /// Whether rides are indexed into their *reachable* clusters in
    /// addition to the pass-through clusters. Disabling this is an
    /// ablation of the §VI design: searches then only find rides whose
    /// route passes a walkable cluster directly, so recall drops — the
    /// experiment `ablation_index` quantifies how much the reachable
    /// sets buy.
    pub index_reachable: bool,
    /// Optional diurnal congestion profile: rides departing in rush
    /// hour get proportionally later ETAs ("estimated from historical
    /// travel times", §VI). `None` means free flow.
    pub historical: Option<xar_roadnet::HistoricalSpeeds>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { historical_speed_mps: 8.0, index_reachable: true, historical: None }
    }
}

/// Operation counters (searches, creations, bookings, tracking calls).
///
/// These are handles into the engine's metric registry (names
/// `engine.searches` … `engine.shortest_paths`), so the counts appear
/// in every registry snapshot / `--metrics-out` dump with no second
/// bookkeeping path; [`EngineStats::snapshot`] is a thin reader over
/// the same atomics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Number of search operations served (`engine.searches`).
    pub searches: Arc<Counter>,
    /// Number of rides created (`engine.creates`).
    pub creates: Arc<Counter>,
    /// Number of bookings confirmed (`engine.bookings`).
    pub bookings: Arc<Counter>,
    /// Number of tracking advances applied (`engine.tracks`).
    pub tracks: Arc<Counter>,
    /// Total shortest-path computations performed (creation + booking —
    /// never search); `engine.shortest_paths`.
    pub shortest_paths: Arc<Counter>,
}

/// A point-in-time reading of [`EngineStats`], with named fields so
/// callers never depend on positional tuple order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStatsSnapshot {
    /// Search operations served.
    pub searches: u64,
    /// Rides created.
    pub creates: u64,
    /// Bookings confirmed.
    pub bookings: u64,
    /// Tracking advances applied.
    pub tracks: u64,
    /// Shortest-path computations performed (creation + booking —
    /// never search).
    pub shortest_paths: u64,
}

impl EngineStats {
    /// Resolve the counter handles from `registry` (get-or-create, so
    /// engines sharing a registry share the counts).
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            searches: registry.counter("engine.searches"),
            creates: registry.counter("engine.creates"),
            bookings: registry.counter("engine.bookings"),
            tracks: registry.counter("engine.tracks"),
            shortest_paths: registry.counter("engine.shortest_paths"),
        }
    }

    /// Read every counter at once.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            searches: self.searches.get(),
            creates: self.creates.get(),
            bookings: self.bookings.get(),
            tracks: self.tracks.get(),
            shortest_paths: self.shortest_paths.get(),
        }
    }
}

/// The XAR engine: region discretization + live ride state + the
/// cluster-based in-memory index.
///
/// ```
/// use std::sync::Arc;
/// use xar_core::{EngineConfig, RideOffer, RideRequest, XarEngine};
/// use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
/// use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};
///
/// // Pre-process a (small synthetic) region once.
/// let graph = Arc::new(CityConfig::test_city(7).generate());
/// let pois = sample_pois(&graph, &PoiConfig { count: 300, ..Default::default() });
/// let region = Arc::new(RegionIndex::build(
///     Arc::clone(&graph),
///     &pois,
///     RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
/// ));
///
/// // Offer a cross-town ride, then search for it — no shortest path
/// // is computed by the search.
/// let mut engine = XarEngine::new(region, EngineConfig::default());
/// let n = graph.node_count() as u32;
/// let ride = engine
///     .create_ride(&RideOffer::simple(
///         graph.point(NodeId(0)),
///         graph.point(NodeId(n - 1)),
///         8.0 * 3600.0, // 08:00
///         3,            // seats
///         2_500.0,      // detour budget, metres
///     ))
///     .unwrap();
/// let matches = engine
///     .search(
///         &RideRequest {
///             source: graph.point(NodeId(n / 2)),
///             destination: graph.point(NodeId(n - 1)),
///             window_start_s: 7.5 * 3600.0,
///             window_end_s: 9.0 * 3600.0,
///             walk_limit_m: 800.0,
///         },
///         5,
///     )
///     .unwrap();
/// assert!(matches.iter().any(|m| m.ride == ride));
/// ```
pub struct XarEngine {
    region: Arc<RegionIndex>,
    config: EngineConfig,
    rides: HashMap<RideId, Ride>,
    index: ClusterIndex,
    next_id: u64,
    id_stride: u64,
    /// Monotone counter bumped by every mutation that changes what a
    /// search can observe (create, book, retire, index refresh). The
    /// sharded engine compares it against the version of the last
    /// published [`crate::ShardSnapshot`] to skip no-op republishes.
    state_version: u64,
    /// Whether the ride *set* changed since the last publish (create /
    /// retire): the snapshot's ride table must be rebuilt from scratch.
    /// Cleared by [`XarEngine::drain_publish_dirt`]. Cluster-level dirt
    /// lives in the index's dirty set.
    rides_structural: bool,
    /// Rides whose seats / detour budget changed since the last publish
    /// while the ride set stayed fixed (bookings): the snapshot's ride
    /// table can be patched in place instead of rebuilt, keeping the
    /// publish cost independent of the shard's ride count. Superseded
    /// by `rides_structural` when set.
    rides_updated: Vec<RideId>,
    /// Rides retired (completed/expired) since the last publish —
    /// drained into the `snapshot.compacted_rides` counter so the
    /// memory-bound story (ROADMAP item 5) is observable.
    pending_compactions: u64,
    pub(crate) stats: EngineStats,
    pub(crate) metrics: EngineMetrics,
}

/// How the per-ride state columns changed since the last publish —
/// drained by [`XarEngine::drain_publish_dirt`] and consumed by
/// [`crate::ShardSnapshot::build_incremental`] to pick the cheapest
/// valid way of producing the next snapshot's ride table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RideDirt {
    /// No ride's seats / budget / liveness changed (tracking-only
    /// publish): share the previous table by `Arc`.
    Clean,
    /// The ride *set* is unchanged but these rides' seats / detour
    /// budget moved (bookings): patch the previous table's columns in
    /// place — O(updated) lookups plus per-column memcpys, no
    /// collect-and-sort over the whole shard.
    Updated(Vec<RideId>),
    /// Rides were created or retired: rebuild the table from scratch.
    Structural,
}

impl XarEngine {
    /// Create an engine over a pre-processed region.
    pub fn new(region: Arc<RegionIndex>, config: EngineConfig) -> Self {
        Self::with_metrics(region, config, EngineMetrics::new())
    }

    /// Create an engine recording into caller-supplied metrics (for
    /// sharing one registry across engines or with a bench harness).
    pub fn with_metrics(region: Arc<RegionIndex>, config: EngineConfig, metrics: EngineMetrics) -> Self {
        let index = ClusterIndex::new(region.cluster_count());
        let stats = EngineStats::from_registry(&metrics.registry());
        Self {
            region,
            config,
            rides: HashMap::new(),
            index,
            next_id: 1,
            id_stride: 1,
            state_version: 0,
            rides_structural: false,
            rides_updated: Vec::new(),
            pending_compactions: 0,
            stats,
            metrics,
        }
    }

    /// Monotone version of the searchable state: incremented by every
    /// successful create/book and by every track that retires a ride or
    /// rewrites index entries. Unchanged version ⇒ a search snapshot
    /// taken earlier is still exact.
    #[inline]
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// Record a searchable-state mutation (see [`XarEngine::state_version`]).
    #[inline]
    pub(crate) fn bump_state_version(&mut self) {
        self.state_version += 1;
    }

    /// Record that `id`'s seats / detour budget changed while the ride
    /// set stayed fixed (see the `rides_updated` field). Booking calls
    /// this from its own module. A no-op once structural dirt is
    /// pending — the table is rebuilt from scratch then anyway.
    #[inline]
    pub(crate) fn mark_ride_updated(&mut self, id: RideId) {
        if !self.rides_structural && self.rides_updated.last() != Some(&id) {
            self.rides_updated.push(id);
        }
    }

    /// Drain everything a publish needs to patch the previous snapshot:
    /// the dirty cluster ids, how the ride table changed, and how many
    /// rides were compacted away since the last drain. Leaves the
    /// engine clean — the caller must actually publish.
    pub(crate) fn drain_publish_dirt(&mut self) -> (Vec<u32>, RideDirt, u64) {
        let clusters = self.index.drain_dirty();
        let compacted = std::mem::replace(&mut self.pending_compactions, 0);
        let rides = if std::mem::replace(&mut self.rides_structural, false) {
            self.rides_updated.clear();
            RideDirt::Structural
        } else if self.rides_updated.is_empty() {
            RideDirt::Clean
        } else {
            RideDirt::Updated(std::mem::take(&mut self.rides_updated))
        };
        (clusters, rides, compacted)
    }

    /// Number of clusters currently marked dirty (pending publish).
    #[inline]
    pub fn dirty_cluster_count(&self) -> usize {
        self.index.dirty_len()
    }

    /// Restrict this engine to the id arithmetic progression
    /// `start, start + stride, start + 2·stride, …` — the sharding
    /// layer gives shard `i` of `n` the sequence `(i+1, n)` so ride ids
    /// stay globally unique and `(id − 1) mod n` recovers the owning
    /// shard without any lookup.
    pub(crate) fn set_id_sequence(&mut self, start: u64, stride: u64) {
        debug_assert!(stride >= 1 && start >= 1);
        debug_assert!(self.rides.is_empty(), "id sequence must be set before any ride exists");
        self.next_id = start;
        self.id_stride = stride;
    }

    /// Route this engine's index mutations into `occupancy` as shard
    /// `shard` (see [`crate::sharded::ShardOccupancy`]).
    pub(crate) fn attach_shard_occupancy(
        &mut self,
        occupancy: std::sync::Arc<crate::sharded::ShardOccupancy>,
        shard: u32,
    ) {
        self.index.attach_occupancy(occupancy, shard);
    }

    /// The region discretization the engine runs on.
    #[inline]
    pub fn region(&self) -> &Arc<RegionIndex> {
        &self.region
    }

    /// The engine configuration.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The per-cluster potential-rides index (read-only view).
    #[inline]
    pub fn index(&self) -> &ClusterIndex {
        &self.index
    }

    /// Operation counters.
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Latency and candidate-set telemetry (see [`EngineMetrics`] for
    /// the metric names).
    #[inline]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The ride with id `id`, if it exists and has not been retired.
    #[inline]
    pub fn ride(&self, id: RideId) -> Option<&Ride> {
        self.rides.get(&id)
    }

    /// Number of live rides.
    #[inline]
    pub fn ride_count(&self) -> usize {
        self.rides.len()
    }

    /// Iterate over all live rides.
    pub fn rides(&self) -> impl Iterator<Item = &Ride> {
        self.rides.values()
    }

    /// **Create** (operation O2): register a ride offer.
    ///
    /// Computes the driving route (one shortest-path computation — this
    /// is creation, not search), derives the pass-through clusters of
    /// its single initial segment and the reachable clusters within the
    /// detour limit, and inserts the ride into every such cluster's
    /// potential-rides lists.
    pub fn create_ride(&mut self, offer: &RideOffer) -> Result<RideId, XarError> {
        let _span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.create_ns));
        let mut tspan = xar_obs::trace::span("create");
        if !(offer.detour_limit_m.is_finite() && offer.detour_limit_m >= 0.0) {
            return Err(XarError::InvalidRequest("detour limit must be non-negative"));
        }
        if !offer.departure_s.is_finite() {
            return Err(XarError::InvalidRequest("departure time must be finite"));
        }
        // The stop sequence: source, any driver-declared alternate-route
        // points ("unless the user has explicitly specified an alternate
        // route", §VI), destination. The route is the concatenation of
        // shortest paths between consecutive stops, and every stop is a
        // via-point.
        let mut stop_nodes = Vec::with_capacity(offer.via.len() + 2);
        stop_nodes.push(self.region.snap_exact(&offer.source));
        for p in &offer.via {
            stop_nodes.push(self.region.snap_exact(p));
        }
        stop_nodes.push(self.region.snap_exact(&offer.destination));
        stop_nodes.dedup();
        if stop_nodes.len() < 2 {
            return Err(XarError::InvalidRequest("source and destination coincide"));
        }

        let sp = ShortestPaths::driving(self.region.graph());
        let mut route: Option<Route> = None;
        for w in stop_nodes.windows(2) {
            self.stats.shortest_paths.inc();
            let path = {
                let _sp_span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.sp_ns));
                let _sp_trace = xar_obs::trace::span("shortest_path");
                sp.path(w[0], w[1])
            }
            .ok_or(XarError::NoRoute)?;
            let leg = Route::from_path_result(self.region.graph(), &path).ok_or(XarError::NoRoute)?;
            route = Some(match route {
                None => leg,
                Some(r) => r.concat(&leg),
            });
        }
        let route = route.expect("at least one leg");
        // Via-point indices on the concatenated route: each stop is the
        // first occurrence of its node at/after the previous via-point
        // (the destination is pinned to the final way-point).
        let mut via_points = Vec::with_capacity(stop_nodes.len());
        let mut cursor = 0usize;
        for &node in &stop_nodes {
            let idx = route.nodes()[cursor..]
                .iter()
                .position(|&n| n == node)
                .map(|o| cursor + o)
                .expect("stop node lies on its own concatenated route");
            via_points.push(ViaPoint { route_idx: idx, node });
            cursor = idx;
        }
        let final_idx = route.len() - 1;
        via_points.last_mut().expect("two or more stops").route_idx = final_idx;

        let id = RideId(self.next_id);
        self.next_id += self.id_stride;
        let mut ride = Ride {
            id,
            source: offer.source,
            destination: offer.destination,
            departure_s: offer.departure_s,
            seats_available: offer.seats,
            via_points,
            route,
            detour_limit_m: offer.detour_limit_m,
            detour_used_m: 0.0,
            pass_clusters: Vec::new(),
            bookings: Vec::new(),
            driver: offer.driver,
            time_scale: self
                .config
                .historical
                .as_ref()
                .map_or(1.0, |h| h.multiplier_at(offer.departure_s)),
            status: RideStatus::Active,
            progress_idx: 0,
        };
        Self::index_ride(&self.region, &self.config, &mut ride, &mut self.index, 0);
        self.rides.insert(id, ride);
        self.rides_structural = true;
        self.bump_state_version();
        self.stats.creates.inc();
        // Occupancy gauge: the ride lives in its source's cluster
        // bucket until retired (the source via-point never moves, so
        // retire decrements the same bucket).
        if let Some(c) = self.region.cluster_of_node(stop_nodes[0]) {
            self.metrics.cluster_rides[EngineMetrics::cluster_bucket(c.0)].add(1);
        }
        tspan.attr("ride", id.0);
        tspan.attr("legs", stop_nodes.len() as u64 - 1);
        Ok(id)
    }

    /// (Re)compute a ride's pass-through clusters and reachable clusters
    /// from way-point `from_idx` onward, inserting the corresponding
    /// entries into the cluster index. The ride's `pass_clusters` is
    /// replaced.
    ///
    /// Shared by creation (whole route) and booking (route changed;
    /// re-index from current progress).
    pub(crate) fn index_ride(
        region: &RegionIndex,
        config: &EngineConfig,
        ride: &mut Ride,
        index: &mut ClusterIndex,
        from_idx: usize,
    ) {
        let _tspan = xar_obs::trace::span("index_ride");
        let nodes = ride.route.nodes();
        // Run-length scan: maximal runs of way-points mapping to the
        // same cluster become pass-through clusters.
        let mut pass: Vec<PassCluster> = Vec::new();
        let mut cur: Option<(ClusterId, usize)> = None; // (cluster, entry idx)
        #[allow(clippy::needless_range_loop)] // idx is also the run boundary marker
        for idx in from_idx..nodes.len() {
            let cluster = region.cluster_of_node(nodes[idx]);
            if let (Some((c, _)), Some(nc)) = (cur, cluster) {
                if nc == c {
                    continue; // run continues
                }
            }
            if let Some((c, entry)) = cur {
                pass.push(Self::make_pass_cluster(ride, c, entry, idx - 1));
            }
            cur = cluster.map(|nc| (nc, idx));
        }
        if let Some((c, entry)) = cur {
            pass.push(Self::make_pass_cluster(ride, c, entry, nodes.len() - 1));
        }

        // Reachable clusters per pass-through cluster (§VI): candidates
        // within the remaining detour of the pass cluster, refined by
        // the triangle detour test against the segment's end via-point.
        let budget = if config.index_reachable { ride.detour_remaining_m() } else { 0.0 };
        let k = region.cluster_count();
        for p in &mut pass {
            let end_via = ride.via_points[(p.seg + 1).min(ride.via_points.len() - 1)];
            let end_cluster = region.cluster_of_node(end_via.node);
            p.reachable.reserve(8);
            for c in 0..k as u32 {
                let candidate = ClusterId(c);
                if candidate == p.cluster {
                    continue;
                }
                let d_pc = region.cluster_distance(p.cluster, candidate);
                if !d_pc.is_finite() || d_pc > budget {
                    continue;
                }
                let detour_est = match end_cluster {
                    Some(cv) => {
                        let d_cv = region.cluster_distance(candidate, cv);
                        let d_pv = region.cluster_distance(p.cluster, cv);
                        if d_cv.is_finite() && d_pv.is_finite() {
                            (d_pc + d_cv - d_pv).max(0.0)
                        } else {
                            2.0 * d_pc // conservative out-and-back bound
                        }
                    }
                    None => 2.0 * d_pc,
                };
                if detour_est > budget {
                    continue;
                }
                let eta = p.eta_s + d_pc / config.historical_speed_mps;
                p.reachable.push((candidate, detour_est, eta));
            }
        }

        // Insert the ride into every cluster's potential lists.
        for p in &pass {
            index.insert(
                p.cluster,
                PotentialRide {
                    ride: ride.id,
                    eta_s: p.eta_s,
                    detour_m: 0.0,
                    seg: p.seg,
                    via_pass: p.cluster,
                    pass_route_idx: p.route_idx,
                },
            );
            for &(c, detour, eta) in &p.reachable {
                index.insert(
                    c,
                    PotentialRide {
                        ride: ride.id,
                        eta_s: eta,
                        detour_m: detour,
                        seg: p.seg,
                        via_pass: p.cluster,
                        pass_route_idx: p.route_idx,
                    },
                );
            }
        }
        ride.pass_clusters = pass;
    }

    fn make_pass_cluster(ride: &Ride, cluster: ClusterId, entry_idx: usize, exit_idx: usize) -> PassCluster {
        PassCluster {
            cluster,
            seg: ride.segment_of(entry_idx),
            route_idx: entry_idx,
            eta_s: ride.eta_at_route_idx(entry_idx),
            reachable: Vec::new(),
            exit_idx,
        }
    }

    /// Mutable access to the ride table (crate-internal: booking and
    /// tracking).
    pub(crate) fn rides_mut(&mut self) -> &mut HashMap<RideId, Ride> {
        &mut self.rides
    }

    /// Run `f` with simultaneous mutable access to one ride and the
    /// cluster index (split borrow helper for booking/tracking).
    pub(crate) fn with_index_and_ride(
        &mut self,
        id: RideId,
        f: impl FnOnce(&mut Ride, &mut ClusterIndex),
    ) {
        if let Some(ride) = self.rides.get_mut(&id) {
            f(ride, &mut self.index);
        }
    }

    /// Remove a retired ride from the table entirely (tracking, once
    /// completed), releasing its slot in the occupancy gauge.
    pub(crate) fn retire_ride(&mut self, id: RideId) {
        if let Some(ride) = self.rides.remove(&id) {
            self.rides_structural = true;
            self.pending_compactions += 1;
            if let Some(c) = self.region.cluster_of_node(ride.via_points[0].node) {
                self.metrics.cluster_rides[EngineMetrics::cluster_bucket(c.0)].add(-1);
            }
        }
    }

    /// Remove every index entry belonging to `ride` (pass-through and
    /// reachable clusters alike).
    pub(crate) fn deindex_ride(ride: &Ride, index: &mut ClusterIndex) {
        for p in &ride.pass_clusters {
            index.remove(p.cluster, ride.id);
            for &(c, _, _) in &p.reachable {
                index.remove(c, ride.id);
            }
        }
    }

    /// Total heap bytes of the runtime state: region discretization
    /// tables + cluster index + all ride records. This is the quantity
    /// Figure 3c reports (the paper measured it with the Classmexer JVM
    /// agent; we account our own structures exactly).
    pub fn heap_bytes(&self) -> usize {
        self.region.heap_bytes() + self.heap_bytes_runtime()
    }

    /// Heap bytes of the mutable runtime state only (cluster index +
    /// ride records), excluding the shared immutable region tables —
    /// what a shard contributes on top of the `Arc`'d discretization.
    pub fn heap_bytes_runtime(&self) -> usize {
        let rides: usize = self.rides.values().map(|r| r.heap_bytes()).sum();
        let ride_map = (self.rides.capacity() as f64 * 1.1) as usize
            * (std::mem::size_of::<(RideId, Ride)>() + 8);
        self.index.heap_bytes() + rides + ride_map
    }
}
