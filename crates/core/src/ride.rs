//! The ride model (§VI): the ten entities that characterise a ride in
//! XAR — source, destination, departure time, seats, route, via-points,
//! segments, detour limit, pass-through clusters and reachable clusters.

use xar_discretize::ClusterId;
use xar_geo::GeoPoint;
use xar_roadnet::{NodeId, Route};

/// Unique ride identifier ("each ride created in the system is assigned
/// a unique ride ID", §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RideId(pub u64);

/// Identity of a person in the system (driver or requester) — used by
/// the social-network ranking of §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RiderId(pub u64);

/// Lifecycle state of a ride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RideStatus {
    /// Created, not yet departed (or departed and en route — rides
    /// depart at their departure time and are advanced by tracking).
    Active,
    /// Tracked past the end of its route; retired from the index.
    Completed,
}

/// A ride offer as submitted by a driver.
#[derive(Debug, Clone)]
pub struct RideOffer {
    /// Where the ride begins.
    pub source: GeoPoint,
    /// Where the ride ends.
    pub destination: GeoPoint,
    /// Departure time, seconds since simulation epoch (midnight).
    pub departure_s: f64,
    /// Seats available for co-riders (the driver's own seat excluded).
    pub seats: u8,
    /// Maximum deviation from the route the driver accepts, metres.
    pub detour_limit_m: f64,
    /// The driver's identity, if known (enables social ranking, §VII).
    pub driver: Option<RiderId>,
    /// Optional intermediate points the driver insists on passing
    /// through: "the shortest route between the source and the
    /// destination **unless the user has explicitly specified an
    /// alternate route**" (§VI, entity 5). The route becomes the
    /// concatenation of shortest paths through these points, and each
    /// becomes a via-point of the ride.
    pub via: Vec<xar_geo::GeoPoint>,
}

impl RideOffer {
    /// Convenience constructor for the common case: shortest route, no
    /// declared driver identity.
    pub fn simple(
        source: GeoPoint,
        destination: GeoPoint,
        departure_s: f64,
        seats: u8,
        detour_limit_m: f64,
    ) -> Self {
        Self { source, destination, departure_s, seats, detour_limit_m, driver: None, via: Vec::new() }
    }
}

/// A via-point: a route way-point the ride *must* pass through — the
/// ride's own source/destination and every booked rider's pick-up and
/// drop-off (§VI distinguishes via-points from plain way-points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaPoint {
    /// Index into the ride route's way-point sequence.
    pub route_idx: usize,
    /// The way-point node (redundant with the route, kept for O(1)
    /// access during booking updates).
    pub node: NodeId,
}

/// A pass-through cluster of a ride on one of its segments, with the
/// reachable clusters servable from it without violating the detour
/// limit.
#[derive(Debug, Clone)]
pub struct PassCluster {
    /// The cluster the route passes through.
    pub cluster: ClusterId,
    /// Index of the segment (between via-points `seg` and `seg+1`) the
    /// cluster lies on.
    pub seg: usize,
    /// Route way-point index where the ride first enters the cluster.
    pub route_idx: usize,
    /// Route way-point index of the last consecutive way-point inside
    /// the cluster — the ride has "crossed" the cluster (tracking
    /// §VIII.A) once its progress passes this index.
    pub exit_idx: usize,
    /// Estimated time of arrival at the cluster, absolute seconds.
    pub eta_s: f64,
    /// Clusters reachable from here within the remaining detour limit,
    /// with `(cluster, estimated detour metres, estimated eta seconds)`.
    pub reachable: Vec<(ClusterId, f64, f64)>,
}

/// A confirmed booking on a ride.
#[derive(Debug, Clone)]
pub struct Booking {
    /// Pick-up way-point (index into the *current* route).
    pub pickup_idx: usize,
    /// Drop-off way-point (index into the *current* route).
    pub dropoff_idx: usize,
    /// Actual extra distance the booking added to the route, metres.
    pub detour_m: f64,
}

/// A ride in the system. Mutated only through the engine's create /
/// book / track operations.
#[derive(Debug, Clone)]
pub struct Ride {
    /// Unique id.
    pub id: RideId,
    /// Source location as offered.
    pub source: GeoPoint,
    /// Destination location as offered.
    pub destination: GeoPoint,
    /// Departure time, absolute seconds.
    pub departure_s: f64,
    /// Seats still available.
    pub seats_available: u8,
    /// Current route (updated by bookings).
    pub route: Route,
    /// Via-points in route order; `via_points[0]` is the source,
    /// `via_points.last()` the destination.
    pub via_points: Vec<ViaPoint>,
    /// Original detour budget, metres.
    pub detour_limit_m: f64,
    /// Detour already consumed by bookings, metres.
    pub detour_used_m: f64,
    /// Current pass-through clusters with their reachable sets; entries
    /// are removed (not flagged) once obsolete.
    pub pass_clusters: Vec<PassCluster>,
    /// Confirmed bookings.
    pub bookings: Vec<Booking>,
    /// The driver's identity, if known.
    pub driver: Option<RiderId>,
    /// Historical congestion multiplier sampled at the ride's departure
    /// hour (1.0 = free flow); scales every ETA of the ride.
    pub time_scale: f64,
    /// Lifecycle state.
    pub status: RideStatus,
    /// How far along the route tracking has advanced (way-point index).
    pub progress_idx: usize,
}

impl Ride {
    /// Remaining detour budget, metres (never negative: a booking whose
    /// realised detour overshoots the estimate — bounded by the ε
    /// guarantee — clamps to zero).
    #[inline]
    pub fn detour_remaining_m(&self) -> f64 {
        (self.detour_limit_m - self.detour_used_m).max(0.0)
    }

    /// The segment index (between consecutive via-points) containing
    /// route way-point `route_idx`. Way-points on a via-point boundary
    /// belong to the segment starting there (except the final
    /// via-point, which belongs to the last segment).
    pub fn segment_of(&self, route_idx: usize) -> usize {
        debug_assert!(!self.via_points.is_empty());
        let n_seg = self.via_points.len() - 1;
        let pos = self.via_points.partition_point(|v| v.route_idx <= route_idx);
        pos.saturating_sub(1).min(n_seg.saturating_sub(1))
    }

    /// Estimated arrival time at route way-point `idx`, absolute
    /// seconds: departure + cumulative free-flow time scaled by the
    /// ride's historical congestion multiplier — the paper's
    /// "estimated from historical travel times".
    #[inline]
    pub fn eta_at_route_idx(&self, idx: usize) -> f64 {
        self.departure_s + self.route.time_at(idx) * self.time_scale
    }

    /// Scheduled completion time, absolute seconds.
    #[inline]
    pub fn arrival_s(&self) -> f64 {
        self.departure_s + self.route.duration_s() * self.time_scale
    }

    /// Heap bytes held by this ride (index-size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.route.heap_bytes()
            + self.via_points.capacity() * std::mem::size_of::<ViaPoint>()
            + self.pass_clusters.capacity() * std::mem::size_of::<PassCluster>()
            + self
                .pass_clusters
                .iter()
                .map(|p| p.reachable.capacity() * std::mem::size_of::<(ClusterId, f64, f64)>())
                .sum::<usize>()
            + self.bookings.capacity() * std::mem::size_of::<Booking>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::{CityConfig, NodeId, RoadGraph, ShortestPaths};

    fn make_ride(g: &RoadGraph) -> Ride {
        let sp = ShortestPaths::driving(g);
        let n = g.node_count() as u32;
        let p = sp.path(NodeId(0), NodeId(n - 1)).expect("connected city");
        let route = Route::from_path_result(g, &p).unwrap();
        let last = route.len() - 1;
        Ride {
            id: RideId(1),
            source: g.point(NodeId(0)),
            destination: g.point(NodeId(n - 1)),
            departure_s: 3600.0,
            seats_available: 3,
            via_points: vec![
                ViaPoint { route_idx: 0, node: route.nodes()[0] },
                ViaPoint { route_idx: last, node: route.nodes()[last] },
            ],
            route,
            detour_limit_m: 2000.0,
            detour_used_m: 0.0,
            pass_clusters: vec![],
            bookings: vec![],
            driver: None,
            time_scale: 1.0,
            status: RideStatus::Active,
            progress_idx: 0,
        }
    }

    #[test]
    fn detour_remaining_clamps_at_zero() {
        let g = CityConfig::test_city(1).generate();
        let mut r = make_ride(&g);
        assert_eq!(r.detour_remaining_m(), 2000.0);
        r.detour_used_m = 2500.0;
        assert_eq!(r.detour_remaining_m(), 0.0);
    }

    #[test]
    fn single_segment_maps_everything_to_zero() {
        let g = CityConfig::test_city(1).generate();
        let r = make_ride(&g);
        assert_eq!(r.segment_of(0), 0);
        assert_eq!(r.segment_of(r.route.len() / 2), 0);
        assert_eq!(r.segment_of(r.route.len() - 1), 0);
    }

    #[test]
    fn multi_segment_mapping() {
        let g = CityConfig::test_city(1).generate();
        let mut r = make_ride(&g);
        let last = r.route.len() - 1;
        let mid = last / 2;
        r.via_points = vec![
            ViaPoint { route_idx: 0, node: r.route.nodes()[0] },
            ViaPoint { route_idx: mid, node: r.route.nodes()[mid] },
            ViaPoint { route_idx: last, node: r.route.nodes()[last] },
        ];
        assert_eq!(r.segment_of(0), 0);
        assert_eq!(r.segment_of(mid - 1), 0);
        assert_eq!(r.segment_of(mid), 1, "boundary way-point starts the next segment");
        assert_eq!(r.segment_of(last), 1, "final via-point stays in the last segment");
    }

    #[test]
    fn eta_accumulates_from_departure() {
        let g = CityConfig::test_city(1).generate();
        let r = make_ride(&g);
        assert_eq!(r.eta_at_route_idx(0), 3600.0);
        let end = r.route.len() - 1;
        assert!(r.eta_at_route_idx(end) > 3600.0);
        assert_eq!(r.arrival_s(), r.eta_at_route_idx(end));
    }

    #[test]
    fn heap_bytes_nonzero() {
        let g = CityConfig::test_city(1).generate();
        let r = make_ride(&g);
        assert!(r.heap_bytes() > 0);
    }
}
