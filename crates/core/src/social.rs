//! Social-network-aware match ranking (paper §VII).
//!
//! > *"For example, if a social networking graph could be built or
//! > integrated into the system then the rides offered by people in the
//! > social network graph of the requester can be given higher priority
//! > while listing the options. This will address the safety concern to
//! > some extent as people generally feel safe to travel with
//! > co-passengers from their social network."*
//!
//! This is exactly why XAR returns *multiple* matches per request. The
//! ranking is a post-processing step over the matches: friends first,
//! then friends-of-friends, then strangers, each group keeping the
//! least-walking order.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ride::RiderId;
use crate::search::RideMatch;
use crate::XarEngine;

/// An undirected social graph over rider identities.
#[derive(Debug, Default, Clone)]
pub struct SocialGraph {
    edges: HashMap<RiderId, HashSet<RiderId>>,
}

impl SocialGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a (symmetric) friendship.
    pub fn add_friendship(&mut self, a: RiderId, b: RiderId) {
        if a == b {
            return;
        }
        self.edges.entry(a).or_default().insert(b);
        self.edges.entry(b).or_default().insert(a);
    }

    /// Number of friends of `r`.
    pub fn degree(&self, r: RiderId) -> usize {
        self.edges.get(&r).map_or(0, HashSet::len)
    }

    /// Whether `a` and `b` are direct friends.
    pub fn are_friends(&self, a: RiderId, b: RiderId) -> bool {
        self.edges.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// BFS degrees of separation between `a` and `b`, capped at
    /// `max_hops` (returns `None` beyond the cap or if disconnected;
    /// `Some(0)` when `a == b`).
    pub fn separation(&self, a: RiderId, b: RiderId, max_hops: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut visited = HashSet::from([a]);
        let mut queue = VecDeque::from([(a, 0usize)]);
        while let Some((cur, depth)) = queue.pop_front() {
            if depth >= max_hops {
                continue;
            }
            for &next in self.edges.get(&cur).into_iter().flatten() {
                if next == b {
                    return Some(depth + 1);
                }
                if visited.insert(next) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        None
    }
}

impl XarEngine {
    /// Re-rank `matches` for `requester`: drivers socially closer to the
    /// requester come first (friends, then friends-of-friends, …,
    /// capped at 3 hops); within the same social distance the original
    /// least-walking order is kept. Rides without a known driver rank
    /// as strangers. The relative order is stable, so the output is
    /// deterministic.
    pub fn rank_by_social(
        &self,
        matches: &mut [RideMatch],
        social: &SocialGraph,
        requester: RiderId,
    ) {
        const MAX_HOPS: usize = 3;
        matches.sort_by_key(|m| {
            let dist = self
                .ride(m.ride)
                .and_then(|r| r.driver)
                .and_then(|d| social.separation(requester, d, MAX_HOPS))
                .unwrap_or(MAX_HOPS + 1);
            // Stable sort: social distance is the only key; walk order
            // is preserved within a class by stability.
            dist
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RiderId {
        RiderId(i)
    }

    #[test]
    fn friendship_is_symmetric() {
        let mut g = SocialGraph::new();
        g.add_friendship(r(1), r(2));
        assert!(g.are_friends(r(1), r(2)));
        assert!(g.are_friends(r(2), r(1)));
        assert!(!g.are_friends(r(1), r(3)));
        assert_eq!(g.degree(r(1)), 1);
    }

    #[test]
    fn self_friendship_is_ignored() {
        let mut g = SocialGraph::new();
        g.add_friendship(r(1), r(1));
        assert_eq!(g.degree(r(1)), 0);
    }

    #[test]
    fn separation_chain() {
        let mut g = SocialGraph::new();
        g.add_friendship(r(1), r(2));
        g.add_friendship(r(2), r(3));
        g.add_friendship(r(3), r(4));
        assert_eq!(g.separation(r(1), r(1), 3), Some(0));
        assert_eq!(g.separation(r(1), r(2), 3), Some(1));
        assert_eq!(g.separation(r(1), r(3), 3), Some(2));
        assert_eq!(g.separation(r(1), r(4), 3), Some(3));
        assert_eq!(g.separation(r(1), r(4), 2), None, "cap respected");
        assert_eq!(g.separation(r(1), r(99), 5), None, "disconnected");
    }

    #[test]
    fn separation_takes_shortest_path() {
        let mut g = SocialGraph::new();
        // Long way 1-2-3-4 and shortcut 1-4.
        g.add_friendship(r(1), r(2));
        g.add_friendship(r(2), r(3));
        g.add_friendship(r(3), r(4));
        g.add_friendship(r(1), r(4));
        assert_eq!(g.separation(r(1), r(4), 5), Some(1));
    }
}
