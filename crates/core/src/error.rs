//! Error type for the XAR runtime operations.

use crate::ride::RideId;

/// Errors returned by the runtime operations.
#[derive(Debug, Clone, PartialEq)]
pub enum XarError {
    /// No driving route exists between the requested end-points.
    NoRoute,
    /// A location falls outside the discretized region and cannot be
    /// served (neither associated with a landmark within `Δ` nor within
    /// walking distance `W` of any cluster).
    NotServable,
    /// The ride id is unknown (never created, or already completed and
    /// retired).
    UnknownRide(RideId),
    /// The ride has no free seats left.
    NoSeats(RideId),
    /// The ride can no longer serve the match: its remaining detour
    /// budget is smaller than the detour the booking would cause.
    DetourExceeded {
        /// The ride that was asked to serve the booking.
        ride: RideId,
        /// Detour the booking would add, metres.
        needed_m: f64,
        /// Remaining detour budget, metres.
        remaining_m: f64,
    },
    /// The match being booked is stale: the ride has already passed the
    /// pick-up point.
    AlreadyPassed(RideId),
    /// A request parameter is invalid (e.g. an empty or negative time
    /// window).
    InvalidRequest(&'static str),
}

impl std::fmt::Display for XarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XarError::NoRoute => write!(f, "no driving route between the requested end-points"),
            XarError::NotServable => {
                write!(f, "location is outside the serviceable discretized region")
            }
            XarError::UnknownRide(id) => write!(f, "unknown ride {id:?}"),
            XarError::NoSeats(id) => write!(f, "ride {id:?} has no free seats"),
            XarError::DetourExceeded { ride, needed_m, remaining_m } => write!(
                f,
                "ride {ride:?} cannot absorb a {needed_m:.0} m detour ({remaining_m:.0} m budget left)"
            ),
            XarError::AlreadyPassed(id) => {
                write!(f, "ride {id:?} has already passed the pick-up point")
            }
            XarError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for XarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XarError::DetourExceeded { ride: RideId(7), needed_m: 1234.5, remaining_m: 100.0 };
        let s = e.to_string();
        assert!(s.contains("1234") && s.contains("100"), "{s}");
        assert!(XarError::NoRoute.to_string().contains("no driving route"));
        assert!(XarError::UnknownRide(RideId(3)).to_string().contains("RideId(3)"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&XarError::NoRoute);
    }
}
