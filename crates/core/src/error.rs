//! Error type for the XAR runtime operations, plus the closed
//! rejection-reason taxonomy the event plane attributes unserved
//! requests with.

use crate::ride::RideId;

/// Closed taxonomy of request outcomes for the per-request decision
/// log: every path that fails to book a request maps to exactly one
/// variant, so `xar logs` can answer *why* any given request was not
/// served. The set is deliberately closed — adding a variant without
/// wiring an emitter fails the exhaustiveness tests in this module and
/// in the dispatch pipeline.
///
/// [`Reason::Unknown`] exists only as a parse fallback for forward
/// compatibility of the on-disk format; no runtime path emits it
/// (property-tested in `xar-workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reason {
    /// The request was served (booked onto an existing ride).
    Served,
    /// Search found no candidate rides at all: the ETA range queries on
    /// the walkable clusters produced an empty `R1`, or no ride
    /// appeared on both the source and destination side (`R1 ∩ R2 = ∅`).
    NoClusterCandidates,
    /// Candidates existed, but in every (source, destination) pairing
    /// the pick-up did not strictly precede the drop-off along the
    /// ride.
    OrderingInfeasible,
    /// Candidates existed, but every pairing exceeded the rider's
    /// combined walking limit.
    WalkLimitExceeded,
    /// A candidate ride's remaining detour budget was smaller than the
    /// detour the match would cause — at search time or when booking
    /// re-checked it.
    DetourBudgetExceeded,
    /// A candidate ride had no free seats — at search time or when
    /// booking re-checked it.
    CapacityFull,
    /// A batch-window commit failed re-validation: the ride state the
    /// match was searched against no longer held at commit time (ride
    /// retired or gone).
    StaleCommit,
    /// The ride had already driven past the pick-up point by the time
    /// booking was attempted.
    WindowExpired,
    /// The batch assignment ejected this request: it had candidates,
    /// but the joint assignment gave its rides to other requests.
    SwapEjected,
    /// An end-point lies outside the serviceable discretized region
    /// (no walkable cluster within the rider's limit).
    NotServable,
    /// No driving route exists between the requested end-points.
    NoRoute,
    /// A request parameter was invalid (e.g. an empty time window).
    InvalidRequest,
    /// Parse fallback only — never emitted by the runtime.
    Unknown,
}

impl Reason {
    /// Every variant, in a fixed order (used to pre-resolve labeled
    /// counters and to render stable histograms).
    pub const ALL: [Reason; 13] = [
        Reason::Served,
        Reason::NoClusterCandidates,
        Reason::OrderingInfeasible,
        Reason::WalkLimitExceeded,
        Reason::DetourBudgetExceeded,
        Reason::CapacityFull,
        Reason::StaleCommit,
        Reason::WindowExpired,
        Reason::SwapEjected,
        Reason::NotServable,
        Reason::NoRoute,
        Reason::InvalidRequest,
        Reason::Unknown,
    ];

    /// Stable snake_case wire code, used in event JSONL, metric labels
    /// and the `xar logs --reason` filter.
    pub const fn code(self) -> &'static str {
        match self {
            Reason::Served => "served",
            Reason::NoClusterCandidates => "no_cluster_candidates",
            Reason::OrderingInfeasible => "ordering_infeasible",
            Reason::WalkLimitExceeded => "walk_limit_exceeded",
            Reason::DetourBudgetExceeded => "detour_budget_exceeded",
            Reason::CapacityFull => "capacity_full",
            Reason::StaleCommit => "stale_commit",
            Reason::WindowExpired => "window_expired",
            Reason::SwapEjected => "swap_ejected",
            Reason::NotServable => "not_servable",
            Reason::NoRoute => "no_route",
            Reason::InvalidRequest => "invalid_request",
            Reason::Unknown => "unknown",
        }
    }

    /// Inverse of [`Reason::code`]; unrecognised codes decode to
    /// [`Reason::Unknown`] so old binaries can read newer logs.
    pub fn from_code(code: &str) -> Reason {
        Reason::ALL.into_iter().find(|r| r.code() == code).unwrap_or(Reason::Unknown)
    }

    /// Position of the variant in [`Reason::ALL`] (for counter arrays).
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Errors returned by the runtime operations.
#[derive(Debug, Clone, PartialEq)]
pub enum XarError {
    /// No driving route exists between the requested end-points.
    NoRoute,
    /// A location falls outside the discretized region and cannot be
    /// served (neither associated with a landmark within `Δ` nor within
    /// walking distance `W` of any cluster).
    NotServable,
    /// The ride id is unknown (never created, or already completed and
    /// retired).
    UnknownRide(RideId),
    /// The ride has no free seats left.
    NoSeats(RideId),
    /// The ride can no longer serve the match: its remaining detour
    /// budget is smaller than the detour the booking would cause.
    DetourExceeded {
        /// The ride that was asked to serve the booking.
        ride: RideId,
        /// Detour the booking would add, metres.
        needed_m: f64,
        /// Remaining detour budget, metres.
        remaining_m: f64,
    },
    /// The match being booked is stale: the ride has already passed the
    /// pick-up point.
    AlreadyPassed(RideId),
    /// A request parameter is invalid (e.g. an empty or negative time
    /// window).
    InvalidRequest(&'static str),
}

impl std::fmt::Display for XarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XarError::NoRoute => write!(f, "no driving route between the requested end-points"),
            XarError::NotServable => {
                write!(f, "location is outside the serviceable discretized region")
            }
            XarError::UnknownRide(id) => write!(f, "unknown ride {id:?}"),
            XarError::NoSeats(id) => write!(f, "ride {id:?} has no free seats"),
            XarError::DetourExceeded { ride, needed_m, remaining_m } => write!(
                f,
                "ride {ride:?} cannot absorb a {needed_m:.0} m detour ({remaining_m:.0} m budget left)"
            ),
            XarError::AlreadyPassed(id) => {
                write!(f, "ride {id:?} has already passed the pick-up point")
            }
            XarError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for XarError {}

impl XarError {
    /// The rejection-reason code this error attributes a failed
    /// request to. Total over the enum — a new `XarError` variant
    /// without a mapping fails to compile.
    pub const fn reason(&self) -> Reason {
        match self {
            XarError::NoRoute => Reason::NoRoute,
            XarError::NotServable => Reason::NotServable,
            XarError::UnknownRide(_) => Reason::StaleCommit,
            XarError::NoSeats(_) => Reason::CapacityFull,
            XarError::DetourExceeded { .. } => Reason::DetourBudgetExceeded,
            XarError::AlreadyPassed(_) => Reason::WindowExpired,
            XarError::InvalidRequest(_) => Reason::InvalidRequest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XarError::DetourExceeded { ride: RideId(7), needed_m: 1234.5, remaining_m: 100.0 };
        let s = e.to_string();
        assert!(s.contains("1234") && s.contains("100"), "{s}");
        assert!(XarError::NoRoute.to_string().contains("no driving route"));
        assert!(XarError::UnknownRide(RideId(3)).to_string().contains("RideId(3)"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&XarError::NoRoute);
    }

    #[test]
    fn reason_codes_round_trip_and_are_distinct() {
        for (i, r) in Reason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i, "ALL order must match discriminant order");
            assert_eq!(Reason::from_code(r.code()), r);
        }
        let mut codes: Vec<_> = Reason::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Reason::ALL.len(), "codes must be distinct");
        assert_eq!(Reason::from_code("certainly-not-a-reason"), Reason::Unknown);
    }

    #[test]
    fn every_error_maps_to_a_specific_reason() {
        // One probe per XarError variant; `reason()` itself is a total
        // match, so this pins the *values*, not just coverage.
        let cases = [
            (XarError::NoRoute, Reason::NoRoute),
            (XarError::NotServable, Reason::NotServable),
            (XarError::UnknownRide(RideId(1)), Reason::StaleCommit),
            (XarError::NoSeats(RideId(1)), Reason::CapacityFull),
            (
                XarError::DetourExceeded { ride: RideId(1), needed_m: 2.0, remaining_m: 1.0 },
                Reason::DetourBudgetExceeded,
            ),
            (XarError::AlreadyPassed(RideId(1)), Reason::WindowExpired),
            (XarError::InvalidRequest("x"), Reason::InvalidRequest),
        ];
        for (err, want) in cases {
            assert_eq!(err.reason(), want, "{err}");
            assert_ne!(err.reason(), Reason::Unknown);
            assert_ne!(err.reason(), Reason::Served);
        }
    }
}
