//! Per-engine telemetry: cached metric handles over an `xar-obs`
//! registry.
//!
//! Every [`crate::engine::XarEngine`] owns one [`EngineMetrics`]. The
//! handles are `Arc`s resolved once at engine construction, so the hot
//! paths (search / create / book / track) never touch the registry's
//! lock — recording is a handful of relaxed atomic operations.
//!
//! Metric names (all under the engine's own registry):
//!
//! | name | type | unit |
//! |------|------|------|
//! | `engine.search_ns` | histogram | ns per search call |
//! | `engine.create_ns` | histogram | ns per ride creation |
//! | `engine.book_ns` | histogram | ns per booking |
//! | `engine.track_ns` | histogram | ns per tracking advance |
//! | `engine.search_candidates` | histogram | rides in the R1 candidate set per search |
//! | `engine.sp_ns` | histogram | ns per shortest-path computation (create/book only) |
//! | `lock.read_hold_ns` | histogram | read-lock hold time (`SharedXarEngine`) |
//! | `lock.write_hold_ns` | histogram | write-lock hold time (`SharedXarEngine`) |
//! | `engine.searches` / `creates` / `bookings` / `tracks` | counter | operation counts ([`crate::engine::EngineStats`]) |
//! | `engine.shortest_paths` | counter | shortest-path computations (create/book — never search) |

use std::sync::Arc;

use xar_obs::{Histogram, Registry};

/// Cached metric handles for one engine instance.
#[derive(Clone)]
pub struct EngineMetrics {
    registry: Arc<Registry>,
    /// End-to-end search latency, nanoseconds.
    pub search_ns: Arc<Histogram>,
    /// End-to-end ride-creation latency, nanoseconds.
    pub create_ns: Arc<Histogram>,
    /// End-to-end booking latency, nanoseconds.
    pub book_ns: Arc<Histogram>,
    /// End-to-end tracking-advance latency, nanoseconds.
    pub track_ns: Arc<Histogram>,
    /// Candidate-set size (distinct rides surviving the R1 source-side
    /// range queries) per search.
    pub search_candidates: Arc<Histogram>,
    /// Per shortest-path computation latency during create/book,
    /// nanoseconds.
    pub sp_ns: Arc<Histogram>,
}

impl EngineMetrics {
    /// Fresh metrics over a new private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Metrics recording into an existing registry (so several engines,
    /// or an engine plus its baseline, can share one snapshot).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let search_ns = registry.histogram("engine.search_ns");
        let create_ns = registry.histogram("engine.create_ns");
        let book_ns = registry.histogram("engine.book_ns");
        let track_ns = registry.histogram("engine.track_ns");
        let search_candidates = registry.histogram("engine.search_candidates");
        let sp_ns = registry.histogram("engine.sp_ns");
        Self { registry, search_ns, create_ns, book_ns, track_ns, search_candidates, sp_ns }
    }

    /// The registry backing these handles (snapshot / JSON export).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_registry() {
        let m = EngineMetrics::new();
        m.search_ns.record(1_000);
        let json = m.registry().snapshot_json();
        assert!(json.contains("\"engine.search_ns\""), "{json}");
        assert!(json.contains("\"engine.book_ns\""), "{json}");
    }

    #[test]
    fn shared_registry_merges_metrics() {
        let reg = Arc::new(Registry::new());
        let a = EngineMetrics::with_registry(Arc::clone(&reg));
        let b = EngineMetrics::with_registry(Arc::clone(&reg));
        a.search_ns.record(10);
        b.search_ns.record(20);
        assert_eq!(reg.histogram("engine.search_ns").count(), 2);
    }
}
