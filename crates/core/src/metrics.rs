//! Per-engine telemetry: cached metric handles over an `xar-obs`
//! registry.
//!
//! Every [`crate::engine::XarEngine`] owns one [`EngineMetrics`]. The
//! handles are `Arc`s resolved once at engine construction, so the hot
//! paths (search / create / book / track) never touch the registry's
//! lock — recording is a handful of relaxed atomic operations.
//!
//! Metric names (all under the engine's own registry):
//!
//! | name | type | unit |
//! |------|------|------|
//! | `engine.search_ns` | histogram | ns per search call |
//! | `engine.create_ns` | histogram | ns per ride creation |
//! | `engine.book_ns` | histogram | ns per booking |
//! | `engine.track_ns` | histogram | ns per tracking advance |
//! | `engine.search_candidates` | histogram | rides in the R1 candidate set per search |
//! | `engine.sp_ns` | histogram | ns per shortest-path computation (create/book only) |
//! | `lock.read_hold_ns` | histogram | shard read-lock hold time (track probes and maintenance — search is lock-free) |
//! | `lock.write_hold_ns` | histogram | shard write-lock hold time (create/book/track) |
//! | `engine.snapshot_publish_ns` | histogram | ns to build + publish one shard search snapshot |
//! | `engine.snapshot_publishes` | counter | shard snapshots published |
//! | `engine.snapshot_retired_freed` | counter | retired snapshots reclaimed (epoch passed) |
//! | `engine.snapshot_backlog` | gauge | retired snapshots still pinned by readers |
//! | `snapshot.partial_publishes` | counter | publishes that patched only dirty cluster segments (vs full rebuilds) |
//! | `snapshot.dirty_clusters` | histogram | dirty clusters drained per publish (full or partial) |
//! | `snapshot.compacted_rides` | counter | retired rides compacted out of snapshots at publish |
//! | `engine.searches` / `creates` / `bookings` / `tracks` | counter | operation counts ([`crate::engine::EngineStats`]) |
//! | `engine.shortest_paths` | counter | shortest-path computations (create/book — never search) |
//!
//! Labeled series (low-cardinality, pre-resolved into the arrays
//! below so the hot paths never re-intern):
//!
//! | series | type | meaning |
//! |--------|------|---------|
//! | `engine.search_ns{tier="t1\|t2\|t3"}` | histogram | search latency by source fan-out: t1 ≤ 2 walkable clusters, t2 3–6, t3 ≥ 7 (unservable searches carry no tier) |
//! | `engine.book_ns{cluster="bK"}` | histogram | booking latency by pick-up cluster bucket (`K = cluster id mod 8`) |
//! | `engine.bookings{cluster="bK"}` | counter | bookings per pick-up cluster bucket |
//! | `engine.cluster_rides{cluster="bK"}` | gauge | live rides whose source lies in cluster bucket `K` (+1 on create, −1 on retire) |
//!
//! The `engine.search_ns{tier=…}` and `engine.book_ns` families also
//! retain latency **exemplars** (trace ids of the slowest recent
//! requests, captured when a trace is active) via
//! [`xar_obs::profile::exemplar_handle`]; `/metrics` renders them in
//! OpenMetrics exemplar syntax.

use std::sync::Arc;

use xar_obs::profile::{exemplar_handle, ExemplarSlot};
use xar_obs::{Counter, Gauge, Histogram, Registry};

/// Number of cluster buckets for per-cluster labels. Cluster ids are
/// folded modulo this (the label cardinality budget caps at 8 series
/// per family, far under the registry's 64-series overflow cap).
pub const CLUSTER_BUCKETS: usize = 8;

/// The `cluster` label values, index-aligned with the bucket arrays.
pub const CLUSTER_BUCKET_NAMES: [&str; CLUSTER_BUCKETS] =
    ["b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"];

/// The `tier` label values for search fan-out (source walkable-cluster
/// count: t1 ≤ 2, t2 3–6, t3 ≥ 7).
pub const SEARCH_TIERS: [&str; 3] = ["t1", "t2", "t3"];

/// Cached metric handles for one engine instance.
#[derive(Clone)]
pub struct EngineMetrics {
    registry: Arc<Registry>,
    /// End-to-end search latency, nanoseconds.
    pub search_ns: Arc<Histogram>,
    /// End-to-end ride-creation latency, nanoseconds.
    pub create_ns: Arc<Histogram>,
    /// End-to-end booking latency, nanoseconds.
    pub book_ns: Arc<Histogram>,
    /// End-to-end tracking-advance latency, nanoseconds.
    pub track_ns: Arc<Histogram>,
    /// Candidate-set size (distinct rides surviving the R1 source-side
    /// range queries) per search.
    pub search_candidates: Arc<Histogram>,
    /// Per shortest-path computation latency during create/book,
    /// nanoseconds.
    pub sp_ns: Arc<Histogram>,
    /// `engine.search_ns{tier=…}` — search latency by source fan-out,
    /// index-aligned with [`SEARCH_TIERS`].
    pub search_ns_tier: [Arc<Histogram>; 3],
    /// `engine.book_ns{cluster=…}` — booking latency by pick-up cluster
    /// bucket, index-aligned with [`CLUSTER_BUCKET_NAMES`].
    pub book_ns_cluster: [Arc<Histogram>; CLUSTER_BUCKETS],
    /// `engine.bookings{cluster=…}` — bookings per pick-up cluster
    /// bucket.
    pub bookings_cluster: [Arc<Counter>; CLUSTER_BUCKETS],
    /// `engine.cluster_rides{cluster=…}` — live-ride occupancy per
    /// source cluster bucket.
    pub cluster_rides: [Arc<Gauge>; CLUSTER_BUCKETS],
    /// Time to build and publish one shard search snapshot, nanoseconds
    /// (write-path cost of the lock-free read path).
    pub snapshot_publish_ns: Arc<Histogram>,
    /// Shard snapshots published.
    pub snapshot_publishes: Arc<Counter>,
    /// Retired snapshots reclaimed after their epoch passed.
    pub snapshot_retired_freed: Arc<Counter>,
    /// Retired snapshots not yet reclaimable because a reader pinned an
    /// older epoch. Persistently non-zero means a reader is stuck
    /// pinned.
    pub snapshot_backlog: Arc<Gauge>,
    /// Publishes that patched the previous snapshot (rebuilt only dirty
    /// cluster segments, structurally sharing the rest) instead of a
    /// full rebuild. `snapshot_publishes − snapshot_partial_publishes`
    /// is the full-rebuild count.
    pub snapshot_partial_publishes: Arc<Counter>,
    /// Dirty clusters drained per publish — the quantity incremental
    /// publish cost is proportional to.
    pub snapshot_dirty_clusters: Arc<Histogram>,
    /// Retired (completed/expired) rides compacted out of the published
    /// ride table — the memory-bound half of ROADMAP item 5.
    pub snapshot_compacted_rides: Arc<Counter>,
    /// Latency exemplars for `engine.search_ns{tier=…}` — the trace ids
    /// behind the slowest recent searches per tier, index-aligned with
    /// [`SEARCH_TIERS`]. Process-global (exemplars link to the
    /// process-global flight recorder's trace ids).
    pub search_exemplar_tier: [Arc<ExemplarSlot>; 3],
    /// Latency exemplars for the aggregate `engine.book_ns` series.
    pub book_exemplar: Arc<ExemplarSlot>,
}

impl EngineMetrics {
    /// Fresh metrics over a new private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Metrics recording into an existing registry (so several engines,
    /// or an engine plus its baseline, can share one snapshot).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let search_ns = registry.histogram("engine.search_ns");
        let create_ns = registry.histogram("engine.create_ns");
        let book_ns = registry.histogram("engine.book_ns");
        let track_ns = registry.histogram("engine.track_ns");
        let search_candidates = registry.histogram("engine.search_candidates");
        let sp_ns = registry.histogram("engine.sp_ns");
        let search_ns_tier =
            SEARCH_TIERS.map(|t| registry.histogram_with("engine.search_ns", &[("tier", t)]));
        let book_ns_cluster = CLUSTER_BUCKET_NAMES
            .map(|b| registry.histogram_with("engine.book_ns", &[("cluster", b)]));
        let bookings_cluster = CLUSTER_BUCKET_NAMES
            .map(|b| registry.counter_with("engine.bookings", &[("cluster", b)]));
        let cluster_rides = CLUSTER_BUCKET_NAMES
            .map(|b| registry.gauge_with("engine.cluster_rides", &[("cluster", b)]));
        let snapshot_publish_ns = registry.histogram("engine.snapshot_publish_ns");
        let snapshot_publishes = registry.counter("engine.snapshot_publishes");
        let snapshot_retired_freed = registry.counter("engine.snapshot_retired_freed");
        let snapshot_backlog = registry.gauge("engine.snapshot_backlog");
        let snapshot_partial_publishes = registry.counter("snapshot.partial_publishes");
        let snapshot_dirty_clusters = registry.histogram("snapshot.dirty_clusters");
        let snapshot_compacted_rides = registry.counter("snapshot.compacted_rides");
        let search_exemplar_tier =
            SEARCH_TIERS.map(|t| exemplar_handle("engine.search_ns", &[("tier", t)]));
        let book_exemplar = exemplar_handle("engine.book_ns", &[]);
        Self {
            registry,
            search_ns,
            create_ns,
            book_ns,
            track_ns,
            search_candidates,
            sp_ns,
            search_ns_tier,
            book_ns_cluster,
            bookings_cluster,
            cluster_rides,
            snapshot_publish_ns,
            snapshot_publishes,
            snapshot_retired_freed,
            snapshot_backlog,
            snapshot_partial_publishes,
            snapshot_dirty_clusters,
            snapshot_compacted_rides,
            search_exemplar_tier,
            book_exemplar,
        }
    }

    /// The registry backing these handles (snapshot / JSON export).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Index into [`SEARCH_TIERS`] / `search_ns_tier` for a search whose
    /// source has `walkable` walkable clusters.
    #[inline]
    pub fn tier_index(walkable: usize) -> usize {
        match walkable {
            0..=2 => 0,
            3..=6 => 1,
            _ => 2,
        }
    }

    /// Index into the per-cluster bucket arrays for a cluster id.
    #[inline]
    pub fn cluster_bucket(cluster: u32) -> usize {
        cluster as usize % CLUSTER_BUCKETS
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_registry() {
        let m = EngineMetrics::new();
        m.search_ns.record(1_000);
        let json = m.registry().snapshot_json();
        assert!(json.contains("\"engine.search_ns\""), "{json}");
        assert!(json.contains("\"engine.book_ns\""), "{json}");
    }

    #[test]
    fn labeled_handles_are_distinct_series() {
        let m = EngineMetrics::new();
        m.search_ns_tier[0].record(10);
        m.search_ns_tier[2].record(99);
        m.bookings_cluster[3].inc();
        m.cluster_rides[3].add(1);
        // Series keys carry their labels; the inner quotes arrive
        // JSON-escaped in the document text.
        let json = m.registry().snapshot_json();
        assert!(json.contains("engine.search_ns{tier=\\\"t1\\\"}"), "{json}");
        assert!(json.contains("engine.search_ns{tier=\\\"t3\\\"}"), "{json}");
        assert!(json.contains("engine.bookings{cluster=\\\"b3\\\"}"), "{json}");
        assert!(json.contains("engine.cluster_rides{cluster=\\\"b3\\\"}"), "{json}");
        // The unlabeled aggregate family still coexists.
        m.search_ns.record(7);
        assert!(m.registry().snapshot_json().contains("\"engine.search_ns\""));
    }

    #[test]
    fn tier_and_bucket_mapping() {
        assert_eq!(EngineMetrics::tier_index(0), 0);
        assert_eq!(EngineMetrics::tier_index(2), 0);
        assert_eq!(EngineMetrics::tier_index(3), 1);
        assert_eq!(EngineMetrics::tier_index(6), 1);
        assert_eq!(EngineMetrics::tier_index(7), 2);
        assert_eq!(EngineMetrics::tier_index(1_000), 2);
        assert_eq!(EngineMetrics::cluster_bucket(0), 0);
        assert_eq!(EngineMetrics::cluster_bucket(8), 0);
        assert_eq!(EngineMetrics::cluster_bucket(13), 5);
    }

    #[test]
    fn shared_registry_merges_metrics() {
        let reg = Arc::new(Registry::new());
        let a = EngineMetrics::with_registry(Arc::clone(&reg));
        let b = EngineMetrics::with_registry(Arc::clone(&reg));
        a.search_ns.record(10);
        b.search_ns.record(20);
        assert_eq!(reg.histogram("engine.search_ns").count(), 2);
    }
}
