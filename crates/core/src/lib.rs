//! XAR runtime unit: the cluster-based in-memory ride index and the
//! four runtime operations of the paper.
//!
//! * **Create** (operation O2, §VI) — register a ride offer: compute its
//!   route, derive its pass-through clusters and, per segment, the
//!   reachable clusters within the detour limit, and insert the ride
//!   into every such cluster's *potential rides* lists.
//! * **Search** (operation O1, §VII) — the two-step candidate
//!   generation (walkable clusters at the source and destination,
//!   logarithmic ETA range queries on the per-cluster lists, set
//!   intersection) followed by the combined walking and detour checks.
//!   **No shortest path is computed** — the defining property of XAR.
//! * **Book** (§VIII.B) — confirm a match: insert pick-up/drop-off
//!   via-points, recompute at most 4 shortest paths, update the route,
//!   seats and detour budget, and refresh the index.
//! * **Track** (operation O3, §VIII.A) — advance a ride along its
//!   route, marking crossed pass-through clusters (and reachable
//!   clusters that are no longer servable) obsolete, and removing the
//!   ride from the potential lists of clusters it can no longer serve.
//!
//! The entry point is [`engine::XarEngine`]. All four operations are
//! instrumented through [`metrics::EngineMetrics`] (an `xar-obs`
//! registry), so latency percentiles come for free:
//!
//! ```
//! use std::sync::Arc;
//! use xar_core::{EngineConfig, RideOffer, XarEngine};
//! use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
//! use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};
//!
//! let graph = Arc::new(CityConfig::test_city(3).generate());
//! let pois = sample_pois(&graph, &PoiConfig { count: 200, ..Default::default() });
//! let region = Arc::new(RegionIndex::build(
//!     Arc::clone(&graph),
//!     &pois,
//!     RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
//! ));
//!
//! let mut engine = XarEngine::new(region, EngineConfig::default());
//! let n = graph.node_count() as u32;
//! engine
//!     .create_ride(&RideOffer::simple(
//!         graph.point(NodeId(0)),
//!         graph.point(NodeId(n - 1)),
//!         8.0 * 3600.0,
//!         3,
//!         2_500.0,
//!     ))
//!     .unwrap();
//! // The create was timed into the engine's metrics registry.
//! let reg = engine.metrics().registry();
//! assert_eq!(reg.histogram("engine.create_ns").count(), 1);
//! ```

#![warn(missing_docs)]

pub mod booking;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod index;
pub mod metrics;
pub mod request;
pub mod ride;
pub mod search;
pub mod sharded;
pub mod snapshot;
pub mod social;
pub mod tracking;

pub use booking::BookingOutcome;
pub use concurrent::SharedXarEngine;
pub use engine::{EngineConfig, EngineStats, EngineStatsSnapshot, RideDirt, XarEngine};
pub use error::{Reason, XarError};
pub use index::ClusterIndex;
pub use metrics::EngineMetrics;
pub use request::RideRequest;
pub use ride::{Ride, RideId, RideOffer, RideStatus, RiderId};
pub use search::{RideMatch, SearchExplain};
pub use sharded::{ShardOccupancy, ShardedXarEngine, DEFAULT_SHARDS, MAX_SHARDS};
pub use snapshot::{SearchScratch, ShardSnapshot, SnapshotCell};
pub use social::SocialGraph;
