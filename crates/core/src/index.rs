//! The per-cluster *potential rides* lists (§VI).
//!
//! > *"Additionally, each cluster has a list of rides associated with it
//! > as potential rides. With each cluster C, this information is
//! > maintained as a list of tuples of the form ⟨r, t⟩, where r denotes
//! > a ride in the system, and t is the estimated time of arrival of the
//! > ride in the cluster C. We maintain the tuples in two different
//! > lists, one sorted in non-decreasing order by the time of arrival,
//! > and the other sorted by the unique ride identification numbers."*
//!
//! The ETA-ordered list is a `BTreeMap` keyed by `(eta, ride)` — range
//! queries over a departure window are logarithmic, exactly the search
//! cost the paper claims. The id-ordered list is a `HashMap` from ride
//! id to its ETA key — constant-time membership tests for the search
//! intersection step, and constant-time location of the entry to delete
//! during tracking and booking updates.

use std::collections::{BTreeMap, HashMap};

use xar_discretize::ClusterId;

use crate::ride::RideId;

/// Total-ordered `f64` wrapper so ETAs can key a `BTreeMap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One entry of a cluster's potential-rides list: the paper's `⟨r, t⟩`
/// tuple, extended with what the final search checks need so that no
/// shortest path is ever computed at search time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentialRide {
    /// The ride.
    pub ride: RideId,
    /// Estimated time of arrival of the ride in this cluster, absolute
    /// seconds.
    pub eta_s: f64,
    /// Estimated extra driving distance the ride incurs to serve this
    /// cluster (0 for a pass-through cluster), metres.
    pub detour_m: f64,
    /// The segment of the ride this entry belongs to.
    pub seg: usize,
    /// The pass-through cluster this entry is reachable from (equals
    /// the cluster itself for pass-through entries).
    pub via_pass: ClusterId,
    /// Route way-point index where the ride enters `via_pass` — used by
    /// search to enforce that pick-up precedes drop-off *along the
    /// route*, not merely in estimated time.
    pub pass_route_idx: usize,
}

#[derive(Debug, Default, Clone)]
struct ClusterList {
    by_eta: BTreeMap<(OrdF64, RideId), PotentialRide>,
    by_ride: HashMap<RideId, OrdF64>,
}

/// The in-memory index: one dual-sorted potential-rides list per
/// cluster.
#[derive(Debug, Clone)]
pub struct ClusterIndex {
    lists: Vec<ClusterList>,
    entries: usize,
    /// Clusters whose lists changed since the last [`Self::drain_dirty`]
    /// — the working set of an incremental snapshot publish. Kept
    /// duplicate-free by `dirty_mark`.
    dirty: Vec<u32>,
    /// Per-cluster membership bit for `dirty` (O(1) dedup on mark).
    dirty_mark: Vec<bool>,
    /// When this index is one shard of a
    /// [`crate::sharded::ShardedXarEngine`]: the shared occupancy map
    /// and this shard's bit, kept in sync on every empty↔non-empty
    /// transition of a cluster list so searches can skip shards that
    /// hold nothing for their cluster fan-out.
    occupancy: Option<(std::sync::Arc<crate::sharded::ShardOccupancy>, u32)>,
}

impl ClusterIndex {
    /// Create an index over `cluster_count` clusters.
    pub fn new(cluster_count: usize) -> Self {
        Self {
            lists: vec![ClusterList::default(); cluster_count],
            entries: 0,
            dirty: Vec::new(),
            dirty_mark: vec![false; cluster_count],
            occupancy: None,
        }
    }

    /// Record that `cluster`'s list mutated. Only actual mutations mark
    /// — an `insert` that loses its better-detour race leaves the list,
    /// and therefore the dirty set, untouched.
    #[inline]
    fn mark_dirty(&mut self, cluster: ClusterId) {
        let c = cluster.index();
        if !self.dirty_mark[c] {
            self.dirty_mark[c] = true;
            self.dirty.push(c as u32);
        }
    }

    /// Take the set of clusters whose lists changed since the last
    /// drain (duplicate-free, unordered) and reset the marks. Called by
    /// snapshot publication under the shard write lock.
    pub fn drain_dirty(&mut self) -> Vec<u32> {
        for &c in &self.dirty {
            self.dirty_mark[c as usize] = false;
        }
        std::mem::take(&mut self.dirty)
    }

    /// Number of clusters currently marked dirty.
    #[inline]
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Publish this index's per-cluster emptiness into `occupancy` as
    /// shard `shard`. Existing non-empty lists are back-filled into the
    /// map (the single-shard facade wraps already-populated engines),
    /// then `insert`/`remove` keep it in sync incrementally.
    pub(crate) fn attach_occupancy(
        &mut self,
        occupancy: std::sync::Arc<crate::sharded::ShardOccupancy>,
        shard: u32,
    ) {
        for (c, list) in self.lists.iter().enumerate() {
            if !list.by_ride.is_empty() {
                occupancy.set(c, shard);
            }
        }
        self.occupancy = Some((occupancy, shard));
    }

    /// Number of clusters.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.lists.len()
    }

    /// Total `⟨r, t⟩` entries across all clusters.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert (or improve) the entry for `entry.ride` in `cluster`'s
    /// list. If the ride is already listed, the entry with the smaller
    /// estimated detour wins (ties: earlier ETA).
    pub fn insert(&mut self, cluster: ClusterId, entry: PotentialRide) {
        let list = &mut self.lists[cluster.index()];
        let was_empty = list.by_ride.is_empty();
        if let Some(&old_eta) = list.by_ride.get(&entry.ride) {
            let old = list.by_eta[&(old_eta, entry.ride)];
            let better = entry.detour_m < old.detour_m
                || (entry.detour_m == old.detour_m && entry.eta_s < old.eta_s);
            if !better {
                return;
            }
            list.by_eta.remove(&(old_eta, entry.ride));
            self.entries -= 1;
        }
        list.by_ride.insert(entry.ride, OrdF64(entry.eta_s));
        list.by_eta.insert((OrdF64(entry.eta_s), entry.ride), entry);
        self.entries += 1;
        if was_empty {
            if let Some((occ, shard)) = &self.occupancy {
                occ.set(cluster.index(), *shard);
            }
        }
        self.mark_dirty(cluster);
    }

    /// Remove `ride` from `cluster`'s list. Returns the removed entry.
    pub fn remove(&mut self, cluster: ClusterId, ride: RideId) -> Option<PotentialRide> {
        let list = &mut self.lists[cluster.index()];
        let eta = list.by_ride.remove(&ride)?;
        let removed = list.by_eta.remove(&(eta, ride));
        debug_assert!(removed.is_some(), "dual lists out of sync");
        self.entries -= 1;
        if list.by_ride.is_empty() {
            if let Some((occ, shard)) = &self.occupancy {
                occ.clear(cluster.index(), *shard);
            }
        }
        self.mark_dirty(cluster);
        removed
    }

    /// The entry for `ride` in `cluster`, if present (the id-sorted
    /// list's constant-time lookup).
    pub fn get(&self, cluster: ClusterId, ride: RideId) -> Option<&PotentialRide> {
        let list = &self.lists[cluster.index()];
        let eta = list.by_ride.get(&ride)?;
        list.by_eta.get(&(*eta, ride))
    }

    /// Rides whose ETA in `cluster` lies in `[from_s, to_s]`, in ETA
    /// order — the logarithmic range query of search Step 1.
    pub fn range_eta(
        &self,
        cluster: ClusterId,
        from_s: f64,
        to_s: f64,
    ) -> impl Iterator<Item = &PotentialRide> {
        let lo = (OrdF64(from_s), RideId(0));
        let hi = (OrdF64(to_s), RideId(u64::MAX));
        self.lists[cluster.index()].by_eta.range(lo..=hi).map(|(_, v)| v)
    }

    /// All entries of `cluster` in ETA order.
    pub fn entries_of(&self, cluster: ClusterId) -> impl Iterator<Item = &PotentialRide> {
        self.lists[cluster.index()].by_eta.values()
    }

    /// Number of rides listed in `cluster`.
    pub fn cluster_len(&self, cluster: ClusterId) -> usize {
        self.lists[cluster.index()].by_ride.len()
    }

    /// Approximate heap bytes (index-size accounting, Figure 3c).
    pub fn heap_bytes(&self) -> usize {
        // BTreeMap nodes amortize to roughly key+value+overhead per
        // entry; HashMap to key+value over its load factor.
        let per_btree_entry = std::mem::size_of::<((OrdF64, RideId), PotentialRide)>() + 16;
        let per_hash_entry =
            (std::mem::size_of::<(RideId, OrdF64)>() as f64 / 0.85) as usize + 8;
        self.lists.capacity() * std::mem::size_of::<ClusterList>()
            + self.entries * (per_btree_entry + per_hash_entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ride: u64, eta: f64, detour: f64) -> PotentialRide {
        PotentialRide {
            ride: RideId(ride),
            eta_s: eta,
            detour_m: detour,
            seg: 0,
            via_pass: ClusterId(0),
            pass_route_idx: 0,
        }
    }

    #[test]
    fn insert_and_get() {
        let mut idx = ClusterIndex::new(3);
        idx.insert(ClusterId(1), entry(7, 100.0, 0.0));
        assert_eq!(idx.len(), 1);
        let e = idx.get(ClusterId(1), RideId(7)).unwrap();
        assert_eq!(e.eta_s, 100.0);
        assert!(idx.get(ClusterId(0), RideId(7)).is_none());
        assert!(idx.get(ClusterId(1), RideId(8)).is_none());
    }

    #[test]
    fn range_query_is_eta_ordered_and_inclusive() {
        let mut idx = ClusterIndex::new(1);
        for (r, t) in [(1u64, 50.0), (2, 100.0), (3, 150.0), (4, 200.0)] {
            idx.insert(ClusterId(0), entry(r, t, 0.0));
        }
        let got: Vec<u64> = idx.range_eta(ClusterId(0), 100.0, 200.0).map(|e| e.ride.0).collect();
        assert_eq!(got, vec![2, 3, 4]);
        let empty: Vec<_> = idx.range_eta(ClusterId(0), 300.0, 400.0).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn equal_etas_are_kept_per_ride() {
        let mut idx = ClusterIndex::new(1);
        idx.insert(ClusterId(0), entry(1, 100.0, 0.0));
        idx.insert(ClusterId(0), entry(2, 100.0, 0.0));
        assert_eq!(idx.cluster_len(ClusterId(0)), 2);
        let got: Vec<u64> = idx.range_eta(ClusterId(0), 100.0, 100.0).map(|e| e.ride.0).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn reinsert_keeps_smaller_detour() {
        let mut idx = ClusterIndex::new(1);
        idx.insert(ClusterId(0), entry(1, 100.0, 500.0));
        idx.insert(ClusterId(0), entry(1, 120.0, 200.0)); // better detour wins
        assert_eq!(idx.len(), 1);
        let e = idx.get(ClusterId(0), RideId(1)).unwrap();
        assert_eq!(e.detour_m, 200.0);
        assert_eq!(e.eta_s, 120.0);
        // Worse detour does not displace.
        idx.insert(ClusterId(0), entry(1, 90.0, 300.0));
        assert_eq!(idx.get(ClusterId(0), RideId(1)).unwrap().detour_m, 200.0);
    }

    #[test]
    fn remove_keeps_lists_in_sync() {
        let mut idx = ClusterIndex::new(2);
        idx.insert(ClusterId(0), entry(1, 100.0, 0.0));
        idx.insert(ClusterId(0), entry(2, 200.0, 0.0));
        idx.insert(ClusterId(1), entry(1, 300.0, 0.0));
        let removed = idx.remove(ClusterId(0), RideId(1)).unwrap();
        assert_eq!(removed.eta_s, 100.0);
        assert_eq!(idx.len(), 2);
        assert!(idx.get(ClusterId(0), RideId(1)).is_none());
        assert!(idx.get(ClusterId(1), RideId(1)).is_some());
        assert!(idx.remove(ClusterId(0), RideId(1)).is_none(), "double remove is None");
    }

    #[test]
    fn negative_and_zero_etas_order_correctly() {
        let mut idx = ClusterIndex::new(1);
        idx.insert(ClusterId(0), entry(1, -50.0, 0.0));
        idx.insert(ClusterId(0), entry(2, 0.0, 0.0));
        let got: Vec<u64> = idx.range_eta(ClusterId(0), f64::NEG_INFINITY, 0.0).map(|e| e.ride.0).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn dirty_set_tracks_mutations_only_and_drains_clean() {
        let mut idx = ClusterIndex::new(4);
        assert!(idx.drain_dirty().is_empty());
        idx.insert(ClusterId(1), entry(1, 100.0, 500.0));
        idx.insert(ClusterId(1), entry(2, 110.0, 0.0));
        idx.insert(ClusterId(3), entry(1, 200.0, 0.0));
        // A losing better-detour insert is a no-op: no dirt.
        idx.insert(ClusterId(3), entry(1, 90.0, 300.0));
        let mut d = idx.drain_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 3]);
        assert_eq!(idx.dirty_len(), 0);
        // Post-drain mutations mark afresh; duplicates collapse.
        idx.remove(ClusterId(1), RideId(1));
        idx.remove(ClusterId(1), RideId(2));
        assert!(idx.remove(ClusterId(2), RideId(9)).is_none(), "miss leaves no dirt");
        assert_eq!(idx.drain_dirty(), vec![1]);
    }

    #[test]
    fn heap_bytes_scales_with_entries() {
        let mut idx = ClusterIndex::new(4);
        let empty = idx.heap_bytes();
        for r in 0..100 {
            idx.insert(ClusterId((r % 4) as u32), entry(r, r as f64, 0.0));
        }
        assert!(idx.heap_bytes() > empty);
    }
}
