//! The optimized ride search operation (§VII) — operation O1.
//!
//! Two-step procedure, verbatim from the paper:
//!
//! * **Step 1** — identify the grid of the request's source, take its
//!   walkable clusters pruned to the rider's walking limit (linear in
//!   the sorted list), and for each such cluster run a logarithmic ETA
//!   range query on its potential-rides list. The union is `R1`.
//! * **Step 2** — the same from the destination, giving `R2`; the
//!   candidate set is `R' = R1 ∩ R2`.
//!
//! Finally, each candidate is checked for (a) combined walking at both
//! ends within the rider's limit, and (b) combined estimated detour at
//! both ends within the ride's remaining detour limit — plus pick-up
//! strictly preceding drop-off and a free seat. **No shortest paths are
//! computed anywhere on this path.**

use std::collections::HashMap;

use xar_discretize::{ClusterId, LandmarkId, WalkEntry};

use crate::engine::XarEngine;
use crate::error::{Reason, XarError};
use crate::index::PotentialRide;
use crate::request::RideRequest;
use crate::ride::RideId;

/// Per-search rejection attribution, filled alongside candidate
/// generation: how many candidate rides each feasibility check turned
/// away, plus the search tier. A plain `Copy` stack struct so the
/// explained search path stays allocation-free (the sharded engine's
/// zero-alloc guarantee covers it — see `tests/snapshot_alloc`).
///
/// Each candidate ride in `R1` is classified exactly once: matched,
/// or attributed to the *deepest* check any of its (source,
/// destination) pairings reached — checks run ordering → walk →
/// detour, so e.g. `detour_rejected` means some pairing passed
/// ordering and walking and failed only on the detour budget. Rides
/// with no free seat count as `seat_rejected` before pairing; rides
/// never seen on the destination side count as `unpaired`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchExplain {
    /// Search tier (1-based fan-out bucket; 0 when the search never
    /// reached candidate generation).
    pub tier: u8,
    /// `|R1|` — candidate rides on the source side.
    pub candidates: u32,
    /// Candidates turned away because no seat was free.
    pub seat_rejected: u32,
    /// Candidates whose every viable pairing failed only the
    /// detour-budget check.
    pub detour_rejected: u32,
    /// Candidates whose pairings passed ordering but exceeded the
    /// rider's combined walking limit.
    pub walk_rejected: u32,
    /// Candidates where no pairing had pick-up strictly before
    /// drop-off.
    pub ordering_rejected: u32,
    /// Candidates in `R1` that never appeared on the destination side
    /// (`R1 \ R2`).
    pub unpaired: u32,
    /// A failure that pre-empted candidate generation entirely
    /// (invalid request, unservable end-point).
    pub hard: Option<Reason>,
}

impl SearchExplain {
    /// The single [`Reason`] that best summarises this search, given
    /// how many matches it returned. Never [`Reason::Unknown`]: a
    /// matchless search with candidates has every candidate classified
    /// by exactly one counter.
    pub fn dominant_reason(&self, matches: usize) -> Reason {
        if matches > 0 {
            return Reason::Served;
        }
        if let Some(hard) = self.hard {
            return hard;
        }
        if self.candidates == 0 {
            return Reason::NoClusterCandidates;
        }
        // Largest class wins; ties break toward the scarcer resource
        // (seats, then detour budget) so the answer is deterministic.
        let classes = [
            (self.seat_rejected, Reason::CapacityFull),
            (self.detour_rejected, Reason::DetourBudgetExceeded),
            (self.walk_rejected, Reason::WalkLimitExceeded),
            (self.ordering_rejected, Reason::OrderingInfeasible),
            (self.unpaired, Reason::NoClusterCandidates),
        ];
        let mut best = (0u32, Reason::NoClusterCandidates);
        for (n, r) in classes {
            if n > best.0 {
                best = (n, r);
            }
        }
        best.1
    }

    /// Record that one candidate ride was rejected at pairing depth
    /// `deepest` (1 = ordering, 2 = walking, 3 = detour).
    #[inline]
    pub(crate) fn reject_at_depth(&mut self, deepest: u8) {
        match deepest {
            1 => self.ordering_rejected += 1,
            2 => self.walk_rejected += 1,
            _ => self.detour_rejected += 1,
        }
    }
}

/// A feasible match returned by search: everything booking needs,
/// carried forward so that booking does not repeat the search work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RideMatch {
    /// The matched ride.
    pub ride: RideId,
    /// Cluster the rider walks to for pick-up.
    pub pickup_cluster: ClusterId,
    /// Concrete landmark within the pick-up cluster (nearest to the
    /// rider).
    pub pickup_landmark: LandmarkId,
    /// Cluster the rider is dropped off in.
    pub dropoff_cluster: ClusterId,
    /// Concrete drop-off landmark.
    pub dropoff_landmark: LandmarkId,
    /// Walking distance to the pick-up landmark, metres.
    pub walk_pickup_m: f64,
    /// Walking distance from the drop-off landmark, metres.
    pub walk_dropoff_m: f64,
    /// Estimated ride arrival at the pick-up cluster, absolute seconds.
    pub eta_pickup_s: f64,
    /// Estimated ride arrival at the drop-off cluster.
    pub eta_dropoff_s: f64,
    /// Combined estimated detour the ride incurs (pick-up + drop-off),
    /// metres.
    pub detour_est_m: f64,
    /// Ride segment the pick-up belongs to.
    pub pickup_seg: usize,
    /// Ride segment the drop-off belongs to.
    pub dropoff_seg: usize,
}

impl RideMatch {
    /// Total walking the rider incurs, metres.
    #[inline]
    pub fn walk_total_m(&self) -> f64 {
        self.walk_pickup_m + self.walk_dropoff_m
    }
}

/// Per-side candidate record: the best (least-walk) walkable cluster
/// through which each ride was found.
#[derive(Debug, Clone, Copy)]
struct SideHit {
    cluster: ClusterId,
    landmark: LandmarkId,
    walk_m: f64,
    entry: PotentialRide,
}

impl XarEngine {
    /// Search for rides that can serve `req`, returning up to `limit`
    /// matches (`usize::MAX` for all), best (least combined walking)
    /// first.
    ///
    /// Errors with [`XarError::NotServable`] when either end-point has
    /// no walkable cluster within the rider's limit — "if a grid is
    /// neither in the driving distance of a landmark ... nor within the
    /// walking distance of any landmarks/cluster, then requests from it
    /// will not be served" (§IV).
    pub fn search(&self, req: &RideRequest, limit: usize) -> Result<Vec<RideMatch>, XarError> {
        let mut explain = SearchExplain::default();
        self.search_explained(req, limit, &mut explain)
    }

    /// [`XarEngine::search`], also filling `explain` with per-check
    /// rejection attribution for the event plane. `explain` is reset
    /// first; on error it carries the corresponding hard
    /// [`Reason`].
    pub fn search_explained(
        &self,
        req: &RideRequest,
        limit: usize,
        explain: &mut SearchExplain,
    ) -> Result<Vec<RideMatch>, XarError> {
        *explain = SearchExplain::default();
        if let Err(e) = req.validate() {
            explain.hard = Some(e.reason());
            return Err(e);
        }
        self.stats.searches.inc();
        let t0 = std::time::Instant::now();
        let _span = xar_obs::SpanTimer::new(std::sync::Arc::clone(&self.metrics.search_ns));
        let mut tspan = xar_obs::trace::span("search");
        let region = self.region();
        let src_node = region.snap(&req.source);
        let dst_node = region.snap(&req.destination);
        let src_walkable = region.walkable_within(src_node, req.walk_limit_m);
        let dst_walkable = region.walkable_within(dst_node, req.walk_limit_m);
        if src_walkable.is_empty() || dst_walkable.is_empty() {
            explain.hard = Some(Reason::NotServable);
            return Err(XarError::NotServable);
        }
        // Tiered latency series: fan-out (walkable clusters on the
        // source side) is the main cost driver, so the per-tier p99s
        // separate "cheap" from "wide" searches on a live dashboard.
        // Unservable searches (above) carry no tier.
        let tier = crate::metrics::EngineMetrics::tier_index(src_walkable.len());
        explain.tier = tier as u8 + 1;
        let tier_hist = &self.metrics.search_ns_tier[tier];

        let mut out = Vec::new();
        let candidates = collect_matches(self, src_walkable, dst_walkable, req, &mut out, explain);
        self.metrics.search_candidates.record(candidates as u64);
        tspan.attr("candidates", candidates);

        sort_matches(&mut out);
        out.truncate(limit);
        tspan.attr("matches", out.len());
        tier_hist.record(t0.elapsed().as_nanos() as u64);
        Ok(out)
    }
}

/// "the ride that incurs least walking for the requester is matched"
/// (§X.A.2): least walking first, deterministic ties. Each ride yields
/// at most one match, so the ride-id tiebreak makes the comparator a
/// total order and `sort_unstable` (no temp allocation — the search
/// path must stay allocation-free) produces the same permutation a
/// stable sort would.
pub(crate) fn sort_matches(out: &mut [RideMatch]) {
    out.sort_unstable_by(|a, b| {
        a.walk_total_m()
            .total_cmp(&b.walk_total_m())
            .then(a.detour_est_m.total_cmp(&b.detour_est_m))
            .then(a.ride.cmp(&b.ride))
    });
}

/// The candidate-generation and feasibility core of search, over one
/// engine's index and ride table: Steps 1 and 2 (per-cluster ETA range
/// queries on both sides), the `R1 ∩ R2` intersection, and the final
/// walking / detour / ordering checks. Feasible matches are appended to
/// `out`; the return value is `|R1|` (the candidate-set size).
///
/// Factored out of [`XarEngine::search`] so the sharded engine
/// ([`crate::sharded::ShardedXarEngine`]) can run the identical logic
/// against each shard's private slice of the ride state: a ride's index
/// entries live wholly within its owning shard, so per-shard collection
/// followed by a global sort is equivalent to the single-engine search.
pub(crate) fn collect_matches(
    engine: &XarEngine,
    src_walkable: &[WalkEntry],
    dst_walkable: &[WalkEntry],
    req: &RideRequest,
    out: &mut Vec<RideMatch>,
    explain: &mut SearchExplain,
) -> usize {
    // Step 1: R1 from the source side, ETA within the departure
    // window. A ride may be reachable through several walkable
    // clusters; all hits are kept (the walkable lists are short, so
    // this stays linear in practice) — greedy per-side pruning can
    // discard the only *jointly* feasible combination.
    let mut r1: HashMap<RideId, Vec<SideHit>> = HashMap::new();
    {
        let mut espan = xar_obs::trace::span("enumerate_src");
        for w in src_walkable {
            for entry in engine.index().range_eta(w.cluster, req.window_start_s, req.window_end_s)
            {
                r1.entry(entry.ride).or_default().push(SideHit {
                    cluster: w.cluster,
                    landmark: w.landmark,
                    walk_m: f64::from(w.walk_m),
                    entry: *entry,
                });
            }
        }
        espan.attr("clusters", src_walkable.len());
        espan.attr("candidates", r1.len());
    }
    if r1.is_empty() {
        return 0;
    }

    // Step 2: R2 from the destination side. Drop-off can happen any
    // time after the window opens; the pick-up-before-drop-off
    // ordering is enforced per pair below.
    let mut r2: HashMap<RideId, Vec<SideHit>> = HashMap::new();
    {
        let mut espan = xar_obs::trace::span("enumerate_dst");
        for w in dst_walkable {
            for entry in engine.index().range_eta(w.cluster, req.window_start_s, f64::INFINITY) {
                // Cheap pre-filter: only rides already in R1 matter.
                if !r1.contains_key(&entry.ride) {
                    continue;
                }
                r2.entry(entry.ride).or_default().push(SideHit {
                    cluster: w.cluster,
                    landmark: w.landmark,
                    walk_m: f64::from(w.walk_m),
                    entry: *entry,
                });
            }
        }
        espan.attr("clusters", dst_walkable.len());
        espan.attr("candidates", r2.len());
    }

    // Intersection + final feasibility checks: per ride, the best
    // (least-walk) feasible (source, destination) combination wins.
    // Each R1 ride lands in exactly one explain class (matched, seat,
    // deepest pairing check, or unpaired) — the conservation the
    // reason taxonomy depends on.
    for (ride_id, srcs) in &r1 {
        let Some(dsts) = r2.get(ride_id) else {
            explain.unpaired += 1;
            continue;
        };
        let Some(ride) = engine.ride(*ride_id) else {
            explain.unpaired += 1;
            continue;
        };
        if ride.seats_available == 0 {
            explain.seat_rejected += 1;
            continue;
        }
        let budget = ride.detour_remaining_m();
        let mut best: Option<RideMatch> = None;
        // Deepest check any pairing reached: 1 ordering, 2 walk,
        // 3 detour (checks run in that order).
        let mut deepest = 1u8;
        for src in srcs {
            for dst in dsts {
                // Pick-up must strictly precede drop-off along the
                // ride: different clusters, increasing ETA and
                // segment, and non-decreasing position of the
                // serving pass-through point along the route
                // (estimated times alone can mis-order detours
                // hanging off nearby pass points, which would force
                // the ride to backtrack at booking time).
                if src.cluster == dst.cluster
                    || dst.entry.eta_s <= src.entry.eta_s
                    || dst.entry.seg < src.entry.seg
                    || dst.entry.pass_route_idx < src.entry.pass_route_idx
                {
                    continue;
                }
                // (a) combined walking within the rider's limit.
                let walk_total = src.walk_m + dst.walk_m;
                if walk_total > req.walk_limit_m {
                    deepest = deepest.max(2);
                    continue;
                }
                // (b) combined detour within the ride's budget.
                let detour_total = src.entry.detour_m + dst.entry.detour_m;
                if detour_total > budget {
                    deepest = deepest.max(3);
                    continue;
                }
                let better = best.as_ref().is_none_or(|b| {
                    walk_total < b.walk_total_m()
                        || (walk_total == b.walk_total_m() && detour_total < b.detour_est_m)
                });
                if better {
                    best = Some(RideMatch {
                        ride: *ride_id,
                        pickup_cluster: src.cluster,
                        pickup_landmark: src.landmark,
                        dropoff_cluster: dst.cluster,
                        dropoff_landmark: dst.landmark,
                        walk_pickup_m: src.walk_m,
                        walk_dropoff_m: dst.walk_m,
                        eta_pickup_s: src.entry.eta_s,
                        eta_dropoff_s: dst.entry.eta_s,
                        detour_est_m: detour_total,
                        pickup_seg: src.entry.seg,
                        dropoff_seg: dst.entry.seg,
                    });
                }
            }
        }
        if let Some(m) = best {
            out.push(m);
        } else {
            explain.reject_at_depth(deepest);
        }
    }
    explain.candidates += r1.len() as u32;
    r1.len()
}
