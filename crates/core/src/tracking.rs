//! Ride tracking (§VIII.A) — operation O3.
//!
//! Once a ride is on the move, clusters it has crossed — and clusters it
//! can no longer reach without violating its detour limit — are
//! *obsolete* and must leave the index, or "for a new request arising
//! from the part of the route ... that the ride has already passed,
//! this ride \[would\] be mistakenly shown as one of the potential
//! rides".
//!
//! The paper's three update steps, implemented verbatim:
//!
//! 1. mark each crossed pass-through cluster and all its connected
//!    reachable clusters obsolete;
//! 2. for each obsolete cluster, check whether it is still reachable
//!    through any remaining valid pass-through cluster; if not, remove
//!    the ride from that cluster's potential-rides list (if it is,
//!    refresh the entry from the best surviving pass-through);
//! 3. remove the crossed pass-through clusters from the ride's
//!    pass-through list.

use std::collections::HashMap;

use xar_discretize::ClusterId;

use crate::engine::XarEngine;
use crate::error::XarError;
use crate::index::PotentialRide;
use crate::ride::{RideId, RideStatus};

impl XarEngine {
    /// Advance `ride` to wall-clock time `now_s`, updating its progress
    /// along the route and expelling obsolete clusters from the index.
    ///
    /// A ride tracked past the end of its route is retired: it
    /// disappears from the index and from the engine's ride table, and
    /// the method reports `RideStatus::Completed`.
    pub fn track_ride(&mut self, id: RideId, now_s: f64) -> Result<RideStatus, XarError> {
        self.stats.tracks.inc();
        let _span = xar_obs::SpanTimer::new(std::sync::Arc::clone(&self.metrics.track_ns));
        let mut tspan = xar_obs::trace::span("track");
        tspan.attr("ride", id.0);
        let ride = self.rides_mut().get_mut(&id).ok_or(XarError::UnknownRide(id))?;
        if now_s <= ride.departure_s {
            return Ok(ride.status);
        }
        // Convert wall-clock progress back to free-flow route time via
        // the ride's congestion multiplier.
        let elapsed = (now_s - ride.departure_s) / ride.time_scale;
        let new_idx = ride.route.index_at_time(elapsed);
        if new_idx <= ride.progress_idx && new_idx + 1 < ride.route.len() {
            return Ok(ride.status); // no forward progress; nothing to do
        }

        if new_idx + 1 >= ride.route.len() {
            // Route finished: retire the ride completely.
            self.with_index_and_ride(id, |ride, index| {
                XarEngine::deindex_ride(ride, index);
                ride.status = RideStatus::Completed;
            });
            self.retire_ride(id);
            self.bump_state_version();
            return Ok(RideStatus::Completed);
        }

        let mut index_changed = false;
        self.with_index_and_ride(id, |ride, index| {
            ride.progress_idx = new_idx;
            // Step 1: crossed pass-through clusters (exit way-point
            // strictly behind the ride) and their reachable clusters.
            let crossed: Vec<usize> = ride
                .pass_clusters
                .iter()
                .enumerate()
                .filter_map(|(i, p)| (p.exit_idx < new_idx).then_some(i))
                .collect();
            if crossed.is_empty() {
                return;
            }
            index_changed = true;
            let mut obsolete: Vec<ClusterId> = Vec::new();
            for &i in &crossed {
                let p = &ride.pass_clusters[i];
                obsolete.push(p.cluster);
                obsolete.extend(p.reachable.iter().map(|&(c, _, _)| c));
            }
            obsolete.sort_unstable();
            obsolete.dedup();

            // Step 3 first (so Step 2 sees only the *valid* pass-through
            // clusters): drop the crossed entries from the ride.
            let mut keep_mask = vec![true; ride.pass_clusters.len()];
            for &i in &crossed {
                keep_mask[i] = false;
            }
            let mut iter = keep_mask.iter();
            ride.pass_clusters.retain(|_| *iter.next().expect("mask length"));

            // Step 2: for each obsolete cluster, find the best surviving
            // way to serve it; refresh or remove its index entry.
            let mut best: HashMap<ClusterId, PotentialRide> = HashMap::new();
            for p in &ride.pass_clusters {
                let self_entry = PotentialRide {
                    ride: ride.id,
                    eta_s: p.eta_s,
                    detour_m: 0.0,
                    seg: p.seg,
                    via_pass: p.cluster,
                    pass_route_idx: p.route_idx,
                };
                best.entry(p.cluster)
                    .and_modify(|cur| {
                        if self_entry.detour_m < cur.detour_m {
                            *cur = self_entry;
                        }
                    })
                    .or_insert(self_entry);
                for &(c, detour, eta) in &p.reachable {
                    let entry = PotentialRide {
                        ride: ride.id,
                        eta_s: eta,
                        detour_m: detour,
                        seg: p.seg,
                        via_pass: p.cluster,
                        pass_route_idx: p.route_idx,
                    };
                    best.entry(c)
                        .and_modify(|cur| {
                            if entry.detour_m < cur.detour_m
                                || (entry.detour_m == cur.detour_m && entry.eta_s < cur.eta_s)
                            {
                                *cur = entry;
                            }
                        })
                        .or_insert(entry);
                }
            }
            for c in obsolete {
                index.remove(c, ride.id);
                if let Some(entry) = best.get(&c) {
                    index.insert(c, *entry);
                }
            }
        });
        // progress_idx alone is invisible to search (snapshots carry
        // index entries, seats and detour budget); only an index rewrite
        // invalidates published snapshots.
        if index_changed {
            self.bump_state_version();
        }
        Ok(RideStatus::Active)
    }

    /// Advance every live ride to `now_s` (the periodic tracking sweep
    /// of a deployed system). Returns the number of rides retired.
    pub fn track_all(&mut self, now_s: f64) -> usize {
        let ids: Vec<RideId> = self.rides().map(|r| r.id).collect();
        let mut retired = 0;
        for id in ids {
            if matches!(self.track_ride(id, now_s), Ok(RideStatus::Completed)) {
                retired += 1;
            }
        }
        retired
    }
}
