//! Lock-free published snapshots of a shard's searchable state.
//!
//! The sharded engine's searches used to take each shard's `RwLock` in
//! read mode, which serializes readers against writers (and, under the
//! std `RwLock`, against each other's cache-line traffic): the engine
//! scaling bench showed search p99 exploding ~186× from 1 to 8 threads.
//! This module removes the read-side lock entirely:
//!
//! * Writers (create / book / track) — already serialized per shard by
//!   the shard write lock — build an immutable [`ShardSnapshot`] of the
//!   shard's cluster index and ride feasibility state and *publish* it
//!   with a single atomic pointer swap into a [`SnapshotCell`].
//! * Readers [`pin`] the global epoch [`ReadGuard`], load the snapshot
//!   pointer once per shard, and search a frozen, point-in-time view.
//!   No lock, no retry loop, no writer can block them.
//! * Retired snapshots are reclaimed with a hand-rolled epoch scheme
//!   (crates.io is unreachable, so no `crossbeam-epoch`/`arc-swap`):
//!   each reader announces the global epoch in a cache-padded slot
//!   while pinned; a writer tags the snapshot it unlinked with the
//!   post-publication epoch and frees it only once every announced
//!   epoch has passed that tag.
//!
//! # Why no reader can observe a freed snapshot
//!
//! All epoch/slot/pointer operations use `SeqCst`, so they embed in a
//! single total order `S`. Label the reader's pin sequence
//! `R1: load epoch → e`, `R2: store slot ← e`, `R3: load ptr`, and the
//! writer's publish sequence `W1: ptr.swap(new)`,
//! `W2: tag = epoch.fetch_add(1) + 1`, `W3: scan slots`. The writer
//! frees a retired snapshot (tag `T`) only when the scan observes every
//! slot as unclaimed/idle or announcing an epoch `≥ T`. Three cases for
//! a reader that is still running at scan time:
//!
//! 1. **Scan saw the slot idle/unclaimed** — the reader's `R2` came
//!    after `W3` in `S`, hence after `W1`; its `R3` follows and loads
//!    the *new* pointer. It never held the retired one.
//! 2. **Scan saw an announcement `≥ T`** — `R1` read an epoch `≥ T`,
//!    which `W2` (or a later advance) produced, so `R1` is after `W2`
//!    in `S`, hence `R3` is after `W1`: again the new pointer.
//! 3. **Scan saw an announcement `< T`** — the reader may hold the
//!    retired snapshot; the writer defers the free (the snapshot stays
//!    on the retired list until a later publish re-scans).
//!
//! The unpin store (slot ← idle) is also `SeqCst`, so every read the
//! guard performed is ordered before any writer scan that observes the
//! slot idle — the free cannot race ahead of in-flight loads. Finally,
//! [`SnapshotCell::load`] borrows the cell (`&'a self`), so dropping a
//! cell (which frees the current and all retired snapshots eagerly) is
//! only possible once no reference derived from it exists — enforced at
//! compile time, no epoch argument needed.
//!
//! Snapshots use a struct-of-arrays layout segmented per cluster: each
//! cluster's entries live in one immutable [`ClusterSeg`] holding
//! parallel `eta`/`ride`/`detour` columns, so the ETA range query of
//! search Step 1 is two `partition_point` calls on a contiguous `f64`
//! column instead of a `BTreeMap` walk, and the whole search runs
//! without allocating (candidate buffers live in a thread-local
//! [`SearchScratch`]). Segments are `Arc`-shared between successive
//! snapshots: [`ShardSnapshot::build_incremental`] rebuilds only the
//! segments of clusters whose entries changed since the previous
//! publish and clones the rest by pointer, which makes the write-path
//! publish cost proportional to the *touched* clusters, not the shard
//! size (DESIGN.md §5f).

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use xar_discretize::{ClusterId, WalkEntry};

use crate::engine::{RideDirt, XarEngine};
use crate::request::RideRequest;
use crate::ride::RideId;
use crate::search::RideMatch;

/// Slot value: unclaimed, available for any thread to take.
const SLOT_FREE: u64 = u64::MAX;
/// Slot value: owned by a thread that is not currently pinned.
const SLOT_IDLE: u64 = u64::MAX - 1;
/// Number of reader slots. Readers beyond this many *concurrent
/// threads* spin-wait for a slot; threads release their slot on exit.
const SLOT_COUNT: usize = 64;

/// One reader-announcement slot, padded to its own cache line pair so
/// concurrent readers on different cores never false-share.
#[repr(align(128))]
struct Slot(AtomicU64);

/// The process-wide epoch domain: the global epoch counter and the
/// reader announcement slots. Shared by every [`SnapshotCell`] — the
/// reclamation condition is conservative across cells, which costs at
/// most a briefly longer retired list, never a use-after-free.
struct EpochDomain {
    epoch: AtomicU64,
    slots: [Slot; SLOT_COUNT],
}

static DOMAIN: EpochDomain = EpochDomain {
    // Start at 1 so a tag of 0 can never be confused with "no tag".
    epoch: AtomicU64::new(1),
    slots: [const { Slot(AtomicU64::new(SLOT_FREE)) }; SLOT_COUNT],
};

impl EpochDomain {
    /// The smallest epoch announced by any pinned reader, or `u64::MAX`
    /// when no reader is pinned. A retired snapshot tagged `T` is free
    /// to drop once `min_active() >= T`.
    fn min_active(&self) -> u64 {
        let mut min = u64::MAX;
        for s in &self.slots {
            let v = s.0.load(SeqCst);
            if v < SLOT_IDLE && v < min {
                min = v;
            }
        }
        min
    }
}

/// The state of one reader announcement slot, for introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Unclaimed.
    Free,
    /// Claimed by a thread that is not currently pinned.
    Idle,
    /// Pinned at the contained epoch.
    Pinned(u64),
}

/// A point-in-time view of the process-wide epoch domain — the
/// `/debug/epoch` payload. Built by [`epoch_debug`].
#[derive(Debug, Clone)]
pub struct EpochDebug {
    /// The current global epoch.
    pub epoch: u64,
    /// Every claimed slot, as `(slot index, state)`; free slots are
    /// omitted (the domain has 64 in total).
    pub slots: Vec<(usize, SlotState)>,
    /// Number of slots currently pinned.
    pub pinned: usize,
    /// The smallest pinned epoch, if any reader is pinned.
    pub min_active: Option<u64>,
    /// Number of pinned readers announcing an epoch strictly older than
    /// the current one — each is delaying reclamation of anything
    /// retired since it pinned. Persistently non-zero with a growing
    /// retire backlog means a reader is stuck (a reclamation stall).
    pub stalled: usize,
}

impl EpochDebug {
    /// Render as a JSON document (the `/debug/epoch` body).
    pub fn to_json(&self) -> String {
        let mut w = xar_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("epoch");
        w.number_u64(self.epoch);
        w.key("pinned");
        w.number_u64(self.pinned as u64);
        w.key("min_active");
        match self.min_active {
            Some(v) => w.number_u64(v),
            None => w.null(),
        }
        w.key("stalled");
        w.number_u64(self.stalled as u64);
        w.key("slots");
        w.begin_array();
        for &(idx, state) in &self.slots {
            w.begin_object();
            w.key("slot");
            w.number_u64(idx as u64);
            w.key("state");
            match state {
                SlotState::Free => w.string("free"),
                SlotState::Idle => w.string("idle"),
                SlotState::Pinned(e) => {
                    w.string("pinned");
                    w.key("epoch");
                    w.number_u64(e);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Snapshot the epoch domain: current epoch, claimed slots and their
/// announced epochs, and how many pinned readers lag the epoch. Reads
/// are individually `SeqCst` but the scan as a whole is unsynchronized
/// — values may be mutually torn, which is fine for introspection.
pub fn epoch_debug() -> EpochDebug {
    let epoch = DOMAIN.epoch.load(SeqCst);
    let mut slots = Vec::new();
    let mut pinned = 0;
    let mut min_active = u64::MAX;
    let mut stalled = 0;
    for (idx, s) in DOMAIN.slots.iter().enumerate() {
        let v = s.0.load(SeqCst);
        let state = match v {
            SLOT_FREE => continue,
            SLOT_IDLE => SlotState::Idle,
            e => {
                pinned += 1;
                min_active = min_active.min(e);
                if e < epoch {
                    stalled += 1;
                }
                SlotState::Pinned(e)
            }
        };
        slots.push((idx, state));
    }
    EpochDebug {
        epoch,
        slots,
        pinned,
        min_active: (min_active != u64::MAX).then_some(min_active),
        stalled,
    }
}

/// A thread's claim on one announcement slot, released (set back to
/// [`SLOT_FREE`]) when the thread exits.
struct ThreadSlot {
    idx: usize,
    /// Pin nesting depth: only the outermost [`pin`] announces, only
    /// the outermost drop goes back to idle.
    depth: Cell<u32>,
}

impl ThreadSlot {
    fn claim() -> Self {
        loop {
            for (idx, s) in DOMAIN.slots.iter().enumerate() {
                if s.0.compare_exchange(SLOT_FREE, SLOT_IDLE, SeqCst, SeqCst).is_ok() {
                    return Self { idx, depth: Cell::new(0) };
                }
            }
            // More than SLOT_COUNT live reader threads: wait for one to
            // exit. The engine's thread pools are far below this bound.
            std::thread::yield_now();
        }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        DOMAIN.slots[self.idx].0.store(SLOT_FREE, SeqCst);
    }
}

thread_local! {
    static THREAD_SLOT: ThreadSlot = ThreadSlot::claim();
}

/// Proof that the current thread has announced itself to the epoch
/// domain: [`SnapshotCell::load`] requires one, and the reference it
/// returns cannot outlive it. Not `Send` — the announcement is bound
/// to this thread's slot.
///
/// ```
/// use xar_core::{snapshot, ShardSnapshot, SnapshotCell};
/// let cell = SnapshotCell::new(ShardSnapshot::empty(4));
/// let guard = snapshot::pin();
/// let snap = cell.load(&guard);
/// assert_eq!(snap.ride_count(), 0);
/// ```
pub struct ReadGuard {
    slot: usize,
    _not_send: PhantomData<*const ()>,
}

/// Announce this thread as an active reader and return the guard that
/// keeps the announcement alive. Cheap (two `SeqCst` atomics on the
/// outermost pin, a counter bump when nested) and allocation-free after
/// the thread's first call.
pub fn pin() -> ReadGuard {
    let slot = THREAD_SLOT.with(|s| {
        let depth = s.depth.get();
        if depth == 0 {
            let e = DOMAIN.epoch.load(SeqCst);
            DOMAIN.slots[s.idx].0.store(e, SeqCst);
        }
        s.depth.set(depth + 1);
        s.idx
    });
    ReadGuard { slot, _not_send: PhantomData }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        // `try_with`: thread-local teardown order is unspecified; if the
        // slot is already gone the thread is exiting and the slot's own
        // Drop has (or will have) freed it.
        let slot = self.slot;
        let _ = THREAD_SLOT.try_with(|s| {
            debug_assert_eq!(s.idx, slot);
            let depth = s.depth.get() - 1;
            s.depth.set(depth);
            if depth == 0 {
                DOMAIN.slots[s.idx].0.store(SLOT_IDLE, SeqCst);
            }
        });
    }
}

/// What one [`SnapshotCell::publish`] did, for the observability layer.
#[derive(Debug, Clone, Copy)]
pub struct PublishOutcome {
    /// Retired snapshots actually freed by this publish (the previous
    /// current snapshot is always *retired*; it is *freed* only once no
    /// reader can hold it).
    pub freed: usize,
    /// Retired snapshots still waiting for readers to move past them.
    pub backlog: usize,
}

/// An atomically publishable snapshot pointer with epoch-based
/// reclamation of retired snapshots.
///
/// Writers call [`SnapshotCell::publish`] (serialized externally — in
/// the engine, by the shard write lock — though concurrent publishes
/// are memory-safe too); readers call [`SnapshotCell::load`] under a
/// [`pin`] guard and never block.
pub struct SnapshotCell {
    ptr: AtomicPtr<ShardSnapshot>,
    /// Unlinked-but-possibly-still-read snapshots, each tagged with the
    /// epoch after whose passing it is unreachable.
    retired: Mutex<Vec<(u64, *mut ShardSnapshot)>>,
}

// Raw pointers make these !Send/!Sync by default; the cell owns the
// snapshots exclusively (readers only borrow under the epoch protocol).
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl SnapshotCell {
    /// Create a cell currently publishing `snapshot`.
    pub fn new(snapshot: ShardSnapshot) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(snapshot))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The currently published snapshot. Requires a [`pin`] guard; the
    /// returned reference lives no longer than the guard *or* the cell,
    /// which is exactly what makes reclamation sound (see the module
    /// docs).
    #[inline]
    pub fn load<'a>(&'a self, _guard: &'a ReadGuard) -> &'a ShardSnapshot {
        // Safety: the pointer is always a live Box::into_raw product;
        // publish() never frees a snapshot while any pinned reader may
        // still hold it (module-level argument), and Drop requires
        // exclusive access to the cell.
        unsafe { &*self.ptr.load(SeqCst) }
    }

    /// Retired snapshots currently awaiting reclamation (the
    /// `/debug/shards` backlog column). Takes the retired-list lock.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Atomically replace the published snapshot, retire the previous
    /// one, and opportunistically free retired snapshots no reader can
    /// still observe.
    pub fn publish(&self, snapshot: ShardSnapshot) -> PublishOutcome {
        let mut tspan = xar_obs::trace::span("epoch.retire_scan");
        let new = Box::into_raw(Box::new(snapshot));
        let old = self.ptr.swap(new, SeqCst);
        // Tag with the *post*-advance epoch: any reader announcing an
        // epoch >= tag pinned after the swap and thus sees `new`.
        let tag = DOMAIN.epoch.fetch_add(1, SeqCst) + 1;
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        retired.push((tag, old));
        let before = retired.len();
        let min_active = DOMAIN.min_active();
        retired.retain(|&(t, p)| {
            if t <= min_active {
                // Safety: every pinned reader announced an epoch >= t,
                // so (case 2 of the module argument) it loaded the
                // successor pointer; unpinned readers' accesses are
                // ordered before our SeqCst scan.
                drop(unsafe { Box::from_raw(p) });
                false
            } else {
                true
            }
        });
        let outcome = PublishOutcome { freed: before - retired.len(), backlog: retired.len() };
        tspan.attr("freed", outcome.freed);
        tspan.attr("backlog", outcome.backlog);
        outcome
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // `&mut self`: no outstanding `load` borrows can exist, so the
        // current and all retired snapshots are unreachable.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
        let retired = self.retired.get_mut().unwrap_or_else(|e| e.into_inner());
        for &(_, p) in retired.iter() {
            drop(unsafe { Box::from_raw(p) });
        }
        retired.clear();
    }
}

/// One side-candidate in scratch space: a walkable cluster paired with
/// one potential-ride entry found there (the snapshot-native mirror of
/// the search module's `SideHit`).
#[derive(Debug, Clone, Copy)]
struct SnapHit {
    cluster: ClusterId,
    landmark: xar_discretize::LandmarkId,
    walk_m: f64,
    eta_s: f64,
    detour_m: f64,
    seg: u32,
    pass_route_idx: u32,
}

/// Reusable per-thread candidate buffers for snapshot search: grown on
/// the first few searches, then allocation-free forever after. Obtain
/// one with [`with_scratch`] (thread-local) or own one per worker.
#[derive(Default)]
pub struct SearchScratch {
    /// Source-side hits, tagged with discovery order: `(ride, seq, hit)`.
    r1: Vec<(RideId, u32, SnapHit)>,
    /// Destination-side hits, same shape.
    r2: Vec<(RideId, u32, SnapHit)>,
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

/// Run `f` with this thread's [`SearchScratch`].
///
/// # Panics
///
/// Panics if called re-entrantly from within `f` (the engine never
/// does: one search runs at a time per thread).
pub fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// One cluster's entry columns (SoA): the ETA column is scanned by
/// every range query, so it stays dense and contiguous; the rest are
/// only touched for rows inside the range.
///
/// Entries are sorted by `(eta, ride)` — the same order the live
/// `BTreeMap` index iterates in — so snapshot search visits candidates
/// in exactly the serial engine's order and returns bit-identical
/// matches. A segment is immutable once built; successive snapshots
/// share unchanged segments via `Arc`.
struct ClusterSeg {
    eta_s: Vec<f64>,
    ride: Vec<RideId>,
    detour_m: Vec<f64>,
    seg: Vec<u32>,
    pass_route_idx: Vec<u32>,
}

impl ClusterSeg {
    /// Rows whose ETA lies in `[from_s, to_s]` (inclusive both ends,
    /// like the live index's `range_eta`).
    #[inline]
    fn eta_range(&self, from_s: f64, to_s: f64) -> std::ops::Range<usize> {
        let a = self.eta_s.partition_point(|&t| t < from_s);
        let b = self.eta_s.partition_point(|&t| t <= to_s);
        a..b
    }

    fn heap_bytes(&self) -> usize {
        self.eta_s.capacity() * std::mem::size_of::<f64>()
            + self.ride.capacity() * std::mem::size_of::<RideId>()
            + self.detour_m.capacity() * std::mem::size_of::<f64>()
            + self.seg.capacity() * std::mem::size_of::<u32>()
            + self.pass_route_idx.capacity() * std::mem::size_of::<u32>()
    }
}

/// The per-ride feasibility columns, sorted by ride id for binary
/// search. `Arc`-shared with the previous snapshot when a publish
/// changed no ride's seats / budget / liveness (tracking-only
/// publishes).
struct RideTable {
    ids: Vec<RideId>,
    seats: Vec<u8>,
    budget_m: Vec<f64>,
}

impl RideTable {
    fn build(engine: &XarEngine) -> Self {
        let mut rides: Vec<_> =
            engine.rides().map(|r| (r.id, r.seats_available, r.detour_remaining_m())).collect();
        rides.sort_unstable_by_key(|&(id, _, _)| id);
        let mut t = Self {
            ids: Vec::with_capacity(rides.len()),
            seats: Vec::with_capacity(rides.len()),
            budget_m: Vec::with_capacity(rides.len()),
        };
        for (id, seats, budget) in rides {
            t.ids.push(id);
            t.seats.push(seats);
            t.budget_m.push(budget);
        }
        t
    }

    /// Copy `prev` and overwrite the seats / budget rows of `updated`
    /// rides with the engine's current values. Valid only when the ride
    /// *set* is unchanged since `prev` was built — [`RideDirt`] tracking
    /// guarantees any create / retire escalates to `Structural` before
    /// this path is taken, so every updated id resolves in both the
    /// previous table and the live engine. Three column memcpys plus a
    /// binary search per updated ride: allocation count and lookup work
    /// are independent of the shard's ride count.
    fn patch(prev: &RideTable, engine: &XarEngine, updated: &[RideId]) -> Self {
        let mut t = Self {
            ids: prev.ids.clone(),
            seats: prev.seats.clone(),
            budget_m: prev.budget_m.clone(),
        };
        for &id in updated {
            let i = t
                .ids
                .binary_search(&id)
                .expect("updated ride missing from previous snapshot despite non-structural dirt");
            let r = engine
                .ride(id)
                .expect("updated ride missing from engine despite non-structural dirt");
            t.seats[i] = r.seats_available;
            t.budget_m[i] = r.detour_remaining_m();
        }
        t
    }

    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<RideId>()
            + self.seats.capacity()
            + self.budget_m.capacity() * std::mem::size_of::<f64>()
    }
}

/// An immutable, point-in-time copy of everything search reads from one
/// shard: the per-cluster potential-rides lists as `Arc`-shared
/// [`ClusterSeg`] columns, plus the per-ride feasibility table (free
/// seats, remaining detour budget).
///
/// Built either from scratch ([`ShardSnapshot::build`]) or by patching
/// the previous snapshot ([`ShardSnapshot::build_incremental`]), which
/// rebuilds only the segments of dirty clusters and structurally
/// shares everything else. The two constructions are content-equal by
/// construction — a property the `incremental_publish` test pins.
pub struct ShardSnapshot {
    /// Per-cluster entry segments, stored in fixed-size `Arc`'d
    /// **blocks** of [`SEG_BLOCK`] slots: cloning the snapshot costs
    /// one `Arc` bump per *block* (⌈clusters / 64⌉), not one per
    /// cluster, and an incremental publish copies only the blocks a
    /// dirty cluster lands in. `None` means the cluster currently
    /// holds no entries (most clusters, most of the time — an empty
    /// segment costs neither an allocation nor an `Arc` bump).
    clusters: Vec<Arc<SegBlock>>,
    /// Clusters covered (the last block may be partially filled).
    cluster_count: usize,
    /// Ride feasibility table, sorted by ride id for binary search.
    rides: Arc<RideTable>,
    /// Total `⟨ride, eta⟩` entries across all segments.
    entries: usize,
}

/// Block size of the segment directory: large enough that the
/// per-block `Arc` overhead vanishes, small enough that copying the
/// block a dirty cluster lands in stays far below copying the whole
/// directory. Publishing with k dirty clusters touches at most k
/// blocks (fewer when the dirty set is spatially coherent, which
/// detour-bounded bookings are).
const SEG_BLOCK: usize = 64;

/// One directory block: up to [`SEG_BLOCK`] per-cluster segment slots.
type SegBlock = Vec<Option<Arc<ClusterSeg>>>;

impl ShardSnapshot {
    /// A snapshot with `cluster_count` clusters and no rides (the state
    /// of a freshly created shard).
    pub fn empty(cluster_count: usize) -> Self {
        Self {
            clusters: (0..cluster_count.div_ceil(SEG_BLOCK))
                .map(|b| Arc::new(vec![None; SEG_BLOCK.min(cluster_count - b * SEG_BLOCK)]))
                .collect(),
            cluster_count,
            rides: Arc::new(RideTable { ids: Vec::new(), seats: Vec::new(), budget_m: Vec::new() }),
            entries: 0,
        }
    }

    /// The segment of cluster `c`, if it holds any entries.
    #[inline]
    fn seg(&self, c: usize) -> Option<&ClusterSeg> {
        self.clusters[c / SEG_BLOCK][c % SEG_BLOCK].as_deref()
    }

    /// Build one cluster's segment from the live index; `None` when the
    /// cluster holds no entries.
    fn build_segment(
        index: &crate::index::ClusterIndex,
        c: ClusterId,
    ) -> Option<Arc<ClusterSeg>> {
        let n = index.cluster_len(c);
        if n == 0 {
            return None;
        }
        let mut seg = ClusterSeg {
            eta_s: Vec::with_capacity(n),
            ride: Vec::with_capacity(n),
            detour_m: Vec::with_capacity(n),
            seg: Vec::with_capacity(n),
            pass_route_idx: Vec::with_capacity(n),
        };
        for e in index.entries_of(c) {
            seg.eta_s.push(e.eta_s);
            seg.ride.push(e.ride);
            seg.detour_m.push(e.detour_m);
            seg.seg.push(e.seg as u32);
            seg.pass_route_idx.push(e.pass_route_idx as u32);
        }
        Some(Arc::new(seg))
    }

    /// Freeze `engine`'s searchable state from scratch. Called by shard
    /// writers while holding the shard write lock, so the copy is
    /// consistent.
    pub fn build(engine: &XarEngine) -> Self {
        let index = engine.index();
        let clusters = index.cluster_count();
        let mut snap = Self {
            clusters: Vec::with_capacity(clusters.div_ceil(SEG_BLOCK)),
            cluster_count: clusters,
            rides: Arc::new(RideTable::build(engine)),
            entries: 0,
        };
        let mut block: SegBlock = Vec::with_capacity(SEG_BLOCK);
        for c in 0..clusters as u32 {
            let seg = Self::build_segment(index, ClusterId(c));
            snap.entries += seg.as_ref().map_or(0, |s| s.eta_s.len());
            block.push(seg);
            if block.len() == SEG_BLOCK {
                snap.clusters
                    .push(Arc::new(std::mem::replace(&mut block, Vec::with_capacity(SEG_BLOCK))));
            }
        }
        if !block.is_empty() {
            snap.clusters.push(Arc::new(block));
        }
        snap
    }

    /// Patch `prev` into `engine`'s current state: rebuild only the
    /// segments of `dirty` clusters, clone every clean segment by
    /// pointer, and produce the ride table the cheapest valid way
    /// `ride_dirt` allows — `Arc`-share it (tracking-only publish),
    /// patch the updated rows in place (bookings), or rebuild it from
    /// scratch (create / retire changed the ride set). The caller must
    /// hold the shard write lock and pass the exact dirt accumulated
    /// since `prev` was built; allocation count is then O(|dirty|),
    /// not O(clusters), and independent of the shard's ride count.
    pub fn build_incremental(
        engine: &XarEngine,
        prev: &ShardSnapshot,
        dirty: &[u32],
        ride_dirt: &RideDirt,
    ) -> Self {
        let index = engine.index();
        debug_assert_eq!(prev.cluster_count, index.cluster_count());
        let mut snap = Self {
            // One Arc bump per *block*, not per cluster.
            clusters: prev.clusters.clone(),
            cluster_count: prev.cluster_count,
            rides: match ride_dirt {
                RideDirt::Clean => Arc::clone(&prev.rides),
                RideDirt::Updated(ids) => Arc::new(RideTable::patch(&prev.rides, engine, ids)),
                RideDirt::Structural => Arc::new(RideTable::build(engine)),
            },
            entries: prev.entries,
        };
        for &c in dirty {
            let (b, i) = (c as usize / SEG_BLOCK, c as usize % SEG_BLOCK);
            // The first dirty cluster in a still-shared block copies
            // that block's slots; later dirty clusters in the same
            // block mutate the copy in place.
            let block = Arc::make_mut(&mut snap.clusters[b]);
            let old = block[i].take();
            snap.entries -= old.map_or(0, |s| s.eta_s.len());
            let seg = Self::build_segment(index, ClusterId(c));
            snap.entries += seg.as_ref().map_or(0, |s| s.eta_s.len());
            block[i] = seg;
        }
        snap
    }

    /// Whether `self` and `other` carry identical logical content —
    /// every cluster's entry columns and the full ride table. The
    /// oracle behind the `incremental publish ≡ full rebuild` property
    /// test (`f64` columns compare bitwise; none hold NaN).
    pub fn content_eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.cluster_count == other.cluster_count
            && self.rides.ids == other.rides.ids
            && self.rides.seats == other.rides.seats
            && self.rides.budget_m == other.rides.budget_m
            && (0..self.cluster_count).all(|c| match (self.seg(c), other.seg(c)) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.eta_s == b.eta_s
                        && a.ride == b.ride
                        && a.detour_m == b.detour_m
                        && a.seg == b.seg
                        && a.pass_route_idx == b.pass_route_idx
                }
                _ => false,
            })
    }

    /// Number of `⟨ride, eta⟩` index entries in the snapshot.
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Number of clusters the snapshot covers.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Number of rides in the feasibility table.
    #[inline]
    pub fn ride_count(&self) -> usize {
        self.rides.ids.len()
    }

    /// `(free seats, remaining detour budget)` of `ride`, if it is live
    /// in this snapshot.
    #[inline]
    fn ride_state(&self, ride: RideId) -> Option<(u8, f64)> {
        self.rides
            .ids
            .binary_search(&ride)
            .ok()
            .map(|i| (self.rides.seats[i], self.rides.budget_m[i]))
    }

    /// Approximate heap bytes held by the snapshot (index-size
    /// accounting). Segments shared with other snapshots are counted in
    /// full here — the number answers "what does this view keep alive",
    /// not "what is uniquely owned".
    pub fn heap_bytes(&self) -> usize {
        self.clusters.capacity() * std::mem::size_of::<Arc<SegBlock>>()
            + self
                .clusters
                .iter()
                .map(|block| {
                    block.capacity() * std::mem::size_of::<Option<Arc<ClusterSeg>>>()
                        + block
                            .iter()
                            .flatten()
                            .map(|s| s.heap_bytes() + std::mem::size_of::<ClusterSeg>())
                            .sum::<usize>()
                })
                .sum::<usize>()
            + self.rides.heap_bytes()
            + std::mem::size_of::<RideTable>()
    }

    /// The candidate-generation and feasibility core of search against
    /// this snapshot: the exact semantics of the live engine's
    /// `collect_matches` (Steps 1–2 ETA range queries, `R1 ∩ R2`,
    /// walking / detour / ordering / seat checks, least-walk best per
    /// ride), appended to `out`. Returns `|R1|` (candidate-set size).
    ///
    /// Allocation-free in steady state: candidates go through
    /// `scratch`, grouping uses `sort_unstable` + merge-join instead of
    /// hash maps, and `out` is the caller's reusable buffer.
    pub fn collect_matches(
        &self,
        src_walkable: &[WalkEntry],
        dst_walkable: &[WalkEntry],
        req: &RideRequest,
        scratch: &mut SearchScratch,
        out: &mut Vec<RideMatch>,
        explain: &mut crate::search::SearchExplain,
    ) -> usize {
        scratch.r1.clear();
        scratch.r2.clear();

        // Step 1: R1 from the source side, ETA within the departure
        // window. `seq` tags discovery order (walkable order × ETA
        // order) so the per-ride pairing below iterates hits exactly
        // as the serial engine's insertion-ordered Vecs do.
        let mut seq = 0u32;
        for w in src_walkable {
            let Some(cs) = self.seg(w.cluster.index()) else { continue };
            for i in cs.eta_range(req.window_start_s, req.window_end_s) {
                scratch.r1.push((
                    cs.ride[i],
                    seq,
                    SnapHit {
                        cluster: w.cluster,
                        landmark: w.landmark,
                        walk_m: f64::from(w.walk_m),
                        eta_s: cs.eta_s[i],
                        detour_m: cs.detour_m[i],
                        seg: cs.seg[i],
                        pass_route_idx: cs.pass_route_idx[i],
                    },
                ));
                seq += 1;
            }
        }
        if scratch.r1.is_empty() {
            return 0;
        }
        scratch.r1.sort_unstable_by_key(|&(ride, seq, _)| (ride, seq));

        // Step 2: R2 from the destination side, pre-filtered to rides
        // present in R1 (binary search over the sorted R1).
        let mut seq = 0u32;
        for w in dst_walkable {
            let Some(cs) = self.seg(w.cluster.index()) else { continue };
            for i in cs.eta_range(req.window_start_s, f64::INFINITY) {
                let ride = cs.ride[i];
                let p = scratch.r1.partition_point(|e| e.0 < ride);
                if p == scratch.r1.len() || scratch.r1[p].0 != ride {
                    continue;
                }
                scratch.r2.push((
                    ride,
                    seq,
                    SnapHit {
                        cluster: w.cluster,
                        landmark: w.landmark,
                        walk_m: f64::from(w.walk_m),
                        eta_s: cs.eta_s[i],
                        detour_m: cs.detour_m[i],
                        seg: cs.seg[i],
                        pass_route_idx: cs.pass_route_idx[i],
                    },
                ));
                seq += 1;
            }
        }
        scratch.r2.sort_unstable_by_key(|&(ride, seq, _)| (ride, seq));

        // |R1| = distinct rides on the source side.
        let mut candidates = 0usize;
        let mut i = 0;
        while i < scratch.r1.len() {
            candidates += 1;
            let ride = scratch.r1[i].0;
            while i < scratch.r1.len() && scratch.r1[i].0 == ride {
                i += 1;
            }
        }

        // Intersection + final feasibility: merge-join the two sorted
        // runs; per ride, the best (least-walk, then least-detour,
        // first-found) feasible (source, destination) pair wins. Each
        // R1 ride lands in exactly one explain class (matched, seat,
        // deepest pairing check, or unpaired) — mirroring the live
        // engine's attribution exactly.
        let (mut i, mut j) = (0usize, 0usize);
        while i < scratch.r1.len() {
            let ride = scratch.r1[i].0;
            let mut i_end = i;
            while i_end < scratch.r1.len() && scratch.r1[i_end].0 == ride {
                i_end += 1;
            }
            while j < scratch.r2.len() && scratch.r2[j].0 < ride {
                j += 1;
            }
            let mut j_end = j;
            while j_end < scratch.r2.len() && scratch.r2[j_end].0 == ride {
                j_end += 1;
            }
            if j_end > j {
                if let Some((seats, budget)) = self.ride_state(ride) {
                    if seats > 0 {
                        let mut best: Option<RideMatch> = None;
                        let mut deepest = 1u8;
                        for &(_, _, src) in &scratch.r1[i..i_end] {
                            for &(_, _, dst) in &scratch.r2[j..j_end] {
                                // Pick-up strictly precedes drop-off
                                // along the ride (see the search module
                                // for why each clause exists).
                                if src.cluster == dst.cluster
                                    || dst.eta_s <= src.eta_s
                                    || dst.seg < src.seg
                                    || dst.pass_route_idx < src.pass_route_idx
                                {
                                    continue;
                                }
                                let walk_total = src.walk_m + dst.walk_m;
                                if walk_total > req.walk_limit_m {
                                    deepest = deepest.max(2);
                                    continue;
                                }
                                let detour_total = src.detour_m + dst.detour_m;
                                if detour_total > budget {
                                    deepest = deepest.max(3);
                                    continue;
                                }
                                let better = best.as_ref().is_none_or(|b| {
                                    walk_total < b.walk_total_m()
                                        || (walk_total == b.walk_total_m()
                                            && detour_total < b.detour_est_m)
                                });
                                if better {
                                    best = Some(RideMatch {
                                        ride,
                                        pickup_cluster: src.cluster,
                                        pickup_landmark: src.landmark,
                                        dropoff_cluster: dst.cluster,
                                        dropoff_landmark: dst.landmark,
                                        walk_pickup_m: src.walk_m,
                                        walk_dropoff_m: dst.walk_m,
                                        eta_pickup_s: src.eta_s,
                                        eta_dropoff_s: dst.eta_s,
                                        detour_est_m: detour_total,
                                        pickup_seg: src.seg as usize,
                                        dropoff_seg: dst.seg as usize,
                                    });
                                }
                            }
                        }
                        if let Some(m) = best {
                            out.push(m);
                        } else {
                            explain.reject_at_depth(deepest);
                        }
                    } else {
                        explain.seat_rejected += 1;
                    }
                } else {
                    explain.unpaired += 1;
                }
            } else {
                explain.unpaired += 1;
            }
            i = i_end;
            j = j_end;
        }
        explain.candidates += candidates as u32;
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn pin_is_reentrant_and_slot_returns_to_idle() {
        let g1 = pin();
        let slot = g1.slot;
        let announced = DOMAIN.slots[slot].0.load(SeqCst);
        assert!(announced < SLOT_IDLE, "pinned slot must announce an epoch");
        {
            let g2 = pin();
            assert_eq!(g2.slot, slot, "nested pin reuses the slot");
            // Nested pin must not re-announce a newer epoch.
            assert_eq!(DOMAIN.slots[slot].0.load(SeqCst), announced);
        }
        assert_eq!(DOMAIN.slots[slot].0.load(SeqCst), announced, "inner unpin keeps announcement");
        drop(g1);
        assert_eq!(DOMAIN.slots[slot].0.load(SeqCst), SLOT_IDLE);
    }

    #[test]
    fn publish_defers_free_while_pinned_elsewhere() {
        let cell = Arc::new(SnapshotCell::new(ShardSnapshot::empty(1)));
        let hold = Arc::new(AtomicBool::new(true));
        let release = Arc::clone(&hold);
        let reader_cell = Arc::clone(&cell);
        let reader = std::thread::spawn(move || {
            let guard = pin();
            let snap = reader_cell.load(&guard);
            let before = snap.entry_count();
            while release.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // The pinned view must still be intact after publishes.
            assert_eq!(snap.entry_count(), before);
        });
        // Give the reader time to pin.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let out1 = cell.publish(ShardSnapshot::empty(2));
        assert!(out1.backlog >= 1, "old snapshot must stay retired while the reader pins");
        hold.store(false, Ordering::SeqCst);
        reader.join().unwrap();
        // With the reader gone, the next publish reclaims everything.
        let out2 = cell.publish(ShardSnapshot::empty(3));
        assert_eq!(out2.backlog, 0, "unpinned readers must not block reclamation");
        assert!(out2.freed >= 1);
    }

    #[test]
    fn load_tracks_latest_publish() {
        let cell = SnapshotCell::new(ShardSnapshot::empty(1));
        let guard = pin();
        assert_eq!(cell.load(&guard).cluster_count(), 1);
        cell.publish(ShardSnapshot::empty(7));
        assert_eq!(cell.load(&guard).cluster_count(), 7, "load always sees the newest snapshot");
    }

    #[test]
    fn eta_range_is_inclusive_both_ends() {
        let cs = ClusterSeg {
            eta_s: vec![50.0, 100.0, 100.0, 150.0, 200.0],
            ride: (1..=5).map(RideId).collect(),
            detour_m: vec![0.0; 5],
            seg: vec![0; 5],
            pass_route_idx: vec![0; 5],
        };
        assert_eq!(cs.eta_range(100.0, 150.0), 1..4);
        assert_eq!(cs.eta_range(0.0, 49.0), 0..0);
        assert_eq!(cs.eta_range(201.0, 300.0), 5..5);
        assert_eq!(cs.eta_range(f64::NEG_INFINITY, f64::INFINITY), 0..5);
    }

    #[test]
    fn empty_snapshots_are_content_equal_and_sized() {
        let a = ShardSnapshot::empty(3);
        let b = ShardSnapshot::empty(3);
        assert!(a.content_eq(&b));
        assert!(!a.content_eq(&ShardSnapshot::empty(4)), "cluster counts must match");
        assert_eq!(a.entry_count(), 0);
        assert_eq!(a.ride_count(), 0);
    }
}
