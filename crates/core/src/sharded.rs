//! Cluster-sharded concurrent engine.
//!
//! XAR's workload is ~480 searches per booking (§X.B.2), yet the PR-1
//! [`crate::concurrent::SharedXarEngine`] funnelled every operation
//! through one global `RwLock<XarEngine>`: a single writer stalled all
//! readers, and writes serialized with each other even when they
//! touched rides on opposite sides of the city. [`ShardedXarEngine`]
//! removes the global lock:
//!
//! * The ride state is split into `N` **shards**. A ride lives wholly
//!   in one shard — its record *and* every one of its potential-rides
//!   index entries — chosen by hashing the cluster of its pick-up
//!   point. Each shard is a complete [`XarEngine`] behind its own
//!   `RwLock`, so `create_ride` / `book` / `track_ride` lock exactly
//!   one shard and concurrent writes to different shards never contend.
//! * Immutable state (the road graph, the region discretization, the
//!   landmark and cluster-distance tables) is shared behind a plain
//!   `Arc` with no lock at all — searches resolve their walkable
//!   clusters before touching any shard.
//! * **Search takes no locks at all.** Each write path, while still
//!   holding its shard's write lock, freezes the shard's searchable
//!   state into an immutable [`ShardSnapshot`] and publishes it with an
//!   atomic pointer swap into the shard's [`SnapshotCell`]. Search
//!   derives its candidate cluster fan-out up front (the tier-1/2/3
//!   region tables need no lock), consults the lock-free
//!   [`ShardOccupancy`] bitmask to find which shards could hold
//!   candidates, pins the reclamation epoch once, and loads each such
//!   shard's current snapshot pointer — readers never block writers and
//!   writers never block readers (DESIGN.md §5f has the full protocol
//!   and the memory-reclamation argument). Because a ride's entries
//!   never span shards, per-shard candidate collection followed by one
//!   global sort is *equivalent* to the single-engine search: every
//!   candidate cluster is still examined, so the paper's approximation
//!   guarantee is untouched (DESIGN.md §5e).
//! * **`track_all`** becomes a per-shard sweep: each shard is locked
//!   (write) on its own, and empty shards are skipped after a cheap
//!   read-locked `ride_count` probe — the sweep never stops the world.
//!
//! Every lock acquisition records its **hold time** both into the
//! aggregate `lock.read_hold_ns` / `lock.write_hold_ns` histograms
//! (PR-1 names, preserved) and into a per-shard labeled series
//! `lock.read_hold_ns{shard="sK"}` / `lock.write_hold_ns{shard="sK"}`
//! (PR-3 label machinery), so shard imbalance is visible in `/metrics`
//! and `xar top` without a profiler. Since search stopped taking read
//! locks, `lock.read_hold_ns` records only maintenance reads (the
//! `track_all` emptiness probes, audits, memory accounting).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use xar_discretize::{ClusterId, RegionIndex};
use xar_obs::{Histogram, Registry};

use crate::booking::BookingOutcome;
use crate::engine::{EngineConfig, EngineStats, XarEngine};
use crate::error::{Reason, XarError};
use crate::metrics::EngineMetrics;
use crate::request::RideRequest;
use crate::ride::{Ride, RideId, RideOffer, RideStatus};
use crate::search::{sort_matches, RideMatch, SearchExplain};
use crate::snapshot::{self, ShardSnapshot, SnapshotCell};

/// Hard cap on the shard count: the occupancy bitmask is one `u64` per
/// cluster, and the per-shard label cardinality must stay far below the
/// registry's 64-series-per-family overflow cap.
pub const MAX_SHARDS: usize = 32;

/// Default shard count for deployments that do not tune it.
pub const DEFAULT_SHARDS: usize = 8;

/// Lock-free map from cluster to the set of shards holding at least one
/// potential-rides entry for it: one atomic `u64` bitmask per cluster.
///
/// Bit `s` of `masks[c]` is set iff shard `s`'s [`ClusterIndex`](crate::index::ClusterIndex)
/// (see `crate::index`) currently has a non-empty list for cluster `c`.
/// Each bit is only ever flipped by its own shard's writer *while
/// holding that shard's write lock*, so transitions are exact; readers
/// use relaxed loads — a search that races a create may miss the brand
/// new ride or probe a just-emptied shard, which is indistinguishable
/// from the operations serializing in the other order.
#[derive(Debug)]
pub struct ShardOccupancy {
    masks: Vec<AtomicU64>,
}

impl ShardOccupancy {
    /// An empty occupancy map over `cluster_count` clusters.
    pub fn new(cluster_count: usize) -> Self {
        Self { masks: (0..cluster_count).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Mark shard `shard` as holding entries for `cluster`.
    pub(crate) fn set(&self, cluster: usize, shard: u32) {
        self.masks[cluster].fetch_or(1 << shard, Ordering::Relaxed);
    }

    /// Mark shard `shard` as holding no entries for `cluster`.
    pub(crate) fn clear(&self, cluster: usize, shard: u32) {
        self.masks[cluster].fetch_and(!(1 << shard), Ordering::Relaxed);
    }

    /// The shard bitmask of one cluster.
    pub fn cluster_mask(&self, cluster: usize) -> u64 {
        self.masks[cluster].load(Ordering::Relaxed)
    }

    /// Union of the shard bitmasks of `clusters` — the shards a search
    /// with this cluster fan-out could find candidates in.
    pub fn mask_for(&self, clusters: impl IntoIterator<Item = usize>) -> u64 {
        clusters.into_iter().fold(0u64, |m, c| m | self.cluster_mask(c))
    }
}

/// One shard: a complete engine over its slice of the rides, the
/// lock-free search snapshot of that slice, plus the pre-resolved
/// labeled lock-hold histograms.
struct Shard {
    lock: RwLock<XarEngine>,
    /// The published, immutable view search reads (no lock). Republished
    /// by every write path while it still holds `lock` in write mode.
    snapshot: SnapshotCell,
    /// `XarEngine::state_version` as of the last publish — lets write
    /// paths that did not change searchable state (failed creates,
    /// no-progress tracks) skip the rebuild.
    published_version: AtomicU64,
    /// Nanoseconds since `Inner::anchor` of the last actual publish —
    /// the coalescing window ([`ShardedXarEngine::set_publish_coalesce_us`])
    /// is measured against this.
    last_publish_ns: AtomicU64,
    read_hold_ns: Arc<Histogram>,
    write_hold_ns: Arc<Histogram>,
}

/// Records a lock hold time into both the aggregate and the per-shard
/// labeled histogram when dropped.
struct HoldTimer {
    t0: Instant,
    aggregate: Arc<Histogram>,
    labeled: Arc<Histogram>,
}

impl HoldTimer {
    fn new(aggregate: Arc<Histogram>, labeled: Arc<Histogram>) -> Self {
        Self { t0: Instant::now(), aggregate, labeled }
    }
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        let ns = self.t0.elapsed().as_nanos() as u64;
        self.aggregate.record(ns);
        self.labeled.record(ns);
    }
}

struct Inner {
    region: Arc<RegionIndex>,
    shards: Vec<Shard>,
    occupancy: Arc<ShardOccupancy>,
    stats: EngineStats,
    metrics: EngineMetrics,
    read_hold_ns: Arc<Histogram>,
    write_hold_ns: Arc<Histogram>,
    /// Force every publish down the full-rebuild path (bench baseline /
    /// equivalence testing); incremental patching is the default.
    full_publish: AtomicBool,
    /// Coalescing window for first-match mode, nanoseconds: a
    /// non-forced publish within this window of the shard's previous
    /// publish is deferred (the dirt accumulates until the next forced
    /// publish, window expiry, or [`ShardedXarEngine::publish_pending`]).
    /// 0 (the default) publishes on every write — read-your-writes.
    publish_coalesce_ns: AtomicU64,
    /// Time origin for `Shard::last_publish_ns`.
    anchor: Instant,
}

/// A clonable, thread-safe, cluster-sharded XAR engine (module docs
/// for the locking design).
///
/// ```
/// use std::sync::Arc;
/// use xar_core::{EngineConfig, RideOffer, RideRequest, ShardedXarEngine};
/// use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
/// use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};
///
/// let graph = Arc::new(CityConfig::test_city(7).generate());
/// let pois = sample_pois(&graph, &PoiConfig { count: 300, ..Default::default() });
/// let region = Arc::new(RegionIndex::build(
///     Arc::clone(&graph),
///     &pois,
///     RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
/// ));
/// let engine = ShardedXarEngine::new(region, EngineConfig::default(), 4);
/// let n = graph.node_count() as u32;
/// let ride = engine
///     .create_ride(&RideOffer::simple(
///         graph.point(NodeId(0)),
///         graph.point(NodeId(n - 1)),
///         8.0 * 3600.0,
///         3,
///         2_500.0,
///     ))
///     .unwrap();
/// let matches = engine
///     .search(
///         &RideRequest {
///             source: graph.point(NodeId(n / 2)),
///             destination: graph.point(NodeId(n - 1)),
///             window_start_s: 7.5 * 3600.0,
///             window_end_s: 9.0 * 3600.0,
///             walk_limit_m: 800.0,
///         },
///         5,
///     )
///     .unwrap();
/// assert!(matches.iter().any(|m| m.ride == ride));
/// ```
#[derive(Clone)]
pub struct ShardedXarEngine {
    inner: Arc<Inner>,
}

impl ShardedXarEngine {
    /// A sharded engine over a pre-processed region with fresh metrics.
    pub fn new(region: Arc<RegionIndex>, config: EngineConfig, shards: usize) -> Self {
        Self::with_metrics(region, config, EngineMetrics::new(), shards)
    }

    /// A sharded engine recording into caller-supplied metrics. The
    /// shard count is clamped to `1..=`[`MAX_SHARDS`].
    pub fn with_metrics(
        region: Arc<RegionIndex>,
        config: EngineConfig,
        metrics: EngineMetrics,
        shards: usize,
    ) -> Self {
        let n = shards.clamp(1, MAX_SHARDS);
        let registry = metrics.registry();
        let occupancy = Arc::new(ShardOccupancy::new(region.cluster_count()));
        let shards = (0..n)
            .map(|i| {
                let mut engine = XarEngine::with_metrics(
                    Arc::clone(&region),
                    config.clone(),
                    EngineMetrics::with_registry(Arc::clone(&registry)),
                );
                engine.set_id_sequence(i as u64 + 1, n as u64);
                engine.attach_shard_occupancy(Arc::clone(&occupancy), i as u32);
                Self::make_shard(engine, i, &registry)
            })
            .collect();
        Self::assemble(region, shards, occupancy, metrics)
    }

    /// Wrap an existing engine. With `shards == 1` the engine is taken
    /// as-is — rides, ids and metrics preserved (this is how
    /// [`crate::concurrent::SharedXarEngine`] stays a drop-in facade).
    /// With more shards the engine must still be empty (its id space is
    /// re-striped across the shards).
    ///
    /// # Panics
    /// If `shards > 1` and the engine already holds rides.
    pub fn from_engine(engine: XarEngine, shards: usize) -> Self {
        let n = shards.clamp(1, MAX_SHARDS);
        let region = Arc::clone(engine.region());
        let config = engine.config().clone();
        let metrics = engine.metrics().clone();
        let registry = metrics.registry();
        let occupancy = Arc::new(ShardOccupancy::new(region.cluster_count()));
        if n == 1 {
            let mut engine = engine;
            engine.attach_shard_occupancy(Arc::clone(&occupancy), 0);
            let shards = vec![Self::make_shard(engine, 0, &registry)];
            return Self::assemble(region, shards, occupancy, metrics);
        }
        assert!(
            engine.ride_count() == 0,
            "cannot re-stripe a populated engine across {n} shards"
        );
        Self::with_metrics(region, config, metrics, n)
    }

    fn make_shard(mut engine: XarEngine, i: usize, registry: &Arc<Registry>) -> Shard {
        let label = format!("s{i}");
        // Seed the snapshot from the engine as handed over — the
        // single-shard facade wraps already-populated engines, whose
        // rides must be searchable before the first write republishes.
        // The seed is a full build, so any dirt the engine accumulated
        // before hand-over is already reflected: drain it.
        let snapshot = SnapshotCell::new(ShardSnapshot::build(&engine));
        let _ = engine.drain_publish_dirt();
        let published_version = AtomicU64::new(engine.state_version());
        Shard {
            lock: RwLock::new(engine),
            snapshot,
            published_version,
            last_publish_ns: AtomicU64::new(0),
            read_hold_ns: registry.histogram_with("lock.read_hold_ns", &[("shard", &label)]),
            write_hold_ns: registry.histogram_with("lock.write_hold_ns", &[("shard", &label)]),
        }
    }

    fn assemble(
        region: Arc<RegionIndex>,
        shards: Vec<Shard>,
        occupancy: Arc<ShardOccupancy>,
        metrics: EngineMetrics,
    ) -> Self {
        let registry = metrics.registry();
        let stats = EngineStats::from_registry(&registry);
        let read_hold_ns = registry.histogram("lock.read_hold_ns");
        let write_hold_ns = registry.histogram("lock.write_hold_ns");
        Self {
            inner: Arc::new(Inner {
                region,
                shards,
                occupancy,
                stats,
                metrics,
                read_hold_ns,
                write_hold_ns,
                full_publish: AtomicBool::new(false),
                publish_coalesce_ns: AtomicU64::new(0),
                anchor: Instant::now(),
            }),
        }
    }

    /// Force every snapshot publish down the full-rebuild path instead
    /// of patching dirty cluster segments. Bench baselines and the
    /// incremental ≡ full equivalence tests flip this; production keeps
    /// the default (`false`).
    pub fn set_full_publish(&self, full: bool) {
        self.inner.full_publish.store(full, Ordering::Relaxed);
    }

    /// Set the publish-coalescing window for first-match mode,
    /// microseconds. While a shard published less than this long ago,
    /// non-forced write paths (create/book) defer their republish and
    /// let the dirt accumulate; retirement sweeps, batch commits and
    /// [`ShardedXarEngine::publish_pending`] always publish. 0 (the
    /// default) restores publish-on-every-write (read-your-writes).
    pub fn set_publish_coalesce_us(&self, us: u64) {
        self.inner.publish_coalesce_ns.store(us.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// Publish every shard whose engine state ran ahead of its
    /// published snapshot (dirt deferred by the coalescing window).
    /// Cheap when nothing is pending: a lock-free version probe per
    /// shard, write locks only where a publish is actually due.
    pub fn publish_pending(&self) {
        for i in 0..self.inner.shards.len() {
            let shard = &self.inner.shards[i];
            let published = shard.published_version.load(Ordering::Acquire);
            let stale = {
                let (guard, _hold) = self.read_shard(i);
                guard.state_version() != published
            };
            if stale {
                let (mut guard, _hold) = self.write_shard(i);
                self.publish_shard(i, &mut guard, true);
            }
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The region discretization the engine runs on (lock-free).
    #[inline]
    pub fn region(&self) -> &Arc<RegionIndex> {
        &self.inner.region
    }

    /// Shared operation counters (all shards record into these).
    #[inline]
    pub fn stats(&self) -> &EngineStats {
        &self.inner.stats
    }

    /// Shared latency / candidate-set telemetry.
    #[inline]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.inner.metrics
    }

    /// The registry every shard and the sharding layer record into.
    pub fn registry(&self) -> Arc<Registry> {
        self.inner.metrics.registry()
    }

    /// The occupancy bitmask (exposed for tests and diagnostics).
    pub fn occupancy(&self) -> &Arc<ShardOccupancy> {
        &self.inner.occupancy
    }

    /// The shard owning cluster `c`: a Fibonacci hash of the cluster id
    /// so spatially adjacent clusters (consecutive ids) spread across
    /// shards instead of piling hotspots onto one lock.
    #[inline]
    pub fn shard_of_cluster(&self, c: ClusterId) -> usize {
        let h = (u64::from(c.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.inner.shards.len()
    }

    /// The shard owning ride `id`. Shard `i` hands out ids from the
    /// progression `i+1, i+1+n, …`, so the owner is recoverable from
    /// the id alone — booking never probes shards.
    #[inline]
    pub fn shard_of_ride(&self, id: RideId) -> usize {
        ((id.0.saturating_sub(1)) % self.inner.shards.len() as u64) as usize
    }

    fn read_shard(&self, i: usize) -> (RwLockReadGuard<'_, XarEngine>, HoldTimer) {
        let shard = &self.inner.shards[i];
        let guard = {
            let _acq = xar_obs::trace::span("lock.read_acquire");
            shard.lock.read().unwrap_or_else(|e| e.into_inner())
        };
        let hold = HoldTimer::new(
            Arc::clone(&self.inner.read_hold_ns),
            Arc::clone(&shard.read_hold_ns),
        );
        (guard, hold)
    }

    fn write_shard(&self, i: usize) -> (RwLockWriteGuard<'_, XarEngine>, HoldTimer) {
        let shard = &self.inner.shards[i];
        let guard = {
            let _acq = xar_obs::trace::span("lock.write_acquire");
            shard.lock.write().unwrap_or_else(|e| e.into_inner())
        };
        let hold = HoldTimer::new(
            Arc::clone(&self.inner.write_hold_ns),
            Arc::clone(&shard.write_hold_ns),
        );
        (guard, hold)
    }

    /// **Search** (operation O1) across shards: walkable-cluster
    /// fan-out from the lock-free region tables, occupancy-pruned
    /// lock-free snapshot reads, one global sort. Returns up to `limit`
    /// matches, least combined walking first — identical results to
    /// [`XarEngine::search`] over the union of the shards
    /// (property-tested in `tests/sharded_hammer` and
    /// `tests/snapshot_linearizable`).
    ///
    /// Allocates only the returned `Vec`; latency-critical callers
    /// reuse a buffer through [`ShardedXarEngine::search_into`].
    pub fn search(&self, req: &RideRequest, limit: usize) -> Result<Vec<RideMatch>, XarError> {
        let mut out = Vec::new();
        self.search_into(req, limit, &mut out)?;
        Ok(out)
    }

    /// [`ShardedXarEngine::search`] into a caller-owned buffer (cleared
    /// first). With a warmed buffer this path performs **zero heap
    /// allocations** (asserted by `tests/snapshot_alloc`): candidate
    /// scratch lives in a thread-local, snapshots are read in place,
    /// and the final sort is unstable (no merge buffer).
    ///
    /// It also takes **no locks**: each probed shard's published
    /// [`ShardSnapshot`] is loaded with one atomic read under an epoch
    /// pin, so concurrent writers are never waited on. The view is the
    /// serializable point-in-time state as of each shard's latest
    /// publish.
    pub fn search_into(
        &self,
        req: &RideRequest,
        limit: usize,
        out: &mut Vec<RideMatch>,
    ) -> Result<(), XarError> {
        let mut explain = SearchExplain::default();
        self.search_into_explained(req, limit, out, &mut explain)
    }

    /// [`ShardedXarEngine::search_into`], also filling `explain` with
    /// per-check rejection attribution accumulated across the probed
    /// shards. `explain` is a stack-only `Copy` struct, so this path
    /// keeps the zero-allocation and lock-free guarantees of
    /// `search_into`.
    pub fn search_into_explained(
        &self,
        req: &RideRequest,
        limit: usize,
        out: &mut Vec<RideMatch>,
        explain: &mut SearchExplain,
    ) -> Result<(), XarError> {
        out.clear();
        *explain = SearchExplain::default();
        let inner = &*self.inner;
        if let Err(e) = req.validate() {
            explain.hard = Some(e.reason());
            return Err(e);
        }
        inner.stats.searches.inc();
        let t0 = Instant::now();
        let _span = xar_obs::SpanTimer::new(Arc::clone(&inner.metrics.search_ns));
        let mut tspan = xar_obs::trace::span("search");
        let region = &inner.region;
        let src_node = region.snap(&req.source);
        let dst_node = region.snap(&req.destination);
        let src_walkable = region.walkable_within(src_node, req.walk_limit_m);
        let dst_walkable = region.walkable_within(dst_node, req.walk_limit_m);
        if src_walkable.is_empty() || dst_walkable.is_empty() {
            explain.hard = Some(Reason::NotServable);
            return Err(XarError::NotServable);
        }
        let tier = EngineMetrics::tier_index(src_walkable.len());
        explain.tier = tier as u8 + 1;
        let tier_hist = &inner.metrics.search_ns_tier[tier];

        // A shard can only contribute a match if it holds entries for at
        // least one source-side AND one destination-side cluster (the
        // candidate set is R1 ∩ R2, and a ride's entries never leave its
        // shard) — everything else is skipped without loading its
        // snapshot.
        let mask = inner.occupancy.mask_for(src_walkable.iter().map(|w| w.cluster.index()))
            & inner.occupancy.mask_for(dst_walkable.iter().map(|w| w.cluster.index()));

        let mut candidates = 0usize;
        {
            let guard = snapshot::pin();
            snapshot::with_scratch(|scratch| {
                for (i, shard) in inner.shards.iter().enumerate() {
                    if mask & (1u64 << i) == 0 {
                        continue;
                    }
                    let snap = shard.snapshot.load(&guard);
                    candidates += snap
                        .collect_matches(src_walkable, dst_walkable, req, scratch, out, explain);
                }
            });
        }
        inner.metrics.search_candidates.record(candidates as u64);
        tspan.attr("candidates", candidates);
        tspan.attr("shards", u64::from(mask.count_ones()));

        sort_matches(out);
        out.truncate(limit);
        tspan.attr("matches", out.len());
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        tier_hist.record(elapsed_ns);
        // Latency exemplar per tier: retain the trace ids behind the
        // slowest recent searches (atomics only — the warmed search
        // path stays allocation-free; skipped when tracing is off).
        if let Some(ctx) = xar_obs::trace::current_ctx() {
            inner.metrics.search_exemplar_tier[EngineMetrics::tier_index(src_walkable.len())]
                .offer(elapsed_ns, ctx.trace);
        }
        Ok(())
    }

    /// Publish shard `i`'s search snapshot if its engine's searchable
    /// state changed: drain the engine's dirty clusters and patch the
    /// previous snapshot ([`ShardSnapshot::build_incremental`] —
    /// unchanged cluster segments are `Arc`-shared, so the cost is
    /// proportional to the dirt, not the shard). Falls back to a full
    /// rebuild when at least half the clusters are dirty (the patch
    /// would copy most of the pointer array anyway and the full build
    /// resets `entries` drift exactly) or when
    /// [`ShardedXarEngine::set_full_publish`] is on.
    ///
    /// Called by every write path while it still holds the shard write
    /// lock, so publishes serialize per shard and each snapshot is a
    /// consistent point-in-time view. `force` bypasses the coalescing
    /// window — retirement sweeps and batch commits must land even
    /// mid-window.
    fn publish_shard(&self, i: usize, engine: &mut XarEngine, force: bool) {
        let shard = &self.inner.shards[i];
        let version = engine.state_version();
        // Ordering: all publishes of this shard happen under its write
        // lock (every caller holds it), so the load below can never
        // race a concurrent store to the same shard — the lock's
        // acquire/release already orders them. The explicit
        // Acquire/Release pairing makes the no-op-skip argument local
        // as well: a publisher that loads `published_version == version`
        // observes everything the publisher that stored that version
        // did before its store — including its snapshot swap and its
        // dirt drain — so an equal version always means "this exact
        // state is already published and the dirty set is empty", never
        // "a pending rebuild is still in flight". (With `Relaxed` the
        // conclusion would still hold via the lock, but would silently
        // break if a lock-free caller were ever added; regression test:
        // `noop_skip_never_hides_a_pending_rebuild`.)
        if shard.published_version.load(Ordering::Acquire) == version {
            return;
        }
        if !force {
            let window = self.inner.publish_coalesce_ns.load(Ordering::Relaxed);
            if window > 0 {
                let now = self.inner.anchor.elapsed().as_nanos() as u64;
                let last = shard.last_publish_ns.load(Ordering::Relaxed);
                if now.saturating_sub(last) < window {
                    // Defer: the dirt stays in the engine and the next
                    // forced or post-window publish drains it all.
                    return;
                }
            }
        }
        let t0 = Instant::now();
        let mut tspan = xar_obs::trace::span("snapshot.publish");
        tspan.attr("shard", i);
        let m = &self.inner.metrics;
        let (dirty, ride_dirt, compacted) = engine.drain_publish_dirt();
        let next = {
            // Pin only while reading the previous snapshot for the
            // patch; the guard must drop before `publish` below or our
            // own pin would keep the snapshot we retire from being
            // freed (inflating the backlog gauge for no reason).
            let guard = snapshot::pin();
            let prev = shard.snapshot.load(&guard);
            if self.inner.full_publish.load(Ordering::Relaxed)
                || prev.cluster_count() != engine.index().cluster_count()
                || dirty.len() * 2 >= prev.cluster_count().max(1)
            {
                ShardSnapshot::build(engine)
            } else {
                m.snapshot_partial_publishes.inc();
                ShardSnapshot::build_incremental(engine, prev, &dirty, &ride_dirt)
            }
        };
        let outcome = shard.snapshot.publish(next);
        shard.published_version.store(version, Ordering::Release);
        shard
            .last_publish_ns
            .store(self.inner.anchor.elapsed().as_nanos() as u64, Ordering::Relaxed);
        m.snapshot_publish_ns.record(t0.elapsed().as_nanos() as u64);
        m.snapshot_publishes.inc();
        m.snapshot_dirty_clusters.record(dirty.len() as u64);
        m.snapshot_compacted_rides.add(compacted);
        m.snapshot_retired_freed.add(outcome.freed as u64);
        // Each publish retires exactly one snapshot and frees `freed`;
        // the gauge tracks the global not-yet-freed backlog.
        m.snapshot_backlog.add(1 - outcome.freed as i64);
    }

    /// **Create** (operation O2): one write lock on the shard owning
    /// the offer's pick-up cluster; publishes the shard's refreshed
    /// search snapshot before releasing it, so the new ride is
    /// immediately findable by lock-free searches.
    pub fn create_ride(&self, offer: &RideOffer) -> Result<RideId, XarError> {
        let region = &self.inner.region;
        let shard = region
            .cluster_of_node(region.snap_exact(&offer.source))
            .map_or(0, |c| self.shard_of_cluster(c));
        let (mut guard, _hold) = self.write_shard(shard);
        let res = guard.create_ride(offer);
        self.publish_shard(shard, &mut guard, false);
        res
    }

    /// **Book**: one write lock on the ride's owning shard (recovered
    /// from the id — no probing), then a snapshot republish so the
    /// consumed seat / reduced budget are visible to searches at once.
    pub fn book(&self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        let shard = self.shard_of_ride(m.ride);
        let (mut guard, _hold) = self.write_shard(shard);
        let res = guard.book(m);
        self.publish_shard(shard, &mut guard, false);
        res
    }

    /// **Book** with a commit-time feasibility re-check
    /// ([`XarEngine::validate_match`]): seats, progress *and* detour
    /// budget are re-validated against the live ride state under the
    /// owning shard's write lock, so the check and the booking are one
    /// atomic step — no other writer can invalidate the match between
    /// them. This is the entry point for batch dispatchers, whose
    /// matches come from a lock-free snapshot taken up to a window
    /// earlier and may have gone stale behind the searcher's back.
    pub fn book_checked(&self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        let shard = self.shard_of_ride(m.ride);
        let (mut guard, _hold) = self.write_shard(shard);
        let res = guard.book_checked(m);
        self.publish_shard(shard, &mut guard, false);
        res
    }

    /// **Book** a whole batch window's matches with one write lock and
    /// one snapshot publish per *touched shard* instead of one of each
    /// per booking — the coalescing that makes `--dispatch batch:<ms>`
    /// write cost proportional to the dirt, not to the booking count.
    /// Matches are grouped by owning shard; within a shard they commit
    /// in stream order, each individually re-validated
    /// ([`XarEngine::validate_match`]) against the live state, so one
    /// stale match never poisons the rest. Results come back
    /// index-aligned with `ms`.
    pub fn book_checked_batch(&self, ms: &[&RideMatch]) -> Vec<Result<BookingOutcome, XarError>> {
        let n = self.inner.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pos, m) in ms.iter().enumerate() {
            by_shard[self.shard_of_ride(m.ride)].push(pos);
        }
        let mut out: Vec<Option<Result<BookingOutcome, XarError>>> = (0..ms.len()).map(|_| None).collect();
        for (shard, positions) in by_shard.into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let (mut guard, _hold) = self.write_shard(shard);
            for pos in positions {
                out[pos] = Some(guard.book_checked(ms[pos]));
            }
            self.publish_shard(shard, &mut guard, true);
        }
        out.into_iter().map(|r| r.expect("every match was routed to a shard")).collect()
    }

    /// **Track** one ride: one write lock on its owning shard, plus a
    /// snapshot republish when the track retired the ride or rewrote
    /// index entries (pure progress advances skip it).
    pub fn track_ride(&self, id: RideId, now_s: f64) -> Result<RideStatus, XarError> {
        let shard = self.shard_of_ride(id);
        let (mut guard, _hold) = self.write_shard(shard);
        let res = guard.track_ride(id, now_s);
        self.publish_shard(shard, &mut guard, true);
        res
    }

    /// **Track** every live ride to `now_s`: a per-shard sweep that
    /// write-locks one shard at a time — searches on other shards are
    /// never stalled. Shards with zero rides are skipped after a
    /// read-locked probe (no write lock taken at all). Returns the
    /// number of rides retired.
    pub fn track_all(&self, now_s: f64) -> usize {
        let mut retired = 0;
        for i in 0..self.inner.shards.len() {
            {
                let (guard, _hold) = self.read_shard(i);
                if guard.ride_count() == 0 {
                    continue;
                }
            }
            let (mut guard, _hold) = self.write_shard(i);
            retired += guard.track_all(now_s);
            // Forced: retirements must leave the searchable snapshot
            // even mid-coalescing-window (an expired ride served from a
            // stale snapshot would fail its commit-time re-validation,
            // but the paper's freshness story is that tracking evicts).
            self.publish_shard(i, &mut guard, true);
        }
        retired
    }

    /// Whether every shard's published snapshot is content-identical to
    /// a fresh full rebuild of its engine state (and its published
    /// version has caught up) — the incremental ≡ full invariant,
    /// exposed for tests and audits. Takes each shard's read lock
    /// briefly.
    pub fn snapshots_consistent(&self) -> bool {
        let guard = snapshot::pin();
        (0..self.inner.shards.len()).all(|i| {
            let shard = &self.inner.shards[i];
            let (eng, _hold) = self.read_shard(i);
            shard.published_version.load(Ordering::Acquire) == eng.state_version()
                && shard.snapshot.load(&guard).content_eq(&ShardSnapshot::build(&eng))
        })
    }

    /// Total live rides across all shards.
    pub fn ride_count(&self) -> usize {
        (0..self.inner.shards.len())
            .map(|i| {
                let (guard, _hold) = self.read_shard(i);
                guard.ride_count()
            })
            .sum()
    }

    /// Run a read-only closure against one shard's engine (shared
    /// lock) — stats, inspection, tests.
    pub fn with_shard_read<R>(&self, shard: usize, f: impl FnOnce(&XarEngine) -> R) -> R {
        let (guard, _hold) = self.read_shard(shard);
        f(&guard)
    }

    /// Visit every live ride across all shards (shards read-locked one
    /// at a time) — audits and invariant checks.
    pub fn for_each_ride(&self, mut f: impl FnMut(&Ride)) {
        for i in 0..self.inner.shards.len() {
            let (guard, _hold) = self.read_shard(i);
            for ride in guard.rides() {
                f(ride);
            }
        }
    }

    /// Per-shard introspection — the `/debug/shards` payload. One JSON
    /// record per shard: live rides, engine state version vs. the
    /// version of the published search snapshot (a lag means a write
    /// path skipped the republish — by design only when nothing
    /// searchable changed), the retired-snapshot backlog awaiting
    /// epoch reclamation, and how many clusters the shard holds index
    /// entries for. Takes each shard's read lock briefly, one at a
    /// time.
    pub fn shard_debug_json(&self) -> String {
        let inner = &*self.inner;
        let cluster_count = inner.region.cluster_count();
        let mut w = xar_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("shards");
        w.begin_array();
        for (i, shard) in inner.shards.iter().enumerate() {
            let (rides, state_version) = {
                let (guard, _hold) = self.read_shard(i);
                (guard.ride_count(), guard.state_version())
            };
            let published = shard.published_version.load(Ordering::Relaxed);
            let occupied = (0..cluster_count)
                .filter(|&c| inner.occupancy.cluster_mask(c) & (1u64 << i) != 0)
                .count();
            w.begin_object();
            w.key("shard");
            w.number_u64(i as u64);
            w.key("rides");
            w.number_u64(rides as u64);
            w.key("state_version");
            w.number_u64(state_version);
            w.key("published_version");
            w.number_u64(published);
            w.key("publish_lag");
            w.number_u64(state_version.saturating_sub(published));
            w.key("retired_backlog");
            w.number_u64(shard.snapshot.retired_len() as u64);
            w.key("occupied_clusters");
            w.number_u64(occupied as u64);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Total heap bytes: the shared region tables once, plus every
    /// shard's private runtime state (index + rides) and its published
    /// search snapshot.
    pub fn heap_bytes(&self) -> usize {
        let runtime: usize = (0..self.inner.shards.len())
            .map(|i| {
                let (guard, _hold) = self.read_shard(i);
                guard.heap_bytes_runtime()
            })
            .sum();
        let guard = snapshot::pin();
        let snapshots: usize =
            self.inner.shards.iter().map(|s| s.snapshot.load(&guard).heap_bytes()).sum();
        self.inner.region.heap_bytes() + runtime + snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_discretize::{ClusterGoal, RegionConfig};
    use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

    fn region(seed: u64) -> Arc<RegionIndex> {
        let graph = Arc::new(CityConfig::test_city(seed).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 400, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    }

    fn offer(graph: &Arc<RoadGraph>, i: u32) -> RideOffer {
        let n = graph.node_count() as u32;
        RideOffer::simple(
            graph.point(NodeId((i * 37) % n)),
            graph.point(NodeId((i * 61 + n / 2) % n)),
            8.0 * 3600.0 + f64::from(i) * 60.0,
            3,
            3_000.0,
        )
    }

    #[test]
    fn ride_ids_are_unique_and_map_back_to_their_shard() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        let mut ids = Vec::new();
        for i in 0..40 {
            if let Ok(id) = eng.create_ride(&offer(&graph, i)) {
                ids.push(id);
            }
        }
        assert!(ids.len() > 10, "most creates must succeed");
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids globally unique across shards");
        // Every id's computed shard actually holds the ride.
        for id in &ids {
            let s = eng.shard_of_ride(*id);
            assert!(eng.with_shard_read(s, |e| e.ride(*id).is_some()), "ride {id:?} in shard {s}");
        }
        assert_eq!(eng.ride_count(), ids.len());
    }

    #[test]
    fn search_spans_shards_and_matches_are_bookable() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        for i in 0..30 {
            let _ = eng.create_ride(&offer(&graph, i));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let matches = eng.search(&req, usize::MAX).unwrap();
        assert!(!matches.is_empty(), "cross-town rides must be findable");
        // Matches come back globally sorted by combined walking.
        for w in matches.windows(2) {
            assert!(w[0].walk_total_m() <= w[1].walk_total_m() + 1e-9);
        }
        let booked = eng.book(&matches[0]).expect("best match books");
        assert_eq!(booked.ride, matches[0].ride);
        let s = eng.stats().snapshot();
        assert_eq!(s.bookings, 1);
        assert_eq!(s.searches, 1);
    }

    #[test]
    fn occupancy_prunes_empty_shards() {
        let region = region(31);
        let clusters = region.cluster_count();
        let graph = Arc::clone(region.graph());
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 8);
        // Empty engine: no cluster maps to any shard.
        assert_eq!(eng.occupancy().mask_for(0..clusters), 0);
        let id = eng.create_ride(&offer(&graph, 3)).unwrap();
        let mask = eng.occupancy().mask_for(0..clusters);
        assert_eq!(mask, 1 << eng.shard_of_ride(id), "exactly the owning shard is occupied");
        // Drive the ride to completion: occupancy drains back to zero.
        eng.track_all(f64::INFINITY);
        assert_eq!(eng.ride_count(), 0);
        assert_eq!(eng.occupancy().mask_for(0..clusters), 0);
    }

    #[test]
    fn track_all_skips_empty_shards_without_write_locks() {
        let region = region(31);
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        let writes_before = eng.registry().histogram("lock.write_hold_ns").count();
        assert_eq!(eng.track_all(9.0 * 3600.0), 0);
        let writes_after = eng.registry().histogram("lock.write_hold_ns").count();
        assert_eq!(writes_before, writes_after, "empty sweep must not take write locks");
    }

    #[test]
    fn per_shard_lock_series_are_labeled() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 2);
        let _ = eng.create_ride(&offer(&graph, 1));
        let json = eng.registry().snapshot_json();
        assert!(
            json.contains("lock.write_hold_ns{shard=\\\"s0\\\"}")
                || json.contains("lock.write_hold_ns{shard=\\\"s1\\\"}"),
            "{json}"
        );
    }

    #[test]
    fn from_engine_single_shard_preserves_rides() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let mut engine = XarEngine::new(Arc::clone(&region), EngineConfig::default());
        let id = engine.create_ride(&offer(&graph, 2)).unwrap();
        let sharded = ShardedXarEngine::from_engine(engine, 1);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.ride_count(), 1);
        // The pre-existing ride is findable: occupancy was back-filled.
        assert!(sharded.occupancy().mask_for(0..region.cluster_count()) != 0);
        assert!(sharded.with_shard_read(0, |e| e.ride(id).is_some()));
    }

    #[test]
    #[should_panic(expected = "re-stripe")]
    fn from_engine_multi_shard_rejects_populated_engine() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let mut engine = XarEngine::new(region, EngineConfig::default());
        let _ = engine.create_ride(&offer(&graph, 2)).unwrap();
        let _ = ShardedXarEngine::from_engine(engine, 4);
    }

    #[test]
    fn search_takes_no_locks() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        for i in 0..30 {
            let _ = eng.create_ride(&offer(&graph, i));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let reads_before = eng.registry().histogram("lock.read_hold_ns").count();
        let mut found = 0usize;
        for _ in 0..50 {
            found += eng.search(&req, usize::MAX).unwrap().len();
        }
        assert!(found > 0, "searches must still find the rides");
        let reads_after = eng.registry().histogram("lock.read_hold_ns").count();
        assert_eq!(reads_before, reads_after, "search must not take read locks");
    }

    #[test]
    fn writes_are_immediately_visible_to_search() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        // Empty engine: nothing findable.
        assert!(matches!(eng.search(&req, usize::MAX), Ok(v) if v.is_empty())
            || matches!(eng.search(&req, usize::MAX), Err(XarError::NotServable)));
        for i in 0..30 {
            let _ = eng.create_ride(&offer(&graph, i));
        }
        // Creates published their snapshots: matches appear with no
        // intervening write.
        let matches = eng.search(&req, usize::MAX).unwrap();
        assert!(!matches.is_empty(), "created rides must be searchable immediately");
        // Booking a single-seat ride out makes it vanish from search.
        let single = RideOffer {
            seats: 1,
            ..offer(&graph, 77)
        };
        let id = eng.create_ride(&single).unwrap();
        let ms = eng.search(&req, usize::MAX).unwrap();
        if let Some(m) = ms.iter().find(|m| m.ride == id) {
            eng.book(m).unwrap();
            let after = eng.search(&req, usize::MAX).unwrap();
            assert!(
                after.iter().all(|m| m.ride != id),
                "a booked-out ride must leave the snapshot immediately"
            );
        }
        // Retiring everything drains search results.
        eng.track_all(f64::INFINITY);
        assert_eq!(eng.ride_count(), 0);
        let drained = eng.search(&req, usize::MAX).unwrap();
        assert!(drained.is_empty(), "retired rides must leave the snapshot");
    }

    #[test]
    fn snapshot_publishes_are_metered_and_gated_on_version() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        let _ = eng.create_ride(&offer(&graph, 1)).unwrap();
        let m = eng.metrics();
        let after_create = m.snapshot_publishes.get();
        assert!(after_create >= 1, "create must publish a snapshot");
        assert!(m.snapshot_publish_ns.count() >= 1);
        // A sweep that advances nothing (before departure) must not
        // republish: the state version is unchanged.
        eng.track_all(0.0);
        assert_eq!(m.snapshot_publishes.get(), after_create, "no-op track must skip publish");
    }

    #[test]
    fn search_into_reuses_the_buffer() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 2);
        for i in 0..20 {
            let _ = eng.create_ride(&offer(&graph, i));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let mut out = Vec::new();
        eng.search_into(&req, usize::MAX, &mut out).unwrap();
        let first: Vec<_> = out.clone();
        assert!(!first.is_empty(), "workload must produce matches");
        // Stale contents are cleared, results are identical run to run.
        out.push(first[0]);
        eng.search_into(&req, usize::MAX, &mut out).unwrap();
        assert_eq!(out, first);
        assert_eq!(eng.search(&req, usize::MAX).unwrap(), first);
    }

    #[test]
    fn noop_skip_never_hides_a_pending_rebuild() {
        // The `published_version` gate (Acquire/Release — see
        // `publish_shard`) may skip a publish only when the published
        // snapshot already reflects the engine state exactly. Interleave
        // real mutations with no-op sweeps and verify after every step
        // that the published snapshot is content-identical to a full
        // rebuild — a skipped-but-pending rebuild would diverge here.
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        for i in 0..25 {
            let _ = eng.create_ride(&offer(&graph, i));
            eng.track_all(0.0); // no-op: must skip, but skip must be sound
            assert!(eng.snapshots_consistent(), "after create {i} + no-op sweep");
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        for m in eng.search(&req, 5).unwrap() {
            let _ = eng.book_checked(&m);
            eng.track_all(0.0);
            assert!(eng.snapshots_consistent(), "after booking + no-op sweep");
        }
        eng.track_all(f64::INFINITY);
        assert!(eng.snapshots_consistent(), "after retiring everything");
    }

    #[test]
    fn incremental_publishes_are_partial_and_equivalent() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        // Small detour budgets keep the reachable sets — and so the
        // dirty fraction — small; the 30-cluster test city would
        // otherwise trip the ≥half-dirty full-rebuild heuristic on
        // every create.
        let tight = |i: u32| RideOffer { detour_limit_m: 250.0, ..offer(&graph, i) };
        for i in 0..30 {
            let _ = eng.create_ride(&tight(i));
        }
        let m = eng.metrics();
        assert!(
            m.snapshot_partial_publishes.get() > 0,
            "steady-state creates must take the incremental path"
        );
        assert!(m.snapshot_dirty_clusters.count() >= m.snapshot_publishes.get());
        assert!(eng.snapshots_consistent());
        // Full-publish mode still converges to the same content.
        eng.set_full_publish(true);
        let partial_before = m.snapshot_partial_publishes.get();
        let _ = eng.create_ride(&tight(31));
        assert_eq!(m.snapshot_partial_publishes.get(), partial_before);
        assert!(eng.snapshots_consistent());
    }

    #[test]
    fn publish_coalescing_defers_then_catches_up() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 2);
        eng.set_publish_coalesce_us(3_600_000_000); // one hour: everything defers
        let m = eng.metrics();
        let publishes_before = m.snapshot_publishes.get();
        let mut created = 0;
        for i in 0..20 {
            created += eng.create_ride(&offer(&graph, i)).is_ok() as usize;
        }
        assert!(created > 5);
        assert_eq!(
            m.snapshot_publishes.get(),
            publishes_before,
            "inside the window every create must defer its publish"
        );
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let stale = eng.search(&req, usize::MAX).unwrap_or_default();
        assert!(stale.is_empty(), "deferred publishes must leave the old (empty) view");
        // The catch-up drains all accumulated dirt in one publish per shard.
        eng.publish_pending();
        assert!(m.snapshot_publishes.get() > publishes_before);
        assert!(eng.snapshots_consistent());
        assert!(!eng.search(&req, usize::MAX).unwrap().is_empty());
        // Back to 0: read-your-writes returns.
        eng.set_publish_coalesce_us(0);
        let _ = eng.create_ride(&offer(&graph, 50));
        assert!(eng.snapshots_consistent());
    }

    #[test]
    fn batch_booking_publishes_once_per_touched_shard() {
        let region = region(31);
        let graph = Arc::clone(region.graph());
        let n = graph.node_count() as u32;
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 4);
        for i in 0..30 {
            let _ = eng.create_ride(&offer(&graph, i));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let matches = eng.search(&req, 6).unwrap();
        assert!(matches.len() >= 2, "need a real batch");
        let refs: Vec<&RideMatch> = matches.iter().collect();
        let mut shards: Vec<usize> = refs.iter().map(|m| eng.shard_of_ride(m.ride)).collect();
        shards.sort_unstable();
        shards.dedup();
        let m = eng.metrics();
        let publishes_before = m.snapshot_publishes.get();
        let results = eng.book_checked_batch(&refs);
        assert_eq!(results.len(), refs.len(), "results index-aligned with input");
        assert!(results[0].is_ok(), "first (freshest) match must book");
        let published = m.snapshot_publishes.get() - publishes_before;
        assert!(
            published <= shards.len() as u64,
            "batch of {} published {published} times for {} touched shards",
            refs.len(),
            shards.len()
        );
        assert!(eng.snapshots_consistent());
        // Outcomes match what sequential book_checked would decide for
        // the same stream: each Ok really decremented a seat.
        let booked: u64 = results.iter().filter(|r| r.is_ok()).count() as u64;
        assert_eq!(eng.stats().snapshot().bookings, booked);
    }

    #[test]
    fn shard_count_is_clamped() {
        let region = region(31);
        let eng = ShardedXarEngine::new(Arc::clone(&region), EngineConfig::default(), 0);
        assert_eq!(eng.shard_count(), 1);
        let eng = ShardedXarEngine::new(region, EngineConfig::default(), 1_000);
        assert_eq!(eng.shard_count(), MAX_SHARDS);
    }
}
