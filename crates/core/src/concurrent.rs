//! Thread-safe engine wrapper for high look-to-book deployments.
//!
//! XAR's defining workload is many cheap searches per expensive write
//! (§I: "multi-modal trip planners have a high look-to-book ratio").
//! [`SharedXarEngine`] maps that profile onto a `std::sync::RwLock`:
//! searches take the shared read lock and run fully concurrently, while
//! create / book / track serialize on the write lock. Under a 480:1
//! look-to-book ratio (the Go-LA estimate, §X.B.2) contention on the
//! write path is negligible.
//!
//! Every operation records its lock **hold time** into the engine's
//! metric registry (`lock.read_hold_ns` / `lock.write_hold_ns`), so the
//! operational question "are writes starving the readers?" is
//! answerable from a registry snapshot instead of a profiler.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use xar_obs::{Histogram, SpanTimer};

use crate::booking::BookingOutcome;
use crate::engine::XarEngine;
use crate::error::XarError;
use crate::request::RideRequest;
use crate::ride::{RideId, RideOffer, RideStatus};
use crate::search::RideMatch;

/// A clonable, thread-safe handle to an [`XarEngine`].
#[derive(Clone)]
pub struct SharedXarEngine {
    inner: Arc<RwLock<XarEngine>>,
    read_hold_ns: Arc<Histogram>,
    write_hold_ns: Arc<Histogram>,
}

impl SharedXarEngine {
    /// Wrap an engine.
    pub fn new(engine: XarEngine) -> Self {
        let registry = engine.metrics().registry();
        let read_hold_ns = registry.histogram("lock.read_hold_ns");
        let write_hold_ns = registry.histogram("lock.write_hold_ns");
        Self { inner: Arc::new(RwLock::new(engine)), read_hold_ns, write_hold_ns }
    }

    fn read(&self) -> (RwLockReadGuard<'_, XarEngine>, SpanTimer) {
        let guard = {
            let _acq = xar_obs::trace::span("lock.read_acquire");
            self.inner.read().unwrap_or_else(|e| e.into_inner())
        };
        (guard, SpanTimer::new(Arc::clone(&self.read_hold_ns)))
    }

    fn write(&self) -> (RwLockWriteGuard<'_, XarEngine>, SpanTimer) {
        let guard = {
            let _acq = xar_obs::trace::span("lock.write_acquire");
            self.inner.write().unwrap_or_else(|e| e.into_inner())
        };
        (guard, SpanTimer::new(Arc::clone(&self.write_hold_ns)))
    }

    /// Concurrent search (shared read lock).
    pub fn search(&self, req: &RideRequest, limit: usize) -> Result<Vec<RideMatch>, XarError> {
        let (guard, _hold) = self.read();
        guard.search(req, limit)
    }

    /// Exclusive ride creation.
    pub fn create_ride(&self, offer: &RideOffer) -> Result<RideId, XarError> {
        let (mut guard, _hold) = self.write();
        guard.create_ride(offer)
    }

    /// Exclusive booking.
    pub fn book(&self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        let (mut guard, _hold) = self.write();
        guard.book(m)
    }

    /// Exclusive tracking advance for one ride.
    pub fn track_ride(&self, id: RideId, now_s: f64) -> Result<RideStatus, XarError> {
        let (mut guard, _hold) = self.write();
        guard.track_ride(id, now_s)
    }

    /// Exclusive tracking sweep over all rides.
    pub fn track_all(&self, now_s: f64) -> usize {
        let (mut guard, _hold) = self.write();
        guard.track_all(now_s)
    }

    /// Run a read-only closure against the engine (shared lock) — for
    /// stats, memory accounting, and inspection.
    pub fn with_read<R>(&self, f: impl FnOnce(&XarEngine) -> R) -> R {
        let (guard, _hold) = self.read();
        f(&guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::sync::Arc;
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};

    fn shared() -> (SharedXarEngine, Arc<xar_roadnet::RoadGraph>) {
        let graph = Arc::new(CityConfig::test_city(31).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 400, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ));
        (SharedXarEngine::new(XarEngine::new(region, EngineConfig::default())), graph)
    }

    #[test]
    fn concurrent_searches_while_writing() {
        let (eng, graph) = shared();
        let n = graph.node_count() as u32;
        // Seed a few rides.
        for i in 0..10u32 {
            let _ = eng.create_ride(&RideOffer::simple(
                graph.point(NodeId((i * 37) % n)),
                graph.point(NodeId((i * 61 + n / 2) % n)),
                8.0 * 3600.0 + f64::from(i) * 60.0,
                3,
                3_000.0,
            ));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        // 8 reader threads hammer search while the main thread writes.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let eng = eng.clone();
                let req = req.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = eng.search(&req, usize::MAX);
                    }
                });
            }
            for i in 10..30u32 {
                let _ = eng.create_ride(&RideOffer::simple(
                    graph.point(NodeId((i * 37) % n)),
                    graph.point(NodeId((i * 61 + n / 2) % n)),
                    8.0 * 3600.0 + f64::from(i) * 60.0,
                    3,
                    3_000.0,
                ));
                eng.track_all(8.0 * 3600.0 + f64::from(i) * 30.0);
            }
        });
        // Engine is intact: counters coherent, rides present.
        eng.with_read(|e| {
            let (searches, creates, _, _, _) = e.stats().snapshot();
            assert!(searches >= 1_600);
            assert!(creates >= 20);
            assert!(e.ride_count() > 0);
        });
        // Lock hold times were recorded for both sides.
        eng.with_read(|e| {
            let reg = e.metrics().registry();
            assert!(reg.histogram("lock.read_hold_ns").count() >= 1_600);
            assert!(reg.histogram("lock.write_hold_ns").count() >= 40);
        });
    }

    #[test]
    fn clone_shares_state() {
        let (eng, graph) = shared();
        let n = graph.node_count() as u32;
        let other = eng.clone();
        let _ = eng.create_ride(&RideOffer::simple(
            graph.point(NodeId(0)),
            graph.point(NodeId(n - 1)),
            8.0 * 3600.0,
            3,
            2_000.0,
        ));
        other.with_read(|e| assert_eq!(e.ride_count(), 1));
    }
}
