//! Thread-safe engine wrapper for high look-to-book deployments.
//!
//! XAR's defining workload is many cheap searches per expensive write
//! (§I: "multi-modal trip planners have a high look-to-book ratio").
//! [`SharedXarEngine`] is the single-lock interface from PR-1, kept as
//! a **thin facade over a one-shard [`ShardedXarEngine`]**: searches
//! run lock-free against the published search snapshot, create / book /
//! track serialize on the write lock, and every caller compiled against
//! the PR-1 API keeps working unchanged. Deployments that want
//! multi-core write scaling construct [`ShardedXarEngine`] directly
//! with more shards; the semantics of each operation are identical.
//!
//! Every write records its lock **hold time** into the engine's metric
//! registry (`lock.write_hold_ns`, plus the per-shard labeled series);
//! `lock.read_hold_ns` covers only maintenance reads (tracking probes,
//! audits) now that searches take no locks — see
//! [`crate::snapshot`] for the read-path protocol.

use crate::booking::BookingOutcome;
use crate::engine::XarEngine;
use crate::error::XarError;
use crate::request::RideRequest;
use crate::ride::{RideId, RideOffer, RideStatus};
use crate::search::RideMatch;
use crate::sharded::ShardedXarEngine;

/// A clonable, thread-safe handle to an [`XarEngine`].
#[derive(Clone)]
pub struct SharedXarEngine {
    inner: ShardedXarEngine,
}

impl SharedXarEngine {
    /// Wrap an engine (rides, ids and metrics preserved).
    pub fn new(engine: XarEngine) -> Self {
        Self { inner: ShardedXarEngine::from_engine(engine, 1) }
    }

    /// The sharded engine backing this facade.
    pub fn sharded(&self) -> &ShardedXarEngine {
        &self.inner
    }

    /// Concurrent, lock-free search (reads the published snapshot).
    pub fn search(&self, req: &RideRequest, limit: usize) -> Result<Vec<RideMatch>, XarError> {
        self.inner.search(req, limit)
    }

    /// [`SharedXarEngine::search`] into a caller-owned buffer — the
    /// zero-allocation hot path (see
    /// [`ShardedXarEngine::search_into`]).
    pub fn search_into(
        &self,
        req: &RideRequest,
        limit: usize,
        out: &mut Vec<RideMatch>,
    ) -> Result<(), XarError> {
        self.inner.search_into(req, limit, out)
    }

    /// Exclusive ride creation.
    pub fn create_ride(&self, offer: &RideOffer) -> Result<RideId, XarError> {
        self.inner.create_ride(offer)
    }

    /// Exclusive booking.
    pub fn book(&self, m: &RideMatch) -> Result<BookingOutcome, XarError> {
        self.inner.book(m)
    }

    /// Exclusive tracking advance for one ride.
    pub fn track_ride(&self, id: RideId, now_s: f64) -> Result<RideStatus, XarError> {
        self.inner.track_ride(id, now_s)
    }

    /// Exclusive tracking sweep over all rides. When no rides are live
    /// the sweep exits after a read-locked probe without ever taking
    /// the write lock, so an idle deployment's periodic tracker never
    /// stalls its searches.
    pub fn track_all(&self, now_s: f64) -> usize {
        self.inner.track_all(now_s)
    }

    /// Run a read-only closure against the engine (shared lock) — for
    /// stats, memory accounting, and inspection.
    pub fn with_read<R>(&self, f: impl FnOnce(&XarEngine) -> R) -> R {
        self.inner.with_shard_read(0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::sync::Arc;
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};

    fn shared() -> (SharedXarEngine, Arc<xar_roadnet::RoadGraph>) {
        let graph = Arc::new(CityConfig::test_city(31).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 400, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ));
        (SharedXarEngine::new(XarEngine::new(region, EngineConfig::default())), graph)
    }

    #[test]
    fn concurrent_searches_while_writing() {
        let (eng, graph) = shared();
        let n = graph.node_count() as u32;
        // Seed a few rides.
        for i in 0..10u32 {
            let _ = eng.create_ride(&RideOffer::simple(
                graph.point(NodeId((i * 37) % n)),
                graph.point(NodeId((i * 61 + n / 2) % n)),
                8.0 * 3600.0 + f64::from(i) * 60.0,
                3,
                3_000.0,
            ));
        }
        let req = RideRequest {
            source: graph.point(NodeId(n / 2)),
            destination: graph.point(NodeId(n - 1)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        // 8 reader threads hammer search while the main thread writes.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let eng = eng.clone();
                let req = req.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = eng.search(&req, usize::MAX);
                    }
                });
            }
            for i in 10..30u32 {
                let _ = eng.create_ride(&RideOffer::simple(
                    graph.point(NodeId((i * 37) % n)),
                    graph.point(NodeId((i * 61 + n / 2) % n)),
                    8.0 * 3600.0 + f64::from(i) * 60.0,
                    3,
                    3_000.0,
                ));
                eng.track_all(8.0 * 3600.0 + f64::from(i) * 30.0);
            }
        });
        // Engine is intact: counters coherent, rides present.
        eng.with_read(|e| {
            let s = e.stats().snapshot();
            assert!(s.searches >= 1_600);
            assert!(s.creates >= 20);
            assert!(e.ride_count() > 0);
        });
        // Writes recorded their lock hold times; the 1 600 searches did
        // NOT — the read path is lock-free, so only maintenance reads
        // (the per-sweep track_all emptiness probes) touch the read
        // histogram.
        eng.with_read(|e| {
            let reg = e.metrics().registry();
            assert!(reg.histogram("lock.write_hold_ns").count() >= 40);
            let reads = reg.histogram("lock.read_hold_ns").count();
            assert!(
                reads < 100,
                "search must be lock-free; saw {reads} read-lock holds for 1600+ searches"
            );
        });
    }

    #[test]
    fn clone_shares_state() {
        let (eng, graph) = shared();
        let n = graph.node_count() as u32;
        let other = eng.clone();
        let _ = eng.create_ride(&RideOffer::simple(
            graph.point(NodeId(0)),
            graph.point(NodeId(n - 1)),
            8.0 * 3600.0,
            3,
            2_000.0,
        ));
        other.with_read(|e| assert_eq!(e.ride_count(), 1));
    }

    #[test]
    fn idle_track_all_takes_no_write_lock() {
        let (eng, _graph) = shared();
        let reg = eng.with_read(|e| e.metrics().registry());
        let before = reg.histogram("lock.write_hold_ns").count();
        assert_eq!(eng.track_all(9.0 * 3600.0), 0);
        assert_eq!(
            reg.histogram("lock.write_hold_ns").count(),
            before,
            "empty sweep must early-exit on the read probe"
        );
    }
}
