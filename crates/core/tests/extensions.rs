//! Tests for the §VI/§VII extension features: driver-specified
//! alternate routes and social-network match ranking.

use std::sync::Arc;

use xar_core::{EngineConfig, RideOffer, RideRequest, RiderId, SocialGraph, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

fn region() -> Arc<RegionIndex> {
    let graph = Arc::new(CityConfig::manhattan(25, 25, 555).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
    Arc::new(RegionIndex::build(
        graph,
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ))
}

fn corner_points(g: &RoadGraph) -> (xar_geo::GeoPoint, xar_geo::GeoPoint) {
    let n = g.node_count() as u32;
    (g.point(NodeId(0)), g.point(NodeId(n - 1)))
}

#[test]
fn alternate_route_passes_declared_points() {
    let reg = region();
    let g = Arc::clone(reg.graph());
    let mut eng = XarEngine::new(reg, EngineConfig::default());
    let (a, b) = corner_points(&g);
    let n = g.node_count() as u32;
    // Force the route through a point well off the direct diagonal:
    // the NW corner area.
    let detour_pt = g.point(NodeId(n - 25)); // near the far edge
    let offer = RideOffer {
        source: a,
        destination: b,
        departure_s: 8.0 * 3600.0,
        seats: 3,
        detour_limit_m: 2_000.0,
        driver: None,
        via: vec![detour_pt],
    };
    let id = eng.create_ride(&offer).unwrap();
    let ride = eng.ride(id).unwrap();
    // Three via-points: source, declared point, destination.
    assert_eq!(ride.via_points.len(), 3);
    let via_node = ride.via_points[1].node;
    assert!(ride.route.nodes().contains(&via_node));
    // The alternate route is at least as long as the direct one.
    let direct = {
        let mut e2 = XarEngine::new(Arc::clone(eng.region()), EngineConfig::default());
        let direct_id = e2
            .create_ride(&RideOffer::simple(a, b, 8.0 * 3600.0, 3, 2_000.0))
            .unwrap();
        e2.ride(direct_id).unwrap().route.dist_m()
    };
    assert!(ride.route.dist_m() >= direct - 1.0);
    // Two legs => two shortest-path computations at creation.
    let sps = eng.stats().snapshot().shortest_paths;
    assert_eq!(sps, 2);
}

#[test]
fn alternate_route_creates_multiple_segments() {
    let reg = region();
    let g = Arc::clone(reg.graph());
    let mut eng = XarEngine::new(reg, EngineConfig::default());
    let (a, b) = corner_points(&g);
    let n = g.node_count() as u32;
    let offer = RideOffer {
        source: a,
        destination: b,
        departure_s: 8.0 * 3600.0,
        seats: 3,
        detour_limit_m: 2_000.0,
        driver: None,
        via: vec![g.point(NodeId(n / 3)), g.point(NodeId(2 * n / 3))],
    };
    let id = eng.create_ride(&offer).unwrap();
    let ride = eng.ride(id).unwrap();
    assert_eq!(ride.via_points.len(), 4, "source + 2 via + destination");
    for w in ride.via_points.windows(2) {
        assert!(w[0].route_idx <= w[1].route_idx);
    }
    // Pass clusters must carry valid segment ids (< 3 segments).
    for p in &ride.pass_clusters {
        assert!(p.seg < 3, "segment {} out of range", p.seg);
    }
}

#[test]
fn social_ranking_prefers_friends() {
    let reg = region();
    let g = Arc::clone(reg.graph());
    let mut eng = XarEngine::new(reg, EngineConfig::default());
    let (a, b) = corner_points(&g);
    let n = g.node_count() as u32;

    // Three near-identical rides with different drivers.
    let mut make = |driver: u64, shift_s: f64| {
        let mut offer = RideOffer::simple(a, b, 8.0 * 3600.0 + shift_s, 3, 3_000.0);
        offer.driver = Some(RiderId(driver));
        eng.create_ride(&offer).unwrap()
    };
    let stranger_ride = make(100, 0.0);
    let friend_ride = make(200, 30.0);
    let fof_ride = make(300, 60.0);

    let requester = RiderId(1);
    let mut social = SocialGraph::new();
    social.add_friendship(requester, RiderId(200)); // direct friend
    social.add_friendship(RiderId(200), RiderId(300)); // friend-of-friend

    let req = RideRequest {
        source: g.point(NodeId(n / 2)),
        destination: b,
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.0 * 3600.0,
        walk_limit_m: 800.0,
    };
    let mut matches = eng.search(&req, usize::MAX).unwrap();
    assert!(matches.len() >= 3, "all three rides should match, got {}", matches.len());
    eng.rank_by_social(&mut matches, &social, requester);

    let pos = |ride| matches.iter().position(|m| m.ride == ride).unwrap();
    assert!(pos(friend_ride) < pos(fof_ride), "friend before friend-of-friend");
    assert!(pos(fof_ride) < pos(stranger_ride), "friend-of-friend before stranger");
}

#[test]
fn social_ranking_without_edges_preserves_walk_order() {
    let reg = region();
    let g = Arc::clone(reg.graph());
    let mut eng = XarEngine::new(reg, EngineConfig::default());
    let (a, b) = corner_points(&g);
    let n = g.node_count() as u32;
    for i in 0..4u64 {
        let mut offer = RideOffer::simple(a, b, 8.0 * 3600.0 + i as f64 * 45.0, 3, 3_000.0);
        offer.driver = Some(RiderId(i));
        eng.create_ride(&offer).unwrap();
    }
    let req = RideRequest {
        source: g.point(NodeId(n / 2)),
        destination: b,
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.0 * 3600.0,
        walk_limit_m: 800.0,
    };
    let matches = eng.search(&req, usize::MAX).unwrap();
    let mut ranked = matches.clone();
    eng.rank_by_social(&mut ranked, &SocialGraph::new(), RiderId(42));
    assert_eq!(matches, ranked, "empty social graph must not reorder");
}

#[test]
fn historical_speeds_delay_rush_hour_etas() {
    use xar_roadnet::HistoricalSpeeds;
    let reg = region();
    let g = Arc::clone(reg.graph());
    let (a, b) = corner_points(&g);
    let cfg = EngineConfig { historical: Some(HistoricalSpeeds::weekday_urban()), ..Default::default() };

    // Same route at 3 am (free flow) and 8 am (rush hour).
    let mut eng = XarEngine::new(Arc::clone(&reg), cfg);
    let night = eng.create_ride(&RideOffer::simple(a, b, 3.0 * 3600.0, 3, 3_000.0)).unwrap();
    let rush = eng.create_ride(&RideOffer::simple(a, b, 8.0 * 3600.0, 3, 3_000.0)).unwrap();
    let night_dur = eng.ride(night).unwrap().arrival_s() - 3.0 * 3600.0;
    let rush_dur = eng.ride(rush).unwrap().arrival_s() - 8.0 * 3600.0;
    assert!(
        rush_dur > night_dur * 1.5,
        "rush-hour trip {rush_dur:.0}s not slower than night trip {night_dur:.0}s"
    );

    // Tracking is consistent with the scaled clock: at departure +
    // half the scaled duration the ride is mid-route, not finished.
    let mid = 8.0 * 3600.0 + rush_dur / 2.0;
    let status = eng.track_ride(rush, mid).unwrap();
    assert_eq!(status, xar_core::RideStatus::Active);
    let ride = eng.ride(rush).unwrap();
    assert!(ride.progress_idx > 0);
    assert!(ride.progress_idx < ride.route.len() - 1);
}

#[test]
fn persisted_region_drives_identical_search() {
    let reg = region();
    let g = Arc::clone(reg.graph());
    let mut buf = Vec::new();
    reg.write_to(&mut buf).unwrap();
    let loaded = Arc::new(
        xar_discretize::RegionIndex::read_from(&mut buf.as_slice()).unwrap(),
    );

    let (a, b) = corner_points(&g);
    let offer = RideOffer::simple(a, b, 8.0 * 3600.0, 3, 3_000.0);
    let req = RideRequest {
        source: g.point(NodeId(g.node_count() as u32 / 2)),
        destination: b,
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.0 * 3600.0,
        walk_limit_m: 800.0,
    };

    let mut eng1 = XarEngine::new(reg, EngineConfig::default());
    eng1.create_ride(&offer).unwrap();
    let m1 = eng1.search(&req, usize::MAX).unwrap();

    let mut eng2 = XarEngine::new(loaded, EngineConfig::default());
    eng2.create_ride(&offer).unwrap();
    let m2 = eng2.search(&req, usize::MAX).unwrap();

    assert_eq!(m1, m2, "search results diverge on the persisted region");
}
