//! Linearizability of the snapshot read path.
//!
//! The sharded engine answers searches from published, immutable
//! [`xar_core::ShardSnapshot`]s instead of locking shard state. The
//! property that makes that correct is *linearizable equivalence*: for
//! any interleaved schedule of create / search / book / track
//! operations, every search observes exactly the state some serial
//! execution of the preceding writes would produce — never a torn or
//! stale-beyond-last-publish view. Because writers republish before
//! releasing the shard write lock, a single-threaded schedule must make
//! the snapshot engine agree with the plain serial [`XarEngine`]
//! *operation by operation* (modulo ride-id assignment, which the
//! sharded engine stripes — results are compared by creation order).
//!
//! `tests/sharded_hammer` drives the same comparison with a fixed
//! create-then-search phase structure; this test samples *arbitrary*
//! orderings, so publishes land between every kind of neighbouring
//! operation (search right after create, book right after track, two
//! books back to back, …).

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{EngineConfig, RideMatch, RideOffer, RideRequest, ShardedXarEngine, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 1717).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn graph() -> &'static Arc<RoadGraph> {
    region().graph()
}

fn offer(i: u32) -> RideOffer {
    let g = graph();
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i % 40) * 45.0,
        2,
        3_500.0,
    )
}

fn request(i: u32) -> RideRequest {
    let g = graph();
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// Strip engine-assigned ride ids (the id sequences differ by design)
/// so result sets compare structurally by offer creation order.
fn anonymize(ms: &[RideMatch], ride_ord: impl Fn(u64) -> usize) -> Vec<(usize, String)> {
    ms.iter()
        .map(|m| {
            (
                ride_ord(m.ride.0),
                format!(
                    "p{}.{} d{}.{} w{:.3}/{:.3} t{:.1}/{:.1} det{:.3} s{}/{}",
                    m.pickup_cluster.0,
                    m.pickup_landmark.0,
                    m.dropoff_cluster.0,
                    m.dropoff_landmark.0,
                    m.walk_pickup_m,
                    m.walk_dropoff_m,
                    m.eta_pickup_s,
                    m.eta_dropoff_s,
                    m.detour_est_m,
                    m.pickup_seg,
                    m.dropoff_seg
                ),
            )
        })
        .collect()
}

/// One step of an interleaved schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Create the offer derived from this seed in both engines.
    Create(u32),
    /// Search both engines and require identical match sets.
    Search(u32),
    /// Search both, then book the serial engine's best match in both.
    BookBest(u32),
    /// Advance both engines' clocks to this many minutes.
    Track(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..10_000).prop_map(Op::Create),
        4 => (0u32..10_000).prop_map(Op::Search),
        2 => (0u32..10_000).prop_map(Op::BookBest),
        1 => (480u16..660).prop_map(Op::Track),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn interleaved_schedules_match_the_serial_engine(
        ops in proptest::collection::vec(op_strategy(), 12..60),
    ) {
        let mut serial = XarEngine::new(Arc::clone(region()), EngineConfig::default());
        let sharded = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
        // Creation-order maps: engine id → offer ordinal.
        let mut serial_ids: HashMap<u64, usize> = HashMap::new();
        let mut sharded_ids: HashMap<u64, usize> = HashMap::new();
        let mut ord = 0usize;

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Create(seed) => {
                    let o = offer(*seed);
                    let a = serial.create_ride(&o);
                    let b = sharded.create_ride(&o);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "create divergence at step {}", step);
                    if let (Ok(a), Ok(b)) = (a, b) {
                        serial_ids.insert(a.0, ord);
                        sharded_ids.insert(b.0, ord);
                    }
                    ord += 1;
                }
                Op::Search(seed) => {
                    let req = request(*seed);
                    let a = serial.search(&req, usize::MAX);
                    let b = sharded.search(&req, usize::MAX);
                    prop_assert_eq!(a.is_err(), b.is_err(), "search errs at step {}", step);
                    let (Ok(a), Ok(b)) = (a, b) else { continue };
                    let mut an = anonymize(&a, |id| serial_ids[&id]);
                    let mut bn = anonymize(&b, |id| sharded_ids[&id]);
                    an.sort();
                    bn.sort();
                    prop_assert_eq!(an, bn, "match sets diverge at step {}", step);
                }
                Op::BookBest(seed) => {
                    let req = request(*seed);
                    let (Ok(a), Ok(b)) =
                        (serial.search(&req, usize::MAX), sharded.search(&req, usize::MAX))
                    else {
                        continue;
                    };
                    let Some(ma) = a.first() else { continue };
                    let want = serial_ids[&ma.ride.0];
                    let mb = b.iter().find(|m| sharded_ids[&m.ride.0] == want);
                    prop_assert!(
                        mb.is_some(),
                        "serial best ride missing from snapshot results at step {}",
                        step
                    );
                    let ra = serial.book(ma);
                    let rb = sharded.book(mb.unwrap());
                    prop_assert_eq!(ra.is_ok(), rb.is_ok(), "book divergence at step {}", step);
                    if let (Ok(ra), Ok(rb)) = (ra, rb) {
                        prop_assert!((ra.actual_detour_m - rb.actual_detour_m).abs() < 1e-6);
                        prop_assert!((ra.walk_total_m - rb.walk_total_m).abs() < 1e-6);
                    }
                }
                Op::Track(minutes) => {
                    let now = f64::from(*minutes) * 60.0;
                    prop_assert_eq!(
                        serial.track_all(now),
                        sharded.track_all(now),
                        "retirement divergence at step {}",
                        step
                    );
                }
            }
        }
        prop_assert_eq!(serial.ride_count(), sharded.ride_count());
    }
}
