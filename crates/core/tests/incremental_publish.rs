//! Incremental snapshot publication ≡ full rebuild.
//!
//! The write path patches published [`xar_core::ShardSnapshot`]s:
//! `publish_shard` rebuilds only the cluster segments the write dirtied
//! and `Arc`-shares the rest (DESIGN.md §5f). The property that makes
//! that an *optimization* rather than a semantic change: for any
//! interleaved schedule of create / search / book / track operations,
//! an engine publishing incrementally returns **identical** search
//! results to a twin engine forced down the full-rebuild path on every
//! publish ([`xar_core::ShardedXarEngine::set_full_publish`]). Both
//! twins shard identically, so even ride ids agree and result lists
//! compare verbatim.
//!
//! The expiry half of the story (ROADMAP item 5's memory bound) is
//! pinned by `heap_stays_bounded_under_expiry_churn`: rides retired by
//! tracking are compacted out of the snapshots on publish, so a long
//! run of create → book → expire cycles holds `heap_bytes()` flat
//! instead of accreting a day's worth of dead rides.

use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{EngineConfig, RideMatch, RideOffer, RideRequest, ShardedXarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 2626).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn graph() -> &'static Arc<RoadGraph> {
    region().graph()
}

/// Offers use a *small* detour budget so each write dirties a handful
/// of clusters — keeping publishes on the incremental path (a generous
/// budget can dirty more than half the region, where `publish_shard`'s
/// heuristic rightly prefers a full rebuild).
fn offer(i: u32, depart_s: f64) -> RideOffer {
    let g = graph();
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        depart_s,
        3,
        700.0,
    )
}

fn request(i: u32) -> RideRequest {
    let g = graph();
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// Render a match byte-comparably. Twin engines shard identically, so
/// ride ids line up and belong in the comparison.
fn render(ms: &[RideMatch]) -> Vec<String> {
    ms.iter()
        .map(|m| {
            format!(
                "r{} p{}.{} d{}.{} w{:.6}/{:.6} t{:.6}/{:.6} det{:.6} s{}/{}",
                m.ride.0,
                m.pickup_cluster.0,
                m.pickup_landmark.0,
                m.dropoff_cluster.0,
                m.dropoff_landmark.0,
                m.walk_pickup_m,
                m.walk_dropoff_m,
                m.eta_pickup_s,
                m.eta_dropoff_s,
                m.detour_est_m,
                m.pickup_seg,
                m.dropoff_seg
            )
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    Create(u32),
    Search(u32),
    BookBest(u32),
    Track(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..10_000).prop_map(Op::Create),
        3 => (0u32..10_000).prop_map(Op::Search),
        2 => (0u32..10_000).prop_map(Op::BookBest),
        1 => (480u16..660).prop_map(Op::Track),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn incremental_equals_full_rebuild_on_any_schedule(
        ops in proptest::collection::vec(op_strategy(), 12..50),
    ) {
        let inc = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
        let full = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
        full.set_full_publish(true);

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Create(seed) => {
                    let depart = 8.0 * 3600.0 + f64::from(seed % 40) * 45.0;
                    let o = offer(*seed, depart);
                    let a = inc.create_ride(&o);
                    let b = full.create_ride(&o);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "create divergence at step {}", step);
                    if let (Ok(a), Ok(b)) = (a, b) {
                        prop_assert_eq!(a, b, "twin engines must assign identical ids");
                    }
                }
                Op::Search(seed) => {
                    let req = request(*seed);
                    let a = inc.search(&req, usize::MAX);
                    let b = full.search(&req, usize::MAX);
                    prop_assert_eq!(a.is_err(), b.is_err(), "search errs at step {}", step);
                    let (Ok(a), Ok(b)) = (a, b) else { continue };
                    prop_assert_eq!(
                        render(&a),
                        render(&b),
                        "patched snapshot diverged from full rebuild at step {}",
                        step
                    );
                }
                Op::BookBest(seed) => {
                    let req = request(*seed);
                    let (Ok(a), Ok(b)) = (inc.search(&req, usize::MAX), full.search(&req, usize::MAX))
                    else { continue };
                    prop_assert_eq!(render(&a), render(&b), "pre-book sets at step {}", step);
                    let Some(ma) = a.first() else { continue };
                    let mb = &b[0];
                    let ra = inc.book(ma);
                    let rb = full.book(mb);
                    prop_assert_eq!(ra.is_ok(), rb.is_ok(), "book divergence at step {}", step);
                    if let (Ok(ra), Ok(rb)) = (ra, rb) {
                        prop_assert!((ra.actual_detour_m - rb.actual_detour_m).abs() < 1e-9);
                    }
                }
                Op::Track(minutes) => {
                    let now = f64::from(*minutes) * 60.0;
                    prop_assert_eq!(
                        inc.track_all(now),
                        full.track_all(now),
                        "expiry divergence at step {}",
                        step
                    );
                }
            }
        }

        // Closing sweep: the patched snapshots byte-agree with fresh
        // full builds of the final state, on both engines, and a last
        // round of searches still matches.
        prop_assert!(inc.snapshots_consistent(), "incremental snapshots drifted from state");
        prop_assert!(full.snapshots_consistent(), "full-rebuild snapshots drifted from state");
        prop_assert_eq!(inc.ride_count(), full.ride_count());
        for seed in [11u32, 222, 3_333, 4_444] {
            let req = request(seed);
            let (Ok(a), Ok(b)) = (inc.search(&req, usize::MAX), full.search(&req, usize::MAX))
            else { continue };
            prop_assert_eq!(render(&a), render(&b), "final sweep diverged for seed {}", seed);
        }
    }
}

/// Deterministic companion to the property above: on the small-budget
/// workload the incremental engine must actually exercise the patching
/// path (the property holds vacuously if the heuristic always falls
/// back to full rebuilds).
#[test]
fn equivalence_run_takes_the_incremental_path() {
    let inc = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    let full = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    full.set_full_publish(true);
    for i in 0..40u32 {
        let depart = 8.0 * 3600.0 + f64::from(i % 40) * 45.0;
        let o = offer(i, depart);
        assert_eq!(inc.create_ride(&o).is_ok(), full.create_ride(&o).is_ok());
    }
    for i in 0..20u32 {
        let req = request(i * 7 + 3);
        let (Ok(a), Ok(b)) = (inc.search(&req, usize::MAX), full.search(&req, usize::MAX))
        else { continue };
        assert_eq!(render(&a), render(&b), "request {i} diverged");
        if let Some(m) = a.first() {
            assert_eq!(inc.book(m).is_ok(), full.book(&b[0]).is_ok());
        }
    }
    let partials = inc.metrics().snapshot_partial_publishes.get();
    assert!(partials > 0, "small-budget writes never took the incremental path");
    assert_eq!(
        full.metrics().snapshot_partial_publishes.get(),
        0,
        "forced-full twin must never patch"
    );
    assert!(inc.snapshots_consistent());
}

/// ROADMAP item 5, memory half: expired rides are retired *and
/// compacted out of the published snapshots*, so a long expiry-churn
/// run holds runtime memory flat. Each cycle creates a batch of rides,
/// books a few, then advances the clock far enough to complete the
/// previous batch; by mid-run the engine reaches a steady state whose
/// `heap_bytes()` later cycles must not exceed.
#[test]
fn heap_stays_bounded_under_expiry_churn() {
    const CYCLES: u32 = 30;
    const BATCH: u32 = 24;
    const WARMUP: u32 = 8;
    let eng = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    let m = eng.metrics();
    let mut high_water = 0usize;
    for cycle in 0..CYCLES {
        let base_s = 8.0 * 3600.0 + f64::from(cycle) * 900.0;
        for i in 0..BATCH {
            let _ = eng.create_ride(&offer(cycle * BATCH + i, base_s + f64::from(i) * 10.0));
        }
        for i in 0..6u32 {
            if let Ok(ms) = eng.search(&request(cycle * 31 + i), 4) {
                if let Some(mm) = ms.first() {
                    let _ = eng.book(mm);
                }
            }
        }
        // Everything departing before this cycle has long arrived:
        // track retires it and the next publish compacts it away.
        eng.track_all(base_s + 900.0 * 2.0);

        let heap = eng.heap_bytes();
        if cycle < WARMUP {
            high_water = high_water.max(heap);
        } else {
            assert!(
                heap <= high_water * 3 / 2,
                "cycle {cycle}: heap {heap} B exceeded 1.5x the warm-up high water \
                 {high_water} B — retired rides are accreting"
            );
        }
        let live = eng.ride_count();
        assert!(
            live <= 3 * BATCH as usize,
            "cycle {cycle}: {live} live rides — expiry is not retiring"
        );
    }
    assert!(
        m.snapshot_compacted_rides.get() > 0,
        "churn run never compacted a retired ride out of a snapshot"
    );
    assert!(eng.snapshots_consistent());
}
