//! Allocation guard for incremental snapshot publication.
//!
//! DESIGN.md §5f's cost claim, made a hard test: publishing after a
//! booking that dirtied `k` cluster segments performs **O(k)**
//! allocations — one short `Vec` clone of the segment pointer table
//! plus the `k` rebuilt segments — not O(clusters) as the full rebuild
//! does. A counting global allocator (same idiom as
//! `tests/snapshot_alloc.rs`; one `#[global_allocator]` per test
//! binary, hence this file) measures the allocation *count* of
//! `book_checked` (splice + publish) under three regimes:
//!
//! 1. incremental publish on a small region,
//! 2. incremental publish on a region with ~4x the clusters,
//! 3. forced full rebuild on both.
//!
//! Incremental counts must stay flat across the region-size jump while
//! the full-rebuild counts climb with it — the contrast that proves
//! the write path now scales with the touched clusters, not the shard.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use xar_core::{EngineConfig, RideOffer, RideRequest, ShardedXarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

thread_local! {
    /// Per-thread allocation count (the libtest harness's main thread
    /// allocates concurrently; a process-global count would be flaky).
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn region(side: usize, seed: u64) -> Arc<RegionIndex> {
    let graph = Arc::new(CityConfig::manhattan(side, side, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: side * side / 2, ..Default::default() });
    Arc::new(RegionIndex::build(
        graph,
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ))
}

/// Small detour budgets keep each write's dirty set to a handful of
/// clusters, so the incremental path is what gets measured.
fn offer(g: &RoadGraph, i: u32) -> RideOffer {
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i % 40) * 45.0,
        4,
        700.0,
    )
}

fn request(g: &RoadGraph, i: u32) -> RideRequest {
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// One shard, `rides` offers: a booking dirties a few clusters of a
/// shard holding *all* the region's entries — the regime where full
/// rebuilds are maximally more expensive than patches.
fn populated(region: &Arc<RegionIndex>, rides: u32) -> ShardedXarEngine {
    let eng = ShardedXarEngine::new(Arc::clone(region), EngineConfig::default(), 1);
    let g = region.graph();
    for i in 0..rides {
        let _ = eng.create_ride(&offer(g, i));
    }
    eng
}

/// Mean allocations of one successful `book_checked` (route splice +
/// snapshot publish). Searches run *outside* the counting window — the
/// read path has its own guard (`tests/snapshot_alloc.rs`).
fn booking_allocs(eng: &ShardedXarEngine, bookings: u32, seed0: u32) -> f64 {
    let mut counted = 0u64;
    let mut done = 0u32;
    let mut seed = seed0;
    while done < bookings {
        seed += 1;
        assert!(seed < seed0 + 40_000, "ran out of bookable matches after {done} bookings");
        let Ok(ms) = eng.search(&request(region_graph(eng), seed), 4) else { continue };
        for m in &ms {
            let before = thread_allocs();
            let res = eng.book_checked(m);
            let delta = thread_allocs() - before;
            if res.is_ok() {
                counted += delta;
                done += 1;
                break;
            }
        }
    }
    counted as f64 / f64::from(bookings)
}

fn region_graph(eng: &ShardedXarEngine) -> &RoadGraph {
    eng.region().graph()
}

#[test]
fn incremental_publish_allocates_o_dirty_not_o_clusters() {
    const BOOKINGS: u32 = 12;
    let small = region(14, 31);
    let large = region(40, 31);
    assert!(
        large.cluster_count() >= small.cluster_count() * 3,
        "fixture lost its contrast: {} vs {} clusters",
        small.cluster_count(),
        large.cluster_count()
    );

    // Population scales with the region so full rebuilds touch a
    // proportional number of non-empty segments.
    let eng_small = populated(&small, 220);
    let eng_large = populated(&large, 1_400);

    // Warm both engines (scratch vectors, hash maps, histograms).
    let _ = booking_allocs(&eng_small, 2, 50_000);
    let _ = booking_allocs(&eng_large, 2, 50_000);

    let inc_small = booking_allocs(&eng_small, BOOKINGS, 0);
    let inc_large = booking_allocs(&eng_large, BOOKINGS, 0);

    eng_small.set_full_publish(true);
    eng_large.set_full_publish(true);
    let full_small = booking_allocs(&eng_small, BOOKINGS, 20_000);
    let full_large = booking_allocs(&eng_large, BOOKINGS, 20_000);

    let ctx = format!(
        "allocs/booking: inc {inc_small:.1}->{inc_large:.1}, full {full_small:.1}->{full_large:.1} \
         ({} -> {} clusters)",
        small.cluster_count(),
        large.cluster_count()
    );
    eprintln!("{ctx}");

    // The patching path is strictly cheaper than a full rebuild where
    // it matters (the big region)...
    assert!(inc_large * 2.0 < full_large, "incremental not cheaper than full: {ctx}");
    // ...its allocation count does not follow the cluster count...
    assert!(inc_large < inc_small * 3.0, "incremental publish scaled with region size: {ctx}");
    // ...while the full rebuild's demonstrably does (the contrast that
    // keeps the first two assertions meaningful).
    assert!(full_large > full_small * 2.0, "full rebuild lost its O(clusters) term: {ctx}");
}
