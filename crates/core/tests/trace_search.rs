//! The paper's headline invariant, asserted from the trace itself:
//! **XAR never computes a shortest path while searching** (§V — search
//! is pure table lookups; shortest paths happen only at ride-creation
//! and booking time).
//!
//! The engine instruments every shortest-path computation with a
//! `shortest_path` span, so the invariant has an observable form: in a
//! trace of a search-only workload, no `search` span tree contains a
//! `shortest_path` child. The same trace shows `create` trees *do*
//! contain them, proving the instrumentation would catch a violation —
//! the assertion is not vacuous.
//!
//! Own integration binary: this test enables the process-global
//! recorder, which must stay disabled for every other test.

use std::sync::Arc;

use xar_core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_obs::chrome::{export_chrome, parse_chrome, SpanNode, Timeline};
use xar_obs::TraceConfig;
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};

/// Count spans named `name` anywhere in the tree.
fn count_named(node: &SpanNode, name: &str) -> usize {
    usize::from(node.name == name)
        + node.children.iter().map(|c| count_named(c, name)).sum::<usize>()
}

#[test]
fn search_trees_contain_no_shortest_path_spans() {
    let graph = Arc::new(CityConfig::test_city(31).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 400, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ));
    let mut eng = XarEngine::new(region, EngineConfig::default());
    let n = graph.node_count() as u32;

    // Keep every trace: the invariant must hold for all of them, not a
    // sample.
    let rec = xar_obs::trace::recorder();
    rec.clear();
    rec.configure(TraceConfig::keep_all());
    rec.set_enabled(true);

    // Phase 1 (traced): create rides. These trees SHOULD contain
    // shortest_path spans — they prove the tracer sees them.
    for i in 0..20u32 {
        let _root = rec.start_root("create_request");
        let _ = eng.create_ride(&RideOffer::simple(
            graph.point(NodeId((i * 37) % n)),
            graph.point(NodeId((i * 61 + n / 2) % n)),
            8.0 * 3600.0 + f64::from(i) * 60.0,
            3,
            3_000.0,
        ));
    }

    // Phase 2 (traced): a search-only workload.
    let sps_before = eng.stats().snapshot().shortest_paths;
    for i in 0..50u32 {
        let _root = rec.start_root("search_request");
        let req = RideRequest {
            source: graph.point(NodeId((i * 13) % n)),
            destination: graph.point(NodeId((i * 29 + n / 3) % n)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
            walk_limit_m: 800.0,
        };
        let _ = eng.search(&req, usize::MAX);
    }
    let after = eng.stats().snapshot();
    let (searches, sps_after) = (after.searches, after.shortest_paths);

    rec.set_enabled(false);
    let json = export_chrome(&rec.snapshot());
    rec.clear();

    // The counter view of the invariant: 50 searches, zero new
    // shortest paths.
    assert!(searches >= 50);
    assert_eq!(sps_before, sps_after, "search advanced the shortest-path counter");

    // The trace view: every search tree is shortest-path-free...
    let parsed = parse_chrome(&json).expect("export must parse");
    let timelines = Timeline::build(&parsed);
    let search_trees: Vec<&Timeline> =
        timelines.iter().filter(|t| t.root.name == "search_request").collect();
    assert_eq!(search_trees.len(), 50, "expected one kept trace per search");
    for t in &search_trees {
        assert!(
            count_named(&t.root, "search") >= 1,
            "search tree lost its engine span"
        );
        assert_eq!(
            count_named(&t.root, "shortest_path"),
            0,
            "shortest_path span inside a search tree (trace {})",
            t.trace
        );
    }

    // ...while create trees do contain them, so the absence above is
    // meaningful.
    let create_sp: usize = timelines
        .iter()
        .filter(|t| t.root.name == "create_request")
        .map(|t| count_named(&t.root, "shortest_path"))
        .sum();
    assert!(create_sp > 0, "create trees show no shortest_path spans — tracer blind?");
}
