//! End-to-end tests of the XAR runtime operations: create → search →
//! book → track, exercised against a synthetic city.

use std::sync::Arc;

use xar_core::{EngineConfig, RideOffer, RideRequest, RideStatus, XarEngine, XarError};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_geo::GeoPoint;
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

/// Shared fixture: a 20x20-block city (~2 km square) discretized with
/// enough clusters for interesting matches.
fn region() -> Arc<RegionIndex> {
    let graph = Arc::new(CityConfig::test_city(77).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
    let cfg = RegionConfig {
        landmark_separation_m: 220.0,
        cluster_goal: ClusterGoal::Delta(150.0),
        assoc_drive_m: 1_200.0,
        max_walk_m: 900.0,
        cluster_distance_bound_m: 6_000.0,
        ..Default::default()
    };
    Arc::new(RegionIndex::build(graph, &pois, cfg))
}

fn engine() -> XarEngine {
    XarEngine::new(region(), EngineConfig::default())
}

/// Points near opposite corners of the city.
fn corners(g: &RoadGraph) -> (GeoPoint, GeoPoint) {
    let n = g.node_count() as u32;
    (g.point(NodeId(0)), g.point(NodeId(n - 1)))
}

fn cross_city_offer(g: &RoadGraph) -> RideOffer {
    let (a, b) = corners(g);
    RideOffer { source: a, destination: b, departure_s: 8.0 * 3600.0, seats: 3, detour_limit_m: 2_500.0 , driver: None, via: Vec::new(),}
}

/// A request starting near the middle of the city going towards the
/// destination corner.
fn mid_to_corner_request(g: &RoadGraph) -> RideRequest {
    let n = g.node_count() as u32;
    let mid = g.point(NodeId(n / 2));
    let (_, b) = corners(g);
    RideRequest {
        source: mid,
        destination: b,
        window_start_s: 8.0 * 3600.0 - 600.0,
        window_end_s: 8.0 * 3600.0 + 1_800.0,
        walk_limit_m: 800.0,
    }
}

#[test]
fn create_populates_index() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let ride = eng.ride(id).unwrap();
    assert!(!ride.pass_clusters.is_empty(), "cross-city ride must pass clusters");
    assert!(!eng.index().is_empty());
    // Every pass-through cluster lists the ride with detour 0.
    for p in &ride.pass_clusters {
        let e = eng.index().get(p.cluster, id).expect("pass cluster entry");
        assert_eq!(e.detour_m, 0.0);
    }
    // Reachable entries respect the detour budget.
    for p in &ride.pass_clusters {
        for &(c, detour, eta) in &p.reachable {
            assert!(detour <= ride.detour_remaining_m() + 1e-9);
            assert!(eta >= p.eta_s);
            let _ = c;
        }
    }
    let s = eng.stats().snapshot();
    let (creates, sps) = (s.creates, s.shortest_paths);
    assert_eq!(creates, 1);
    assert_eq!(sps, 1, "creation computes exactly one shortest path");
}

#[test]
fn create_rejects_bad_offers() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let mut offer = cross_city_offer(&g);
    offer.detour_limit_m = f64::NAN;
    assert!(matches!(eng.create_ride(&offer), Err(XarError::InvalidRequest(_))));
    let mut offer = cross_city_offer(&g);
    offer.departure_s = f64::INFINITY;
    assert!(matches!(eng.create_ride(&offer), Err(XarError::InvalidRequest(_))));
}

#[test]
fn search_finds_created_ride() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let req = mid_to_corner_request(&g);
    let matches = eng.search(&req, usize::MAX).unwrap();
    assert!(!matches.is_empty(), "request along the route must match");
    let m = matches.iter().find(|m| m.ride == id).expect("our ride matches");
    assert!(m.walk_total_m() <= req.walk_limit_m);
    assert!(m.eta_pickup_s < m.eta_dropoff_s);
    assert!(m.eta_pickup_s >= req.window_start_s && m.eta_pickup_s <= req.window_end_s);
    assert!(m.detour_est_m <= eng.ride(id).unwrap().detour_remaining_m());
}

#[test]
fn search_respects_walk_limit() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    eng.create_ride(&cross_city_offer(&g)).unwrap();
    let mut req = mid_to_corner_request(&g);
    req.walk_limit_m = 0.5; // nobody walks half a metre to a landmark
    match eng.search(&req, usize::MAX) {
        Err(XarError::NotServable) => {}
        Ok(ms) => assert!(ms.iter().all(|m| m.walk_total_m() <= 0.5)),
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn search_respects_time_window() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    eng.create_ride(&cross_city_offer(&g)).unwrap();
    let mut req = mid_to_corner_request(&g);
    // Window entirely before the ride departs.
    req.window_start_s = 0.0;
    req.window_end_s = 3_600.0;
    let matches = eng.search(&req, usize::MAX).unwrap();
    assert!(matches.is_empty(), "ride departs at 8am; a 0-1am window cannot match");
}

#[test]
fn search_limit_truncates_sorted_by_walk() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    // Several similar rides.
    for i in 0..6 {
        let mut offer = cross_city_offer(&g);
        offer.departure_s += i as f64 * 60.0;
        eng.create_ride(&offer).unwrap();
    }
    let req = mid_to_corner_request(&g);
    let all = eng.search(&req, usize::MAX).unwrap();
    let one = eng.search(&req, 1).unwrap();
    if !all.is_empty() {
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], all[0]);
        for w in all.windows(2) {
            assert!(w[0].walk_total_m() <= w[1].walk_total_m());
        }
    }
}

#[test]
fn invalid_request_is_rejected() {
    let eng = engine();
    let g = Arc::clone(eng.region().graph());
    let mut req = mid_to_corner_request(&g);
    req.window_end_s = req.window_start_s - 10.0;
    assert!(matches!(eng.search(&req, 5), Err(XarError::InvalidRequest(_))));
}

#[test]
fn booking_updates_ride_and_budget() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let req = mid_to_corner_request(&g);
    let matches = eng.search(&req, usize::MAX).unwrap();
    let m = *matches.iter().find(|m| m.ride == id).expect("match exists");

    let before = eng.ride(id).unwrap().clone();
    let outcome = eng.book(&m).unwrap();
    let after = eng.ride(id).unwrap();

    assert_eq!(after.seats_available, before.seats_available - 1);
    assert_eq!(after.bookings.len(), 1);
    assert!(outcome.shortest_paths <= 4, "at most 4 SPs per booking (§VIII.B)");
    assert!(outcome.actual_detour_m >= 0.0);
    assert!((after.detour_used_m - outcome.actual_detour_m).abs() < 1e-9);
    // The route now passes through the pick-up and drop-off landmarks.
    let pickup_node = eng.region().landmark(m.pickup_landmark).node;
    let dropoff_node = eng.region().landmark(m.dropoff_landmark).node;
    assert!(after.route.nodes().contains(&pickup_node));
    assert!(after.route.nodes().contains(&dropoff_node));
    // Via-points grew by 2 and remain ordered & consistent.
    assert_eq!(after.via_points.len(), before.via_points.len() + 2);
    for w in after.via_points.windows(2) {
        assert!(w[0].route_idx <= w[1].route_idx);
    }
    for v in &after.via_points {
        assert_eq!(after.route.nodes()[v.route_idx], v.node);
    }
    // Quality guarantee: realised detour within estimate + 4ε.
    let eps = eng.region().epsilon_m();
    assert!(
        outcome.actual_detour_m <= outcome.estimated_detour_m + 4.0 * eps + 1e-6,
        "actual {} vs est {} + 4ε {}",
        outcome.actual_detour_m,
        outcome.estimated_detour_m,
        4.0 * eps
    );
}

#[test]
fn booking_consumes_seats_until_full() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let mut offer = cross_city_offer(&g);
    offer.seats = 1;
    offer.detour_limit_m = 6_000.0;
    let id = eng.create_ride(&offer).unwrap();
    let req = mid_to_corner_request(&g);
    let matches = eng.search(&req, usize::MAX).unwrap();
    let m = *matches.iter().find(|m| m.ride == id).expect("match");
    eng.book(&m).unwrap();
    // Ride is now full: stale match must fail, and search must skip it.
    assert!(matches!(eng.book(&m), Err(XarError::NoSeats(_))));
    let again = eng.search(&req, usize::MAX).unwrap();
    assert!(again.iter().all(|x| x.ride != id), "full ride still returned by search");
}

#[test]
fn booking_unknown_ride_fails() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let req = mid_to_corner_request(&g);
    let matches = eng.search(&req, usize::MAX).unwrap();
    let mut m = *matches.iter().find(|m| m.ride == id).expect("match");
    m.ride = xar_core::RideId(999_999);
    assert!(matches!(eng.book(&m), Err(XarError::UnknownRide(_))));
}

#[test]
fn double_booking_two_riders_shares_capacity() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let mut offer = cross_city_offer(&g);
    offer.detour_limit_m = 8_000.0;
    let id = eng.create_ride(&offer).unwrap();
    let req = mid_to_corner_request(&g);
    let m1 = eng.search(&req, usize::MAX).unwrap().into_iter().find(|m| m.ride == id).unwrap();
    eng.book(&m1).unwrap();
    // A second, different request books the same ride after re-search.
    let n = g.node_count() as u32;
    let req2 = RideRequest {
        source: g.point(NodeId(n / 3)),
        destination: g.point(NodeId(n - 1)),
        window_start_s: req.window_start_s,
        window_end_s: req.window_end_s + 1_200.0,
        walk_limit_m: 800.0,
    };
    if let Some(m2) = eng.search(&req2, usize::MAX).unwrap().into_iter().find(|m| m.ride == id) {
        let out = eng.book(&m2).unwrap();
        assert!(out.shortest_paths <= 4);
        let ride = eng.ride(id).unwrap();
        assert_eq!(ride.bookings.len(), 2);
        assert_eq!(ride.seats_available, 1);
        assert_eq!(ride.via_points.len(), 6);
    }
}

#[test]
fn tracking_expires_passed_clusters() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let ride = eng.ride(id).unwrap();
    let first_cluster = ride.pass_clusters.first().unwrap().cluster;
    let depart = ride.departure_s;
    let halfway = depart + ride.route.duration_s() * 0.55;
    let status = eng.track_ride(id, halfway).unwrap();
    assert_eq!(status, RideStatus::Active);
    let ride = eng.ride(id).unwrap();
    assert!(ride.progress_idx > 0);
    // The departure cluster must have been crossed by 55% of a
    // cross-city route; unless it is still reachable as a detour, it no
    // longer lists the ride with detour 0.
    if let Some(e) = eng.index().get(first_cluster, id) {
        assert!(e.detour_m > 0.0, "crossed cluster still listed as pass-through");
    }
    // No stale pass cluster behind the ride's progress.
    for p in &ride.pass_clusters {
        assert!(p.exit_idx >= ride.progress_idx);
    }
}

#[test]
fn tracking_to_completion_retires_ride() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let arrival = eng.ride(id).unwrap().arrival_s();
    let status = eng.track_ride(id, arrival + 60.0).unwrap();
    assert_eq!(status, RideStatus::Completed);
    assert!(eng.ride(id).is_none(), "completed ride still in the table");
    assert_eq!(eng.index().len(), 0, "completed ride left index entries behind");
    // Tracking it again is an error.
    assert!(matches!(eng.track_ride(id, arrival + 120.0), Err(XarError::UnknownRide(_))));
}

#[test]
fn tracking_before_departure_is_a_noop() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let id = eng.create_ride(&cross_city_offer(&g)).unwrap();
    let entries = eng.index().len();
    let status = eng.track_ride(id, 0.0).unwrap();
    assert_eq!(status, RideStatus::Active);
    assert_eq!(eng.index().len(), entries);
    assert_eq!(eng.ride(id).unwrap().progress_idx, 0);
}

#[test]
fn searches_never_compute_shortest_paths() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    eng.create_ride(&cross_city_offer(&g)).unwrap();
    let sps_before = eng.stats().snapshot().shortest_paths;
    let req = mid_to_corner_request(&g);
    for _ in 0..50 {
        let _ = eng.search(&req, usize::MAX).unwrap();
    }
    let after = eng.stats().snapshot();
    let (searches, sps_after) = (after.searches, after.shortest_paths);
    assert_eq!(searches, 50);
    assert_eq!(sps_after, sps_before, "search performed a shortest-path computation");
}

#[test]
fn booked_rider_stays_on_route_after_second_booking() {
    // The via-point machinery must keep earlier riders' pick-up and
    // drop-off nodes on the route through later bookings.
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let mut offer = cross_city_offer(&g);
    offer.detour_limit_m = 10_000.0;
    let id = eng.create_ride(&offer).unwrap();
    let req = mid_to_corner_request(&g);
    let m1 = eng.search(&req, usize::MAX).unwrap().into_iter().find(|m| m.ride == id).unwrap();
    let pickup1 = eng.region().landmark(m1.pickup_landmark).node;
    let dropoff1 = eng.region().landmark(m1.dropoff_landmark).node;
    eng.book(&m1).unwrap();

    let n = g.node_count() as u32;
    let req2 = RideRequest {
        source: g.point(NodeId(n / 4)),
        destination: g.point(NodeId(3 * n / 4)),
        window_start_s: req.window_start_s,
        window_end_s: req.window_end_s + 1_800.0,
        walk_limit_m: 800.0,
    };
    if let Some(m2) = eng.search(&req2, usize::MAX).unwrap().into_iter().find(|m| m.ride == id) {
        eng.book(&m2).unwrap();
        let ride = eng.ride(id).unwrap();
        assert!(ride.route.nodes().contains(&pickup1), "rider 1 pick-up dropped from route");
        assert!(ride.route.nodes().contains(&dropoff1), "rider 1 drop-off dropped from route");
    }
}

#[test]
fn heap_bytes_grow_with_rides() {
    let mut eng = engine();
    let g = Arc::clone(eng.region().graph());
    let empty = eng.heap_bytes();
    for i in 0..10 {
        let mut offer = cross_city_offer(&g);
        offer.departure_s += i as f64 * 120.0;
        eng.create_ride(&offer).unwrap();
    }
    assert!(eng.heap_bytes() > empty);
}
