//! Property-based tests of the runtime unit: search results are always
//! feasible and complete w.r.t. an index oracle, and arbitrary
//! operation sequences preserve the engine invariants.

use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xar_discretize::{ClusterGoal, ClusterId, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

/// One shared region per test binary: building it is the expensive part
/// and it is immutable.
fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 1234).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn graph() -> &'static Arc<RoadGraph> {
    region().graph()
}

/// Random operation in a simulated session.
#[derive(Debug, Clone)]
enum Op {
    Create { src: u32, dst: u32, depart_min: u16, seats: u8, detour_km: u8 },
    SearchAndMaybeBook { src: u32, dst: u32, at_min: u16, walk_m: u16, book: bool },
    Track { at_min: u16 },
}

fn op_strategy(n_nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n_nodes, 0..n_nodes, 400u16..900, 1u8..=3, 1u8..=5).prop_map(
            |(src, dst, depart_min, seats, detour_km)| Op::Create {
                src,
                dst,
                depart_min,
                seats,
                detour_km
            }
        ),
        4 => (0..n_nodes, 0..n_nodes, 400u16..900, 100u16..900, any::<bool>()).prop_map(
            |(src, dst, at_min, walk_m, book)| Op::SearchAndMaybeBook { src, dst, at_min, walk_m, book }
        ),
        1 => (400u16..1000).prop_map(|at_min| Op::Track { at_min }),
    ]
}

/// Check every cross-structure invariant of the engine.
fn assert_invariants(eng: &XarEngine) {
    // Ride-side state.
    for ride in eng.rides() {
        assert!(
            ride.seats_available as usize + ride.bookings.len() <= 255,
            "seat accounting overflow"
        );
        let total: f64 = ride.bookings.iter().map(|b| b.detour_m).sum();
        assert!((total - ride.detour_used_m).abs() < 1e-6, "detour ledger drifted");
        for w in ride.via_points.windows(2) {
            assert!(w[0].route_idx <= w[1].route_idx, "via-points out of order");
        }
        for v in &ride.via_points {
            assert_eq!(ride.route.nodes()[v.route_idx], v.node, "via node off route");
        }
        for p in &ride.pass_clusters {
            assert!(p.route_idx <= p.exit_idx);
            assert!(p.exit_idx < ride.route.len());
        }
    }
    // Index <-> ride-state agreement.
    let mut expected = std::collections::HashSet::new();
    for ride in eng.rides() {
        for p in &ride.pass_clusters {
            expected.insert((p.cluster, ride.id));
            for &(c, _, _) in &p.reachable {
                expected.insert((c, ride.id));
            }
        }
    }
    let mut actual = std::collections::HashSet::new();
    for c in 0..eng.region().cluster_count() as u32 {
        for e in eng.index().entries_of(ClusterId(c)) {
            actual.insert((ClusterId(c), e.ride));
            assert!(e.detour_m >= 0.0);
        }
    }
    assert_eq!(actual, expected, "cluster index diverged from ride state");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every match returned by search is feasible against the engine's
    /// own state (walks, window, ordering, seats, detour budget).
    #[test]
    fn search_results_are_feasible(
        seeds in proptest::collection::vec((0u32..625, 0u32..625, 420u16..540), 1..12),
        q_src in 0u32..625,
        q_dst in 0u32..625,
        walk in 200u16..900,
    ) {
        let g = graph();
        let n = g.node_count() as u32;
        let mut eng = XarEngine::new(Arc::clone(region()), EngineConfig::default());
        for (s, d, m) in seeds {
            let _ = eng.create_ride(&RideOffer {
                source: g.point(NodeId(s % n)),
                destination: g.point(NodeId(d % n)),
                departure_s: f64::from(m) * 60.0,
                seats: 3,
                detour_limit_m: 3_000.0, driver: None, via: Vec::new(),
            });
        }
        let req = RideRequest {
            source: g.point(NodeId(q_src % n)),
            destination: g.point(NodeId(q_dst % n)),
            window_start_s: 420.0 * 60.0,
            window_end_s: 560.0 * 60.0,
            walk_limit_m: f64::from(walk),
        };
        let Ok(matches) = eng.search(&req, usize::MAX) else { return Ok(()) };
        for m in &matches {
            prop_assert!(m.walk_total_m() <= req.walk_limit_m + 1e-9);
            prop_assert!(m.eta_pickup_s >= req.window_start_s - 1e-9);
            prop_assert!(m.eta_pickup_s <= req.window_end_s + 1e-9);
            prop_assert!(m.eta_pickup_s < m.eta_dropoff_s);
            prop_assert!(m.pickup_cluster != m.dropoff_cluster);
            let ride = eng.ride(m.ride).expect("matched ride exists");
            prop_assert!(ride.seats_available > 0);
            prop_assert!(m.detour_est_m <= ride.detour_remaining_m() + 1e-9);
        }
        // Determinism: searching twice yields identical results.
        let again = eng.search(&req, usize::MAX).unwrap();
        prop_assert_eq!(matches, again);
    }

    /// Search is complete w.r.t. the index oracle: any ride with a
    /// window-compatible entry in a walkable source cluster AND a later
    /// entry in a walkable destination cluster that passes the final
    /// checks must be returned.
    #[test]
    fn search_is_complete_against_oracle(
        seeds in proptest::collection::vec((0u32..625, 0u32..625, 430u16..520), 1..10),
        q_src in 0u32..625,
        q_dst in 0u32..625,
    ) {
        let g = graph();
        let n = g.node_count() as u32;
        let reg = region();
        let mut eng = XarEngine::new(Arc::clone(reg), EngineConfig::default());
        for (s, d, m) in seeds {
            let _ = eng.create_ride(&RideOffer {
                source: g.point(NodeId(s % n)),
                destination: g.point(NodeId(d % n)),
                departure_s: f64::from(m) * 60.0,
                seats: 3,
                detour_limit_m: 3_000.0, driver: None, via: Vec::new(),
            });
        }
        let req = RideRequest {
            source: g.point(NodeId(q_src % n)),
            destination: g.point(NodeId(q_dst % n)),
            window_start_s: 430.0 * 60.0,
            window_end_s: 540.0 * 60.0,
            walk_limit_m: 700.0,
        };
        let Ok(matches) = eng.search(&req, usize::MAX) else { return Ok(()) };
        let returned: std::collections::HashSet<_> = matches.iter().map(|m| m.ride).collect();

        // Oracle: brute-force over (src walkable cluster, dst walkable
        // cluster, ride) triples.
        let src_node = reg.snap(&req.source);
        let dst_node = reg.snap(&req.destination);
        for ride in eng.rides() {
            let mut feasible = false;
            'outer: for ws in reg.walkable_within(src_node, req.walk_limit_m) {
                let Some(se) = eng.index().get(ws.cluster, ride.id) else { continue };
                if se.eta_s < req.window_start_s || se.eta_s > req.window_end_s {
                    continue;
                }
                for wd in reg.walkable_within(dst_node, req.walk_limit_m) {
                    if wd.cluster == ws.cluster {
                        continue;
                    }
                    let Some(de) = eng.index().get(wd.cluster, ride.id) else { continue };
                    if de.eta_s <= se.eta_s
                        || de.eta_s < req.window_start_s
                        || de.seg < se.seg
                        || de.pass_route_idx < se.pass_route_idx
                    {
                        continue;
                    }
                    if f64::from(ws.walk_m) + f64::from(wd.walk_m) > req.walk_limit_m {
                        continue;
                    }
                    if se.detour_m + de.detour_m > ride.detour_remaining_m() {
                        continue;
                    }
                    feasible = true;
                    break 'outer;
                }
            }
            if feasible {
                prop_assert!(
                    returned.contains(&ride.id),
                    "oracle says ride {:?} is feasible but search missed it",
                    ride.id
                );
            }
        }
    }

    /// Arbitrary create/search-book/track sequences preserve every
    /// engine invariant.
    #[test]
    fn random_sessions_preserve_invariants(
        ops in proptest::collection::vec(op_strategy(625), 1..30)
    ) {
        let g = graph();
        let n = g.node_count() as u32;
        let mut eng = XarEngine::new(Arc::clone(region()), EngineConfig::default());
        for op in ops {
            match op {
                Op::Create { src, dst, depart_min, seats, detour_km } => {
                    let _ = eng.create_ride(&RideOffer {
                        source: g.point(NodeId(src % n)),
                        destination: g.point(NodeId(dst % n)),
                        departure_s: f64::from(depart_min) * 60.0,
                        seats,
                        detour_limit_m: f64::from(detour_km) * 1_000.0, driver: None, via: Vec::new(),
                    });
                }
                Op::SearchAndMaybeBook { src, dst, at_min, walk_m, book } => {
                    let req = RideRequest {
                        source: g.point(NodeId(src % n)),
                        destination: g.point(NodeId(dst % n)),
                        window_start_s: f64::from(at_min) * 60.0,
                        window_end_s: f64::from(at_min) * 60.0 + 3_600.0,
                        walk_limit_m: f64::from(walk_m),
                    };
                    if let Ok(ms) = eng.search(&req, 3) {
                        if book {
                            for m in &ms {
                                if eng.book(m).is_ok() {
                                    break;
                                }
                            }
                        }
                    }
                }
                Op::Track { at_min } => {
                    eng.track_all(f64::from(at_min) * 60.0);
                }
            }
            assert_invariants(&eng);
        }
    }
}
