//! Concurrency hammer + equivalence properties for the cluster-sharded
//! engine.
//!
//! * **Hammer**: 8 threads of mixed search/book against a
//!   [`ShardedXarEngine`] must never overbook a ride (seats booked ≤
//!   capacity) and must never lose an update (the shared `engine.bookings`
//!   counter equals the number of successful `book` calls observed by
//!   the threads).
//! * **Equivalence**: for arbitrary create/search/book/track sequences,
//!   the sharded engine returns the *same* matches as a serial
//!   [`XarEngine`] fed the identical inputs — the shard split is an
//!   implementation detail, invisible in results (this is what keeps
//!   the paper's approximation guarantee intact, DESIGN.md §5e).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{
    EngineConfig, RideMatch, RideOffer, RideRequest, ShardedXarEngine, XarEngine,
};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

/// One shared region per test binary: building it is the expensive part
/// and it is immutable (and shared lock-free by the sharded engine).
fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 4242).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn graph() -> &'static Arc<RoadGraph> {
    region().graph()
}

fn offer(i: u32, seats: u8) -> RideOffer {
    let g = graph();
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i % 40) * 45.0,
        seats,
        3_500.0,
    )
}

fn request(i: u32) -> RideRequest {
    let g = graph();
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// 8 threads of mixed search/book: no overbooking, no lost updates.
#[test]
fn hammer_never_overbooks_and_loses_no_updates() {
    const THREADS: u32 = 8;
    const SEATS: u8 = 2;
    let eng = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    let mut created = 0u32;
    for i in 0..48 {
        if eng.create_ride(&offer(i, SEATS)).is_ok() {
            created += 1;
        }
    }
    assert!(created >= 20, "seed must produce a populated engine, got {created}");

    // Every thread searches and books aggressively; successful books
    // are tallied on the side so the engine's counter can be audited
    // against ground truth.
    let booked_ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let eng = eng.clone();
            let booked_ok = &booked_ok;
            scope.spawn(move || {
                for j in 0..60u32 {
                    let req = request(t * 1_000 + j);
                    let Ok(matches) = eng.search(&req, 4) else { continue };
                    for m in &matches {
                        if eng.book(m).is_ok() {
                            booked_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // No overbooking: every ride's bookings + free seats equals its
    // offered capacity, and bookings never exceed it.
    let mut rides_seen = 0usize;
    eng.for_each_ride(|r| {
        rides_seen += 1;
        assert!(
            r.bookings.len() <= usize::from(SEATS),
            "ride {:?} overbooked: {} bookings on {SEATS} seats",
            r.id,
            r.bookings.len()
        );
        assert_eq!(
            r.bookings.len() + usize::from(r.seats_available),
            usize::from(SEATS),
            "ride {:?} seat accounting drifted",
            r.id
        );
    });
    assert_eq!(rides_seen, created as usize, "no rides lost or duplicated");

    // No lost updates: the shared counter saw exactly the successful
    // books, and search traffic was all counted.
    let s = eng.stats().snapshot();
    assert_eq!(s.bookings, booked_ok.load(Ordering::Relaxed));
    assert_eq!(s.searches, u64::from(THREADS) * 60);
    assert!(booked_ok.load(Ordering::Relaxed) > 0, "hammer must actually book");
}

/// 8 threads of create/book under concurrent expiry churn: ride
/// accounting must conserve (creates − retirements = live rides) and
/// the published snapshots must never serve an expired ride — once a
/// `track_all(now)` has returned (retirement + republish complete), no
/// later search may produce a match whose pickup ETA lies behind
/// `now`. A shared watermark, advanced only *after* `track_all`
/// returns, turns that into a per-match assertion; the slack absorbs
/// entries inside a not-yet-crossed cluster (bounded by the cluster
/// traversal time, far below the 600 s granularity of the churn).
#[test]
fn booking_storm_with_expiry_churn_conserves_rides() {
    const THREADS: u32 = 8;
    const ROUNDS: u32 = 50;
    const SLACK_S: f64 = 300.0;
    let eng = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    let created = AtomicU64::new(0);
    let retired = AtomicU64::new(0);
    let booked = AtomicU64::new(0);
    // Highest time the engine is *known* tracked to (f64 seconds as
    // bits; times are non-negative so the bit pattern orders like the
    // float).
    let watermark = AtomicU64::new(0f64.to_bits());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let eng = eng.clone();
            let (created, retired, booked, watermark) = (&created, &retired, &booked, &watermark);
            scope.spawn(move || {
                for j in 0..ROUNDS {
                    let seed = t * 10_000 + j;
                    // Departures advance with the rounds AND stay ahead
                    // of the current watermark: a thread lagging behind
                    // the churn must not create a ride that departs in
                    // the already-tracked past — such a ride is
                    // legitimately live, yet its pickup ETAs would sit
                    // behind the floor the assertion below checks. The
                    // +900 s headroom exceeds one churn period (450 s),
                    // so a create racing an in-flight `track_all` still
                    // departs ahead of the watermark that scan installs.
                    let floor_now = f64::from_bits(watermark.load(Ordering::Acquire));
                    let depart = (8.0 * 3600.0 + f64::from(j) * 90.0)
                        .max(floor_now + 900.0)
                        + f64::from(t) * 7.0;
                    let g = graph();
                    let n = g.node_count() as u32;
                    let o = RideOffer::simple(
                        g.point(NodeId((seed * 97) % n)),
                        g.point(NodeId((seed * 181 + n / 2) % n)),
                        depart,
                        2,
                        3_500.0,
                    );
                    if eng.create_ride(&o).is_ok() {
                        created.fetch_add(1, Ordering::Relaxed);
                    }

                    let floor = f64::from_bits(watermark.load(Ordering::Acquire));
                    if let Ok(ms) = eng.search(&request(seed), 4) {
                        for m in &ms {
                            assert!(
                                m.eta_pickup_s >= floor - SLACK_S,
                                "expired ride served: pickup ETA {:.0} s behind the \
                                 {floor:.0} s tracking watermark",
                                m.eta_pickup_s,
                            );
                            if eng.book(m).is_ok() {
                                booked.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }

                    // One thread churns expiry; watermark moves only
                    // after track_all has retired and republished.
                    if t == 0 && j % 5 == 4 {
                        let now = 8.0 * 3600.0 + f64::from(j) * 90.0;
                        retired.fetch_add(eng.track_all(now) as u64, Ordering::Relaxed);
                        watermark.fetch_max(now.to_bits(), Ordering::Release);
                    }
                }
            });
        }
    });

    // Conservation: every created ride is either still live or was
    // retired by the churn — none lost, none duplicated.
    let final_retired = retired.load(Ordering::Relaxed) + eng.track_all(12.0 * 3600.0) as u64;
    let mut live = 0u64;
    eng.for_each_ride(|_| live += 1);
    assert_eq!(
        created.load(Ordering::Relaxed),
        final_retired + live,
        "ride conservation broke: {} created, {} retired, {} live",
        created.load(Ordering::Relaxed),
        final_retired,
        live
    );
    assert_eq!(live as usize, eng.ride_count());
    assert!(booked.load(Ordering::Relaxed) > 0, "storm must actually book");
    // The snapshots survived the storm coherent with shard state.
    assert!(eng.snapshots_consistent(), "published snapshots drifted from shard state");
}

/// Strip engine-assigned ride ids so result sets from engines with
/// different id sequences (serial: 1,2,3…; sharded: striped) compare
/// structurally. `ride_ord` maps each engine's id to the creation-order
/// index of the offer that produced it.
fn anonymize(ms: &[RideMatch], ride_ord: impl Fn(u64) -> usize) -> Vec<(usize, String)> {
    ms.iter()
        .map(|m| {
            (
                ride_ord(m.ride.0),
                format!(
                    "p{}.{} d{}.{} w{:.3}/{:.3} t{:.1}/{:.1} det{:.3} s{}/{}",
                    m.pickup_cluster.0,
                    m.pickup_landmark.0,
                    m.dropoff_cluster.0,
                    m.dropoff_landmark.0,
                    m.walk_pickup_m,
                    m.walk_dropoff_m,
                    m.eta_pickup_s,
                    m.eta_dropoff_s,
                    m.detour_est_m,
                    m.pickup_seg,
                    m.dropoff_seg
                ),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The sharded engine is observationally equivalent to the serial
    /// engine: same offers in, same matches out (sorted sets; the
    /// global least-walk order may interleave ties differently), same
    /// booking effects, same tracking retirements.
    #[test]
    fn sharded_equals_serial(
        offer_seeds in proptest::collection::vec(0u32..10_000, 4..24),
        search_seeds in proptest::collection::vec(0u32..10_000, 4..16),
        track_at_min in 480u16..660,
    ) {
        let mut serial = XarEngine::new(Arc::clone(region()), EngineConfig::default());
        let sharded = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);

        // Same offers into both; remember each engine's id per offer.
        let mut serial_ids = std::collections::HashMap::new();
        let mut sharded_ids = std::collections::HashMap::new();
        for (ord, seed) in offer_seeds.iter().enumerate() {
            let o = offer(*seed, 2);
            let a = serial.create_ride(&o);
            let b = sharded.create_ride(&o);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "create divergence on offer {}", ord);
            if let (Ok(a), Ok(b)) = (a, b) {
                serial_ids.insert(a.0, ord);
                sharded_ids.insert(b.0, ord);
            }
        }
        prop_assert_eq!(serial.ride_count(), sharded.ride_count());

        // Same searches out of both — full result sets, then book the
        // best match in both and require identical outcomes.
        for seed in &search_seeds {
            let req = request(*seed);
            let a = serial.search(&req, usize::MAX);
            let b = sharded.search(&req, usize::MAX);
            prop_assert_eq!(a.is_err(), b.is_err(), "search errs must agree");
            let (Ok(a), Ok(b)) = (a, b) else { continue };
            let mut an = anonymize(&a, |id| serial_ids[&id]);
            let mut bn = anonymize(&b, |id| sharded_ids[&id]);
            an.sort();
            bn.sort();
            prop_assert_eq!(an, bn, "match sets diverge for request {}", seed);
            // Book the serial engine's best match in both engines. The
            // two engines may order exact walk/detour ties differently
            // (the deterministic tiebreak is the ride id, and the id
            // sequences differ by design), so the sharded twin of the
            // ride is located by creation order rather than position.
            if let Some(ma) = a.first() {
                let ord = serial_ids[&ma.ride.0];
                let mb = b.iter().find(|m| sharded_ids[&m.ride.0] == ord);
                prop_assert!(mb.is_some(), "serial best ride missing from sharded results");
                let mb = mb.unwrap();
                let ra = serial.book(ma);
                let rb = sharded.book(mb);
                prop_assert_eq!(ra.is_ok(), rb.is_ok());
                if let (Ok(ra), Ok(rb)) = (ra, rb) {
                    prop_assert!((ra.actual_detour_m - rb.actual_detour_m).abs() < 1e-6);
                    prop_assert!((ra.walk_total_m - rb.walk_total_m).abs() < 1e-6);
                }
            }
        }

        // Tracking retires the same rides at the same time.
        let now = f64::from(track_at_min) * 60.0;
        prop_assert_eq!(serial.track_all(now), sharded.track_all(now));
        prop_assert_eq!(serial.ride_count(), sharded.ride_count());
    }
}
