//! Concurrency hammer + equivalence properties for the cluster-sharded
//! engine.
//!
//! * **Hammer**: 8 threads of mixed search/book against a
//!   [`ShardedXarEngine`] must never overbook a ride (seats booked ≤
//!   capacity) and must never lose an update (the shared `engine.bookings`
//!   counter equals the number of successful `book` calls observed by
//!   the threads).
//! * **Equivalence**: for arbitrary create/search/book/track sequences,
//!   the sharded engine returns the *same* matches as a serial
//!   [`XarEngine`] fed the identical inputs — the shard split is an
//!   implementation detail, invisible in results (this is what keeps
//!   the paper's approximation guarantee intact, DESIGN.md §5e).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{
    EngineConfig, RideMatch, RideOffer, RideRequest, ShardedXarEngine, XarEngine,
};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

/// One shared region per test binary: building it is the expensive part
/// and it is immutable (and shared lock-free by the sharded engine).
fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 4242).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn graph() -> &'static Arc<RoadGraph> {
    region().graph()
}

fn offer(i: u32, seats: u8) -> RideOffer {
    let g = graph();
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i % 40) * 45.0,
        seats,
        3_500.0,
    )
}

fn request(i: u32) -> RideRequest {
    let g = graph();
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// 8 threads of mixed search/book: no overbooking, no lost updates.
#[test]
fn hammer_never_overbooks_and_loses_no_updates() {
    const THREADS: u32 = 8;
    const SEATS: u8 = 2;
    let eng = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);
    let mut created = 0u32;
    for i in 0..48 {
        if eng.create_ride(&offer(i, SEATS)).is_ok() {
            created += 1;
        }
    }
    assert!(created >= 20, "seed must produce a populated engine, got {created}");

    // Every thread searches and books aggressively; successful books
    // are tallied on the side so the engine's counter can be audited
    // against ground truth.
    let booked_ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let eng = eng.clone();
            let booked_ok = &booked_ok;
            scope.spawn(move || {
                for j in 0..60u32 {
                    let req = request(t * 1_000 + j);
                    let Ok(matches) = eng.search(&req, 4) else { continue };
                    for m in &matches {
                        if eng.book(m).is_ok() {
                            booked_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // No overbooking: every ride's bookings + free seats equals its
    // offered capacity, and bookings never exceed it.
    let mut rides_seen = 0usize;
    eng.for_each_ride(|r| {
        rides_seen += 1;
        assert!(
            r.bookings.len() <= usize::from(SEATS),
            "ride {:?} overbooked: {} bookings on {SEATS} seats",
            r.id,
            r.bookings.len()
        );
        assert_eq!(
            r.bookings.len() + usize::from(r.seats_available),
            usize::from(SEATS),
            "ride {:?} seat accounting drifted",
            r.id
        );
    });
    assert_eq!(rides_seen, created as usize, "no rides lost or duplicated");

    // No lost updates: the shared counter saw exactly the successful
    // books, and search traffic was all counted.
    let s = eng.stats().snapshot();
    assert_eq!(s.bookings, booked_ok.load(Ordering::Relaxed));
    assert_eq!(s.searches, u64::from(THREADS) * 60);
    assert!(booked_ok.load(Ordering::Relaxed) > 0, "hammer must actually book");
}

/// Strip engine-assigned ride ids so result sets from engines with
/// different id sequences (serial: 1,2,3…; sharded: striped) compare
/// structurally. `ride_ord` maps each engine's id to the creation-order
/// index of the offer that produced it.
fn anonymize(ms: &[RideMatch], ride_ord: impl Fn(u64) -> usize) -> Vec<(usize, String)> {
    ms.iter()
        .map(|m| {
            (
                ride_ord(m.ride.0),
                format!(
                    "p{}.{} d{}.{} w{:.3}/{:.3} t{:.1}/{:.1} det{:.3} s{}/{}",
                    m.pickup_cluster.0,
                    m.pickup_landmark.0,
                    m.dropoff_cluster.0,
                    m.dropoff_landmark.0,
                    m.walk_pickup_m,
                    m.walk_dropoff_m,
                    m.eta_pickup_s,
                    m.eta_dropoff_s,
                    m.detour_est_m,
                    m.pickup_seg,
                    m.dropoff_seg
                ),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The sharded engine is observationally equivalent to the serial
    /// engine: same offers in, same matches out (sorted sets; the
    /// global least-walk order may interleave ties differently), same
    /// booking effects, same tracking retirements.
    #[test]
    fn sharded_equals_serial(
        offer_seeds in proptest::collection::vec(0u32..10_000, 4..24),
        search_seeds in proptest::collection::vec(0u32..10_000, 4..16),
        track_at_min in 480u16..660,
    ) {
        let mut serial = XarEngine::new(Arc::clone(region()), EngineConfig::default());
        let sharded = ShardedXarEngine::new(Arc::clone(region()), EngineConfig::default(), 4);

        // Same offers into both; remember each engine's id per offer.
        let mut serial_ids = std::collections::HashMap::new();
        let mut sharded_ids = std::collections::HashMap::new();
        for (ord, seed) in offer_seeds.iter().enumerate() {
            let o = offer(*seed, 2);
            let a = serial.create_ride(&o);
            let b = sharded.create_ride(&o);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "create divergence on offer {}", ord);
            if let (Ok(a), Ok(b)) = (a, b) {
                serial_ids.insert(a.0, ord);
                sharded_ids.insert(b.0, ord);
            }
        }
        prop_assert_eq!(serial.ride_count(), sharded.ride_count());

        // Same searches out of both — full result sets, then book the
        // best match in both and require identical outcomes.
        for seed in &search_seeds {
            let req = request(*seed);
            let a = serial.search(&req, usize::MAX);
            let b = sharded.search(&req, usize::MAX);
            prop_assert_eq!(a.is_err(), b.is_err(), "search errs must agree");
            let (Ok(a), Ok(b)) = (a, b) else { continue };
            let mut an = anonymize(&a, |id| serial_ids[&id]);
            let mut bn = anonymize(&b, |id| sharded_ids[&id]);
            an.sort();
            bn.sort();
            prop_assert_eq!(an, bn, "match sets diverge for request {}", seed);
            // Book the serial engine's best match in both engines. The
            // two engines may order exact walk/detour ties differently
            // (the deterministic tiebreak is the ride id, and the id
            // sequences differ by design), so the sharded twin of the
            // ride is located by creation order rather than position.
            if let Some(ma) = a.first() {
                let ord = serial_ids[&ma.ride.0];
                let mb = b.iter().find(|m| sharded_ids[&m.ride.0] == ord);
                prop_assert!(mb.is_some(), "serial best ride missing from sharded results");
                let mb = mb.unwrap();
                let ra = serial.book(ma);
                let rb = sharded.book(mb);
                prop_assert_eq!(ra.is_ok(), rb.is_ok());
                if let (Ok(ra), Ok(rb)) = (ra, rb) {
                    prop_assert!((ra.actual_detour_m - rb.actual_detour_m).abs() < 1e-6);
                    prop_assert!((ra.walk_total_m - rb.walk_total_m).abs() < 1e-6);
                }
            }
        }

        // Tracking retires the same rides at the same time.
        let now = f64::from(track_at_min) * 60.0;
        prop_assert_eq!(serial.track_all(now), sharded.track_all(now));
        prop_assert_eq!(serial.ride_count(), sharded.ride_count());
    }
}
