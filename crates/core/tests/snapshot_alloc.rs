//! Hot-path guards for the lock-free snapshot search.
//!
//! Two contracts from DESIGN.md §5f, made hard tests:
//!
//! 1. **Zero allocations per search.** Once the thread-local scratch,
//!    the caller's result buffer, and the epoch slot are warm,
//!    [`xar_core::ShardedXarEngine::search_into`] must not touch the
//!    allocator at all — the ring walk, the snapshot range queries, the
//!    merge join and the unstable sort all run in place. A counting
//!    global allocator (same idiom as `xar-obs/tests/overhead.rs`)
//!    turns that into an exact `== 0` assertion.
//! 2. **No torn reads under write pressure.** While 8 writer threads
//!    create, book and track, a reader hammers `search_into` and checks
//!    every match against invariants that hold in *every* consistent
//!    snapshot (walk within limit, drop-off strictly after pick-up,
//!    segments ordered, finite non-negative detour). A reader that ever
//!    observed a half-published index would trip one of them.
//!
//! Both phases share one test function so the test thread's warmed
//! state carries over; the counter is per-thread so neither the libtest
//! harness's main thread nor the phase-2 writers pollute the
//! zero-allocation window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xar_core::{EngineConfig, RideMatch, RideOffer, RideRequest, ShardedXarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

thread_local! {
    /// Allocations made by *this* thread. Per-thread because the
    /// libtest harness's main thread allocates concurrently with the
    /// test thread; a process-global count is flaky by construction.
    /// `Cell<u64>` is const-initialised with no destructor, so the
    /// hook never allocates or touches TLS teardown.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// System allocator with a per-thread allocation counter bolted on.
struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn region() -> Arc<RegionIndex> {
    let graph = Arc::new(CityConfig::manhattan(25, 25, 909).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
    Arc::new(RegionIndex::build(
        graph,
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ))
}

fn offer(g: &RoadGraph, i: u32, seats: u8) -> RideOffer {
    let n = g.node_count() as u32;
    RideOffer::simple(
        g.point(NodeId((i * 97) % n)),
        g.point(NodeId((i * 181 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i % 40) * 45.0,
        seats,
        3_500.0,
    )
}

fn request(g: &RoadGraph, i: u32) -> RideRequest {
    let n = g.node_count() as u32;
    RideRequest {
        source: g.point(NodeId((i * 53) % n)),
        destination: g.point(NodeId((i * 131 + n / 3) % n)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 10.0 * 3600.0,
        walk_limit_m: 900.0,
    }
}

/// Invariants every match must satisfy in any consistent snapshot —
/// a torn read (half-published columns, mismatched offsets) would
/// violate at least one.
fn assert_match_sane(m: &RideMatch, req: &RideRequest) {
    assert!(
        m.walk_total_m() <= req.walk_limit_m + 1e-9,
        "walk {} exceeds limit {}",
        m.walk_total_m(),
        req.walk_limit_m
    );
    assert!(m.walk_pickup_m >= 0.0 && m.walk_dropoff_m >= 0.0);
    assert!(
        m.eta_dropoff_s > m.eta_pickup_s,
        "drop-off ETA {} not after pick-up ETA {}",
        m.eta_dropoff_s,
        m.eta_pickup_s
    );
    assert!(
        m.dropoff_seg >= m.pickup_seg,
        "segment order torn: pickup {} dropoff {}",
        m.pickup_seg,
        m.dropoff_seg
    );
    assert!(m.detour_est_m.is_finite() && m.detour_est_m >= 0.0);
    assert!(
        m.pickup_cluster != m.dropoff_cluster || m.pickup_landmark != m.dropoff_landmark,
        "degenerate pickup == dropoff match"
    );
}

#[test]
fn search_path_is_allocation_free_and_tear_free() {
    let region = region();
    let graph = Arc::clone(region.graph());
    let eng = ShardedXarEngine::new(Arc::clone(&region), EngineConfig::default(), 8);
    for i in 0..120u32 {
        let _ = eng.create_ride(&offer(&graph, i, 4));
    }
    assert!(eng.ride_count() > 50, "seed population failed");

    // ---- Phase 1: zero allocations per warmed search ----------------

    // A rotation of servable requests: warming with exactly the set we
    // measure means the scratch vectors and the result buffer reach
    // their high-water marks before the counting window opens.
    let rotation: Vec<RideRequest> =
        (0..64u32).map(|i| request(&graph, i * 7 + 1)).collect();
    let mut out: Vec<RideMatch> = Vec::new();
    let mut warm_hits = 0usize;
    for _ in 0..2 {
        warm_hits = 0;
        for req in &rotation {
            if eng.search_into(req, usize::MAX, &mut out).is_ok() {
                warm_hits += out.len();
            }
        }
    }
    assert!(warm_hits > 0, "rotation found no matches; phase 1 would be vacuous");

    let before = thread_allocs();
    let mut measured_hits = 0usize;
    for round in 0..100u32 {
        for req in &rotation {
            if eng.search_into(req, usize::MAX, &mut out).is_ok() {
                measured_hits += out.len();
            }
            black_box(&out);
        }
        black_box(round);
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "warmed search_into allocated {delta} times over 6 400 searches \
         ({measured_hits} matches returned)"
    );
    assert_eq!(measured_hits, warm_hits * 100, "quiescent engine answered inconsistently");

    // ---- Phase 2: no torn reads under 8 writer threads --------------

    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let eng = &eng;
            let graph = &graph;
            let done = &done;
            scope.spawn(move || {
                for k in 0..40u32 {
                    let seed = 1_000 + t * 1_000 + k;
                    let _ = eng.create_ride(&offer(graph, seed, 2));
                    if k % 3 == 0 {
                        if let Ok(ms) = eng.search(&request(graph, seed), 4) {
                            if let Some(m) = ms.first() {
                                // Booking may lose the race for the last
                                // seat or hit a just-retired ride; both
                                // errors are expected under contention.
                                let _ = eng.book(m);
                            }
                        }
                    }
                    if k % 8 == 7 {
                        eng.track_all(8.0 * 3600.0 + f64::from(t * 60 + k) * 20.0);
                    }
                }
                done.fetch_add(1, Ordering::Release);
            });
        }
        // Reader: hammer the lock-free path until every writer exits,
        // validating each match against the tear detectors.
        let mut spins = 0u64;
        while done.load(Ordering::Acquire) < 8 {
            for req in &rotation {
                if eng.search_into(req, usize::MAX, &mut out).is_ok() {
                    for m in &out {
                        assert_match_sane(m, req);
                    }
                }
            }
            spins += 1;
        }
        assert!(spins > 0);
    });

    // The structure survived the storm: per-shard ride iteration agrees
    // with the aggregate count, and the op counters are coherent.
    let mut iterated = 0usize;
    eng.for_each_ride(|_| iterated += 1);
    assert_eq!(iterated, eng.ride_count());
    let stats = eng.stats().snapshot();
    assert!(stats.creates >= 120);
    assert!(stats.searches > 0);

    // And searching is still lock-free: a pure-search batch leaves the
    // read-lock histogram untouched.
    let reg = eng.registry();
    let read_holds = reg.histogram("lock.read_hold_ns").count();
    for req in &rotation {
        let _ = eng.search_into(req, usize::MAX, &mut out);
    }
    assert_eq!(
        reg.histogram("lock.read_hold_ns").count(),
        read_holds,
        "search acquired a shard read lock"
    );
}
