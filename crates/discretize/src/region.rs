//! The complete pre-processing pipeline: the XAR "pre-processing unit"
//! of Figure 1, producing a [`RegionIndex`].
//!
//! The pipeline runs once per deployment region:
//!
//! 1. grid the region ([`xar_geo::GridSpec`], Definition 1);
//! 2. filter POIs into landmarks at least `f` apart (Definition 2);
//! 3. compute the inter-landmark driving-distance table;
//! 4. cluster the landmarks — GREEDYSEARCH for a target `δ`, or GREEDY
//!    with a fixed cluster count `C` (the Figure 3 sweeps);
//! 5. associate nodes/grids to landmarks within `Δ` and build the
//!    walkable-cluster lists within `W` (§IV);
//! 6. compute the cluster-to-cluster distance table (§VI).
//!
//! The resulting [`RegionIndex`] is everything the runtime unit
//! (`xar-core`) needs; no shortest path is ever computed during a
//! search against it.

use std::sync::Arc;

use xar_geo::{BoundingBox, GeoPoint, GridId, GridSpec};
use xar_roadnet::{NodeId, NodeLocator, Poi, RoadGraph};

use crate::assoc::{NodeAssociation, WalkEntry};
use crate::cluster_distance::ClusterDistances;
use crate::greedy_search::{cluster_with_k, greedy_search, Clustering};
use crate::landmarks::{filter_landmarks, Landmark, LandmarkId};
use crate::metric::LandmarkMetric;

/// Identifier of a cluster; dense `0..k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The cluster index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How the clustering step chooses the number of clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterGoal {
    /// Run GREEDYSEARCH for the given `δ` (metres): minimum clusters
    /// with the Theorem 6 guarantee `diameter ≤ 4δ`.
    Delta(f64),
    /// Run GREEDY with a fixed cluster count (the paper's `C = 500 …
    /// 5000` trade-off sweeps).
    FixedCount(usize),
}

/// Pre-processing parameters. Defaults follow the paper's experimental
/// setup (§X.A.3): 100 m grids, landmark separation pruning, ε = 1 km.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Grid cell side, metres (paper: 100 m).
    pub grid_cell_m: f64,
    /// Minimum landmark separation `f`, metres.
    pub landmark_separation_m: f64,
    /// Clustering goal (δ or fixed count). `Delta(250.0)` gives the
    /// paper's ε = 4δ = 1 km worst-case guarantee.
    pub cluster_goal: ClusterGoal,
    /// Maximum driving distance `Δ` for grid → landmark association.
    pub assoc_drive_m: f64,
    /// System-wide maximum walking distance `W`, metres.
    pub max_walk_m: f64,
    /// Bound for the cluster-distance table; distances beyond it are
    /// stored as unreachable. Should be at least the largest detour
    /// limit plus the largest cluster diameter the system will see.
    pub cluster_distance_bound_m: f64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        Self {
            grid_cell_m: 100.0,
            landmark_separation_m: 200.0,
            cluster_goal: ClusterGoal::Delta(250.0),
            assoc_drive_m: 1_000.0,
            max_walk_m: 1_000.0,
            cluster_distance_bound_m: 8_000.0,
        }
    }
}

/// The frozen pre-processing output: the three-tier discretization plus
/// every derived table the runtime consults.
pub struct RegionIndex {
    pub(crate) graph: Arc<RoadGraph>,
    pub(crate) grid: GridSpec,
    pub(crate) locator: NodeLocator,
    pub(crate) landmarks: Vec<Landmark>,
    pub(crate) cluster_of: Vec<ClusterId>,
    pub(crate) members: Vec<Vec<LandmarkId>>,
    pub(crate) assoc: NodeAssociation,
    pub(crate) cluster_dist: ClusterDistances,
    /// Achieved maximum intra-cluster (symmetrized driving) diameter —
    /// the realised ε of the deployment.
    pub(crate) epsilon_m: f64,
    pub(crate) config: RegionConfig,
}

impl RegionIndex {
    /// Run the full pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or no landmark survives filtering.
    pub fn build(graph: Arc<RoadGraph>, pois: &[Poi], config: RegionConfig) -> Self {
        assert!(graph.node_count() > 0, "empty road graph");
        let bbox = BoundingBox::from_points(graph.node_ids().map(|n| graph.point(n)))
            .expect("non-empty graph")
            .expanded(1e-3);
        let grid = GridSpec::new(bbox, config.grid_cell_m);
        let locator = NodeLocator::new(&graph, (config.grid_cell_m * 4.0).max(200.0));

        let landmarks = filter_landmarks(&graph, pois, config.landmark_separation_m);
        assert!(!landmarks.is_empty(), "no landmarks survived filtering");

        let metric = LandmarkMetric::compute(&graph, &landmarks);
        let clustering: Clustering = match config.cluster_goal {
            ClusterGoal::Delta(delta) => greedy_search(&metric, delta).clustering,
            ClusterGoal::FixedCount(k) => cluster_with_k(&metric, k),
        };
        let k = clustering.k;
        let cluster_of: Vec<ClusterId> =
            clustering.assignment.iter().map(|&a| ClusterId(a as u32)).collect();
        let mut members = vec![Vec::new(); k];
        for (l, &c) in cluster_of.iter().enumerate() {
            members[c.index()].push(LandmarkId(l as u32));
        }
        let epsilon_m = clustering.max_diameter(&metric);

        let assoc = NodeAssociation::build(
            &graph,
            &landmarks,
            &cluster_of,
            config.assoc_drive_m,
            config.max_walk_m,
        );
        let cluster_dist = ClusterDistances::compute(
            &graph,
            &landmarks,
            &cluster_of,
            k,
            config.cluster_distance_bound_m,
        );

        Self { graph, grid, locator, landmarks, cluster_of, members, assoc, cluster_dist, epsilon_m, config }
    }

    /// The road graph the index was built over.
    #[inline]
    pub fn graph(&self) -> &Arc<RoadGraph> {
        &self.graph
    }

    /// The implicit grid.
    #[inline]
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The pre-processing configuration.
    #[inline]
    pub fn config(&self) -> &RegionConfig {
        &self.config
    }

    /// Number of clusters `C`.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.members.len()
    }

    /// Number of landmarks.
    #[inline]
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// The achieved worst-case intra-cluster driving distance ε — the
    /// quantity the Figure 3 trade-off plots sweep.
    #[inline]
    pub fn epsilon_m(&self) -> f64 {
        self.epsilon_m
    }

    /// All landmarks.
    #[inline]
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// The landmark with id `l`.
    #[inline]
    pub fn landmark(&self, l: LandmarkId) -> &Landmark {
        &self.landmarks[l.index()]
    }

    /// The cluster a landmark belongs to.
    #[inline]
    pub fn cluster_of_landmark(&self, l: LandmarkId) -> ClusterId {
        self.cluster_of[l.index()]
    }

    /// The member landmarks of a cluster.
    #[inline]
    pub fn cluster_members(&self, c: ClusterId) -> &[LandmarkId] {
        &self.members[c.index()]
    }

    /// Map a point location to its grid cell (Definition 1's unique
    /// total mapping).
    #[inline]
    pub fn grid_of(&self, p: &GeoPoint) -> GridId {
        self.grid.grid_of(p)
    }

    /// Snap a point location to the road network: nearest way-point to
    /// the centroid of the point's grid cell (grids are identified by
    /// their centroids, §IV).
    pub fn snap(&self, p: &GeoPoint) -> NodeId {
        let centroid = self.grid.centroid(self.grid.grid_of(p));
        self.locator.nearest(&self.graph, &centroid).0
    }

    /// Snap a point directly to the nearest way-point (no grid
    /// quantization) — used where exact endpoints matter (ride offers).
    pub fn snap_exact(&self, p: &GeoPoint) -> NodeId {
        self.locator.nearest(&self.graph, p).0
    }

    /// The landmark associated with a node (within `Δ`), with the
    /// driving distance to it.
    #[inline]
    pub fn landmark_of_node(&self, n: NodeId) -> Option<(LandmarkId, f32)> {
        self.assoc.landmark_of[n.index()]
    }

    /// The cluster a node belongs to via its associated landmark.
    #[inline]
    pub fn cluster_of_node(&self, n: NodeId) -> Option<ClusterId> {
        self.landmark_of_node(n).map(|(l, _)| self.cluster_of_landmark(l))
    }

    /// Walkable clusters of a node, pruned to a per-request walking
    /// limit (sorted by walking distance).
    #[inline]
    pub fn walkable_within(&self, n: NodeId, walk_limit_m: f64) -> &[WalkEntry] {
        self.assoc.walkable_within(n, walk_limit_m)
    }

    /// Directed cluster-to-cluster driving distance (closest landmark
    /// pair); `INFINITY` when unknown/beyond the configured bound.
    #[inline]
    pub fn cluster_distance(&self, a: ClusterId, b: ClusterId) -> f64 {
        self.cluster_dist.dist(a, b)
    }

    /// Heap bytes of the discretization tables (landmarks, associations,
    /// cluster distances) — the static part of Figure 3c's index size.
    pub fn heap_bytes(&self) -> usize {
        self.landmarks.capacity() * std::mem::size_of::<Landmark>()
            + self.cluster_of.capacity() * std::mem::size_of::<ClusterId>()
            + self.members.capacity() * std::mem::size_of::<Vec<LandmarkId>>()
            + self.members.iter().map(|m| m.capacity() * std::mem::size_of::<LandmarkId>()).sum::<usize>()
            + self.assoc.heap_bytes()
            + self.cluster_dist.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn build_region(goal: ClusterGoal) -> RegionIndex {
        let graph = Arc::new(CityConfig::test_city(21).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 500, ..Default::default() });
        let config = RegionConfig {
            landmark_separation_m: 250.0,
            cluster_goal: goal,
            ..Default::default()
        };
        RegionIndex::build(graph, &pois, config)
    }

    #[test]
    fn pipeline_produces_consistent_tiers() {
        let r = build_region(ClusterGoal::Delta(300.0));
        assert!(r.landmark_count() > 5);
        assert!(r.cluster_count() >= 1);
        assert!(r.cluster_count() <= r.landmark_count());
        // Every landmark in exactly one cluster; members lists agree.
        let mut seen = vec![false; r.landmark_count()];
        for c in 0..r.cluster_count() {
            for &l in r.cluster_members(ClusterId(c as u32)) {
                assert!(!seen[l.index()], "landmark {l:?} in two clusters");
                seen[l.index()] = true;
                assert_eq!(r.cluster_of_landmark(l), ClusterId(c as u32));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_respects_theorem6() {
        let delta = 300.0;
        let r = build_region(ClusterGoal::Delta(delta));
        assert!(
            r.epsilon_m() <= 4.0 * delta + 1e-6,
            "epsilon {} exceeds 4δ = {}",
            r.epsilon_m(),
            4.0 * delta
        );
    }

    #[test]
    fn fixed_count_goal_is_respected() {
        let r = build_region(ClusterGoal::FixedCount(4));
        assert_eq!(r.cluster_count(), 4);
    }

    #[test]
    fn snapping_is_total() {
        let r = build_region(ClusterGoal::Delta(300.0));
        let bbox = *r.grid().bbox();
        let p = bbox.center();
        let n = r.snap(&p);
        assert!(n.index() < r.graph().node_count());
        let n2 = r.snap_exact(&p);
        assert!(n2.index() < r.graph().node_count());
    }

    #[test]
    fn landmark_nodes_map_to_own_cluster() {
        let r = build_region(ClusterGoal::Delta(300.0));
        for lm in r.landmarks() {
            let c = r.cluster_of_node(lm.node).expect("landmark node associated");
            // The node association may pick a co-located closer
            // landmark, but at distance 0 it must be a landmark of some
            // cluster; for the landmark's own node its distance is 0 so
            // the cluster is that of a 0-distance landmark.
            let (l, d) = r.landmark_of_node(lm.node).unwrap();
            assert_eq!(d, 0.0);
            assert_eq!(c, r.cluster_of_landmark(l));
        }
    }

    #[test]
    fn cluster_distance_diagonal_zero() {
        let r = build_region(ClusterGoal::Delta(300.0));
        for c in 0..r.cluster_count() as u32 {
            assert_eq!(r.cluster_distance(ClusterId(c), ClusterId(c)), 0.0);
        }
    }

    #[test]
    fn more_clusters_means_smaller_epsilon() {
        // The Figure 3b relationship: C up, ε down (weakly).
        let few = build_region(ClusterGoal::FixedCount(3));
        let many = build_region(ClusterGoal::FixedCount(12));
        assert!(
            many.epsilon_m() <= few.epsilon_m() + 1e-6,
            "C=12 ε {} > C=3 ε {}",
            many.epsilon_m(),
            few.epsilon_m()
        );
    }

    #[test]
    fn heap_bytes_positive_and_grows_with_clusters() {
        let few = build_region(ClusterGoal::FixedCount(3));
        let many = build_region(ClusterGoal::FixedCount(12));
        assert!(few.heap_bytes() > 0);
        // Cluster-distance table is k^2: more clusters, more bytes there.
        assert!(many.heap_bytes() + 1000 > few.heap_bytes());
    }
}
