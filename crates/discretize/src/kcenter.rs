//! GREEDY: Gonzalez's 2-approximation for metric k-center.
//!
//! > *"We use the well-known 2-approximate greedy algorithm \[Gonzalez
//! > 1985\] for METRIC K-CENTER as a subroutine for getting an
//! > approximation to the CLUSTERMINIMIZATION problem (henceforth we
//! > refer to this subroutine as GREEDY)."* (§V)
//!
//! Farthest-point traversal: start from a fixed point, repeatedly add
//! the point farthest from the chosen centers, then assign every point
//! to its nearest center. The covering radius is at most twice the
//! optimal k-center radius.

use crate::metric::LandmarkMetric;

/// A finite point set with pairwise distances — the abstraction the
/// clustering algorithms run on. Implementations must be metrics
/// (symmetric, triangle inequality) for the approximation guarantees to
/// hold.
pub trait PointMetric {
    /// Number of points.
    fn len(&self) -> usize;
    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;
    /// Whether the point set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PointMetric for LandmarkMetric {
    fn len(&self) -> usize {
        self.len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.sym(crate::LandmarkId(i as u32), crate::LandmarkId(j as u32))
    }
}

/// A metric given by an explicit symmetric closure (used in tests and
/// by the exact solver harness).
pub struct FnMetric<F: Fn(usize, usize) -> f64> {
    n: usize,
    f: F,
}

impl<F: Fn(usize, usize) -> f64> FnMetric<F> {
    /// Wrap a closure as a metric over `n` points.
    pub fn new(n: usize, f: F) -> Self {
        Self { n, f }
    }
}

impl<F: Fn(usize, usize) -> f64> PointMetric for FnMetric<F> {
    fn len(&self) -> usize {
        self.n
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (self.f)(i, j)
    }
}

/// Result of the GREEDY k-center subroutine.
#[derive(Debug, Clone)]
pub struct KCenterResult {
    /// Chosen center point indices, in selection order.
    pub centers: Vec<usize>,
    /// For each point, the index *into `centers`* of its nearest center.
    pub assignment: Vec<usize>,
    /// Maximum distance of any point to its assigned center.
    pub radius: f64,
}

impl KCenterResult {
    /// The points assigned to center slot `c` (an index into
    /// `self.centers`).
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(p, &a)| (a == c).then_some(p))
            .collect()
    }
}

/// Run Gonzalez's farthest-point greedy for `k` centers.
///
/// Deterministic: the first center is point 0, and ties in the
/// farthest-point choice break towards the lower index.
///
/// # Panics
///
/// Panics if `k == 0` or the metric is empty.
pub fn greedy_k_center<M: PointMetric>(metric: &M, k: usize) -> KCenterResult {
    let n = metric.len();
    assert!(n > 0, "k-center needs at least one point");
    assert!(k > 0, "k must be positive");
    let k = k.min(n);

    let mut centers = Vec::with_capacity(k);
    // dist_to_centers[p] = distance of p to its currently nearest center.
    let mut dist_to_center = vec![f64::INFINITY; n];
    let mut assignment = vec![0usize; n];

    let mut next = 0usize; // first center: point 0
    for slot in 0..k {
        centers.push(next);
        #[allow(clippy::needless_range_loop)] // p indexes two parallel arrays
        for p in 0..n {
            let d = metric.dist(p, next);
            if d < dist_to_center[p] {
                dist_to_center[p] = d;
                assignment[p] = slot;
            }
        }
        // Farthest point becomes the next center.
        let (mut far, mut far_d) = (0usize, -1.0f64);
        #[allow(clippy::needless_range_loop)] // want the index, not the value
        for p in 0..n {
            if dist_to_center[p] > far_d {
                far_d = dist_to_center[p];
                far = p;
            }
        }
        next = far;
    }
    let radius = dist_to_center.iter().fold(0.0f64, |a, &b| a.max(b));
    KCenterResult { centers, assignment, radius }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line at the given coordinates.
    fn line_metric(coords: &'static [f64]) -> FnMetric<impl Fn(usize, usize) -> f64> {
        FnMetric::new(coords.len(), move |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn k_equals_n_gives_zero_radius() {
        let m = line_metric(&[0.0, 10.0, 25.0]);
        let r = greedy_k_center(&m, 3);
        assert_eq!(r.radius, 0.0);
        let mut c = r.centers.clone();
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn single_center_covers_all() {
        let m = line_metric(&[0.0, 10.0, 25.0]);
        let r = greedy_k_center(&m, 1);
        assert_eq!(r.centers, vec![0]);
        assert_eq!(r.radius, 25.0);
        assert_eq!(r.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn two_clusters_on_a_line() {
        // Two tight groups far apart: greedy must put one center in each.
        let m = line_metric(&[0.0, 1.0, 2.0, 100.0, 101.0, 102.0]);
        let r = greedy_k_center(&m, 2);
        assert!(r.radius <= 2.0, "radius {}", r.radius);
        // All of 0,1,2 share a center; all of 3,4,5 share the other.
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn radius_never_increases_with_k() {
        let coords: &[f64] = &[0.0, 3.0, 7.0, 12.0, 20.0, 33.0, 34.0, 50.0];
        let m = FnMetric::new(coords.len(), move |i, j| (coords[i] - coords[j]).abs());
        let mut prev = f64::INFINITY;
        for k in 1..=coords.len() {
            let r = greedy_k_center(&m, k);
            assert!(r.radius <= prev + 1e-12, "k={k}: {} > {prev}", r.radius);
            prev = r.radius;
        }
    }

    #[test]
    fn two_approximation_on_line_instances() {
        // On a line, optimal k-center radius is easy to compute by
        // brute force over center subsets for small n.
        let coords: &[f64] = &[0.0, 2.0, 3.0, 9.0, 10.0, 15.0];
        let n = coords.len();
        let m = FnMetric::new(n, move |i, j| (coords[i] - coords[j]).abs());
        for k in 1..=3usize {
            let greedy = greedy_k_center(&m, k);
            // Brute-force optimum.
            let mut best = f64::INFINITY;
            let combos = combinations(n, k);
            for centers in combos {
                let mut radius = 0.0f64;
                for p in 0..n {
                    let d = centers.iter().map(|&c| (coords[p] - coords[c]).abs()).fold(f64::INFINITY, f64::min);
                    radius = radius.max(d);
                }
                best = best.min(radius);
            }
            assert!(
                greedy.radius <= 2.0 * best + 1e-9,
                "k={k}: greedy {} > 2 * OPT {}",
                greedy.radius,
                best
            );
        }
    }

    #[test]
    fn members_of_partitions_points() {
        let m = line_metric(&[0.0, 1.0, 50.0, 51.0, 100.0]);
        let r = greedy_k_center(&m, 3);
        let mut all: Vec<usize> = (0..r.centers.len()).flat_map(|c| r.members_of(c)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let m = line_metric(&[0.0, 5.0]);
        let r = greedy_k_center(&m, 10);
        assert_eq!(r.centers.len(), 2);
        assert_eq!(r.radius, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let m = line_metric(&[0.0]);
        let _ = greedy_k_center(&m, 0);
    }

    /// All k-subsets of 0..n (test helper).
    fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = vec![];
        let mut cur = vec![];
        fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(i + 1, n, k, cur, out);
                cur.pop();
            }
        }
        rec(0, n, k, &mut cur, &mut out);
        out
    }
}
