//! The CLUSTERMINIMIZATION integer linear program (paper §V).
//!
//! The paper formulates the problem as:
//!
//! ```text
//! minimize  m
//! s.t.      Σ_j y_j ≤ m
//!           x_{i,j} ≤ y_j                        ∀ i ∈ V, j ∈ [n]
//!           Σ_j x_{i,j} = 1                      ∀ i ∈ V
//!           d_{i,i'} (x_{i,j} + x_{i',j} − 1) ≤ δ   ∀ i,i' ∈ V, ∀ j
//!           x, y ∈ {0,1}
//! ```
//!
//! Solving the ILP is NP-complete (Theorem 4) and `(1−ε)·ln n` hard to
//! approximate for some metrics (Theorem 5), which is why XAR uses the
//! GREEDYSEARCH bicriteria algorithm instead. This module materialises
//! the ILP as a checkable object: it validates candidate solutions
//! against every constraint, counts the constraints (making the ILP's
//! size concrete), and computes combinatorial lower bounds on the
//! optimum that the test-suite uses to sandwich the approximation
//! algorithms.

use crate::greedy_search::Clustering;
use crate::kcenter::PointMetric;

/// A materialised CLUSTERMINIMIZATION instance.
pub struct ClusterIlp<'m, M: PointMetric> {
    metric: &'m M,
    delta: f64,
}

/// Why a candidate solution violates the ILP.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpViolation {
    /// A landmark is assigned to a cluster index `≥ m` (uses an unused
    /// cluster — violates `x_{i,j} ≤ y_j`).
    UnusedCluster {
        /// The offending landmark.
        landmark: usize,
        /// Its (out-of-range) cluster index.
        cluster: usize,
    },
    /// A landmark has no cluster assignment (violates `Σ_j x_{i,j} = 1`;
    /// over-assignment is impossible in the vector encoding).
    Unassigned {
        /// The offending landmark.
        landmark: usize,
    },
    /// Two co-clustered landmarks are farther than δ apart (violates
    /// the pairwise distance constraint).
    PairTooFar {
        /// First landmark.
        a: usize,
        /// Second landmark.
        b: usize,
        /// Their distance.
        distance: f64,
    },
}

impl<'m, M: PointMetric> ClusterIlp<'m, M> {
    /// Wrap a metric and threshold as an ILP instance.
    pub fn new(metric: &'m M, delta: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        Self { metric, delta }
    }

    /// Number of binary variables in the paper's formulation:
    /// `n^2` x-variables plus `n` y-variables (and the integer `m`).
    pub fn variable_count(&self) -> usize {
        let n = self.metric.len();
        n * n + n + 1
    }

    /// Number of constraints: `1 + n^2 + n + n^2·n` (the pairwise
    /// constraint is stated per cluster index j).
    pub fn constraint_count(&self) -> usize {
        let n = self.metric.len();
        1 + n * n + n + n * n * n
    }

    /// Check a candidate assignment (`assignment[i]` = cluster of
    /// landmark `i`, clusters `0..m`) against every ILP constraint.
    /// Returns all violations (empty = feasible).
    pub fn check(&self, assignment: &[usize], m: usize) -> Vec<IlpViolation> {
        let n = self.metric.len();
        let mut out = Vec::new();
        if assignment.len() != n {
            for landmark in assignment.len()..n {
                out.push(IlpViolation::Unassigned { landmark });
            }
        }
        for (i, &a) in assignment.iter().enumerate() {
            if a >= m {
                out.push(IlpViolation::UnusedCluster { landmark: i, cluster: a });
            }
        }
        for i in 0..assignment.len() {
            for j in (i + 1)..assignment.len() {
                if assignment[i] == assignment[j] {
                    let d = self.metric.dist(i, j);
                    if d > self.delta + 1e-9 {
                        out.push(IlpViolation::PairTooFar { a: i, b: j, distance: d });
                    }
                }
            }
        }
        out
    }

    /// Whether a [`Clustering`] is ILP-feasible.
    pub fn is_feasible(&self, c: &Clustering) -> bool {
        self.check(&c.assignment, c.k).is_empty()
    }

    /// A lower bound on the optimal number of clusters: the size of a
    /// greedily grown *independent set* in the δ-threshold graph. Any
    /// two landmarks more than δ apart can never share a cluster, so
    /// every member of such a set needs its own cluster.
    pub fn independent_set_lower_bound(&self) -> usize {
        let n = self.metric.len();
        let mut chosen: Vec<usize> = Vec::new();
        for v in 0..n {
            if chosen.iter().all(|&u| self.metric.dist(u, v) > self.delta + 1e-9) {
                chosen.push(v);
            }
        }
        chosen.len().max(usize::from(n > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_min_clusters;
    use crate::greedy_search::greedy_search;
    use crate::kcenter::FnMetric;

    fn line(coords: &'static [f64]) -> FnMetric<impl Fn(usize, usize) -> f64> {
        FnMetric::new(coords.len(), move |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn sizes_match_formulation() {
        let m = line(&[0.0, 1.0, 2.0]);
        let ilp = ClusterIlp::new(&m, 1.0);
        assert_eq!(ilp.variable_count(), 9 + 3 + 1);
        assert_eq!(ilp.constraint_count(), 1 + 9 + 3 + 27);
    }

    #[test]
    fn feasible_assignment_passes() {
        let m = line(&[0.0, 1.0, 10.0]);
        let ilp = ClusterIlp::new(&m, 2.0);
        assert!(ilp.check(&[0, 0, 1], 2).is_empty());
    }

    #[test]
    fn pair_too_far_is_caught() {
        let m = line(&[0.0, 1.0, 10.0]);
        let ilp = ClusterIlp::new(&m, 2.0);
        let v = ilp.check(&[0, 0, 0], 1);
        assert!(v.iter().any(|x| matches!(x, IlpViolation::PairTooFar { a: 0, b: 2, .. })));
        assert!(v.iter().any(|x| matches!(x, IlpViolation::PairTooFar { a: 1, b: 2, .. })));
    }

    #[test]
    fn unused_cluster_is_caught() {
        let m = line(&[0.0, 1.0]);
        let ilp = ClusterIlp::new(&m, 5.0);
        let v = ilp.check(&[0, 3], 2);
        assert_eq!(v, vec![IlpViolation::UnusedCluster { landmark: 1, cluster: 3 }]);
    }

    #[test]
    fn missing_assignment_is_caught() {
        let m = line(&[0.0, 1.0, 2.0]);
        let ilp = ClusterIlp::new(&m, 5.0);
        let v = ilp.check(&[0, 0], 1);
        assert_eq!(v, vec![IlpViolation::Unassigned { landmark: 2 }]);
    }

    #[test]
    fn exact_solution_is_ilp_feasible() {
        let m = line(&[0.0, 2.0, 4.0, 6.0, 20.0, 22.0]);
        let delta = 4.0;
        let ilp = ClusterIlp::new(&m, delta);
        let c = exact_min_clusters(&m, delta);
        assert!(ilp.is_feasible(&c));
    }

    #[test]
    fn lower_bound_sandwiches_optimum() {
        let m = line(&[0.0, 2.0, 4.0, 6.0, 20.0, 22.0, 40.0]);
        let delta = 4.0;
        let ilp = ClusterIlp::new(&m, delta);
        let exact = exact_min_clusters(&m, delta);
        let lb = ilp.independent_set_lower_bound();
        assert!(lb <= exact.k, "LB {lb} > OPT {}", exact.k);
        assert!(lb >= 1);
    }

    #[test]
    fn greedy_search_feasible_at_stretched_delta() {
        // GREEDYSEARCH output is NOT necessarily feasible at δ, but must
        // be feasible at the bicriteria 4δ — exactly Theorem 6.
        let m = line(&[0.0, 3.0, 6.0, 9.0, 12.0, 30.0, 33.0]);
        let delta = 3.0;
        let out = greedy_search(&m, delta);
        let relaxed = ClusterIlp::new(&m, 4.0 * delta);
        assert!(relaxed.is_feasible(&out.clustering));
    }
}
