//! GREEDYSEARCH: the bicriteria approximation for CLUSTERMINIMIZATION
//! (paper §V, Theorem 6).
//!
//! The algorithm binary-searches the number of centers `k` over
//! `[1, n]`, invoking the GREEDY k-center subroutine each iteration.
//! If some landmark ends up farther than `2δ` from its center, the
//! search moves to the upper half of the range; otherwise to the lower
//! half. After `log2(n)` iterations it returns the minimum `k'` whose
//! covering radius was `≤ 2δ`.
//!
//! **Theorem 6.** If the optimal solution is `(k_OPT, δ)`, GREEDYSEARCH
//! returns `(k_ALG, 4δ)` with `k_ALG ≤ k_OPT`: no more clusters than
//! optimal, with the pairwise intra-cluster distance stretched by at
//! most a factor 4 (radius ≤ 2δ, so diameter ≤ 4δ by the triangle
//! inequality). The property tests in this module's test suite and in
//! `tests/` verify both halves of the guarantee against the exact
//! solver.

use crate::kcenter::{greedy_k_center, PointMetric};

/// A clustering of a landmark set: the output of GREEDYSEARCH (or of
/// the exact solver, converted).
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Number of clusters `k`.
    pub k: usize,
    /// Center point indices, one per cluster (GREEDY's chosen centers;
    /// for converted exact solutions an arbitrary member).
    pub centers: Vec<usize>,
    /// For each point, the cluster index in `0..k` it belongs to.
    pub assignment: Vec<usize>,
    /// Maximum distance of any point to its cluster's center.
    pub radius: f64,
}

impl Clustering {
    /// The member point indices of cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(p, &a)| (a == c).then_some(p))
            .collect()
    }

    /// All clusters as vectors of member indices.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (p, &a) in self.assignment.iter().enumerate() {
            out[a].push(p);
        }
        out
    }

    /// Exact maximum intra-cluster pairwise distance (the achieved
    /// "ε" of the discretization).
    pub fn max_diameter<M: PointMetric>(&self, metric: &M) -> f64 {
        let mut best = 0.0f64;
        for members in self.clusters() {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    best = best.max(metric.dist(a, b));
                }
            }
        }
        best
    }

    /// Check the Definition 3 feasibility: every intra-cluster pair
    /// within `delta`.
    pub fn is_feasible<M: PointMetric>(&self, metric: &M, delta: f64) -> bool {
        self.max_diameter(metric) <= delta + 1e-9
    }
}

/// One probe of the binary search: the `(k, radius)` pair the paper's
/// algorithm records ("the algorithm returns log2(n) tuples of the form
/// (k', δ_k')").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchProbe {
    /// Number of centers probed.
    pub k: usize,
    /// GREEDY covering radius achieved for that `k`.
    pub radius: f64,
}

/// The full outcome of GREEDYSEARCH: the chosen clustering plus the
/// probe trace.
#[derive(Debug, Clone)]
pub struct GreedySearchOutcome {
    /// The clustering at the selected `k_ALG`.
    pub clustering: Clustering,
    /// All `(k', δ_k')` probes, in probe order.
    pub trace: Vec<SearchProbe>,
}

/// Run GREEDYSEARCH for inter-landmark threshold `delta` (the paper's
/// δ). Returns the minimum `k` probed whose covering radius is `≤ 2δ`,
/// together with its clustering.
///
/// ```
/// use xar_discretize::greedy_search::greedy_search;
/// use xar_discretize::kcenter::FnMetric;
/// // Three tight groups on a line, 100 apart.
/// let xs: [f64; 6] = [0.0, 1.0, 100.0, 101.0, 200.0, 201.0];
/// let metric = FnMetric::new(6, move |i, j| (xs[i] - xs[j]).abs());
/// let out = greedy_search(&metric, 2.0);
/// assert_eq!(out.clustering.k, 3);
/// // Theorem 6: intra-cluster diameter within 4 delta.
/// assert!(out.clustering.max_diameter(&metric) <= 8.0);
/// ```
///
/// # Panics
///
/// Panics if the metric is empty or `delta` is negative/not finite.
pub fn greedy_search<M: PointMetric>(metric: &M, delta: f64) -> GreedySearchOutcome {
    assert!(!metric.is_empty(), "cannot cluster an empty landmark set");
    assert!(delta.is_finite() && delta >= 0.0, "delta must be non-negative, got {delta}");
    let n = metric.len();
    let threshold = 2.0 * delta;

    let mut lo = 1usize;
    let mut hi = n;
    let mut trace = Vec::new();
    let mut best: Option<Clustering> = None;
    // Binary search: GREEDY's radius is monotone non-increasing in k,
    // so the standard invariant applies. k = n always achieves radius 0,
    // guaranteeing a feasible endpoint.
    while lo < hi {
        let k = lo + (hi - lo) / 2;
        let r = greedy_k_center(metric, k);
        trace.push(SearchProbe { k, radius: r.radius });
        if r.radius > threshold {
            lo = k + 1;
        } else {
            hi = k;
            let better = best.as_ref().is_none_or(|b| k < b.k);
            if better {
                best = Some(Clustering {
                    k: r.centers.len(),
                    centers: r.centers,
                    assignment: r.assignment,
                    radius: r.radius,
                });
            }
        }
    }
    // `lo == hi` is the minimal feasible k; make sure we actually hold
    // its clustering (the loop may have converged from above).
    let clustering = match best {
        Some(b) if b.k == lo => b,
        _ => {
            let r = greedy_k_center(metric, lo);
            trace.push(SearchProbe { k: lo, radius: r.radius });
            Clustering { k: r.centers.len(), centers: r.centers, assignment: r.assignment, radius: r.radius }
        }
    };
    GreedySearchOutcome { clustering, trace }
}

/// Run GREEDY for a *fixed* cluster count (used by the Figure 3
/// trade-off sweeps, where the paper picks `C = 500 … 5000` directly).
pub fn cluster_with_k<M: PointMetric>(metric: &M, k: usize) -> Clustering {
    let r = greedy_k_center(metric, k);
    Clustering { k: r.centers.len(), centers: r.centers, assignment: r.assignment, radius: r.radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_min_clusters;
    use crate::kcenter::FnMetric;

    fn line(coords: &'static [f64]) -> FnMetric<impl Fn(usize, usize) -> f64> {
        FnMetric::new(coords.len(), move |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn tight_group_is_one_cluster() {
        let m = line(&[0.0, 1.0, 2.0, 3.0]);
        let out = greedy_search(&m, 5.0);
        assert_eq!(out.clustering.k, 1);
        assert!(out.clustering.radius <= 10.0);
    }

    #[test]
    fn separated_groups_split() {
        let m = line(&[0.0, 1.0, 100.0, 101.0, 200.0, 201.0]);
        let out = greedy_search(&m, 2.0);
        assert_eq!(out.clustering.k, 3);
        // Each group must be intact and diameter tiny.
        assert!(out.clustering.max_diameter(&m) <= 2.0);
    }

    #[test]
    fn theorem6_k_alg_le_k_opt() {
        // Several small instances where the exact optimum is computable.
        let instances: &[&[f64]] = &[
            &[0.0, 1.0, 2.0, 10.0, 11.0, 20.0],
            &[0.0, 4.0, 8.0, 12.0, 16.0],
            &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
            &[0.0, 9.0, 18.0, 27.0],
        ];
        for coords in instances {
            let c2: &'static [f64] = Box::leak(coords.to_vec().into_boxed_slice());
            let m = FnMetric::new(c2.len(), move |i, j| (c2[i] - c2[j]).abs());
            for delta in [1.0, 2.0, 5.0, 10.0] {
                let exact = exact_min_clusters(&m, delta);
                let out = greedy_search(&m, delta);
                assert!(
                    out.clustering.k <= exact.k,
                    "delta={delta}, coords={coords:?}: k_ALG {} > k_OPT {}",
                    out.clustering.k,
                    exact.k
                );
                // Diameter within 4 delta.
                assert!(
                    out.clustering.max_diameter(&m) <= 4.0 * delta + 1e-9,
                    "delta={delta}: diameter {} > 4δ",
                    out.clustering.max_diameter(&m)
                );
            }
        }
    }

    #[test]
    fn radius_bound_2delta_holds() {
        let m = line(&[0.0, 3.0, 6.0, 9.0, 30.0, 33.0, 36.0]);
        let delta = 6.0;
        let out = greedy_search(&m, delta);
        assert!(out.clustering.radius <= 2.0 * delta + 1e-9);
    }

    #[test]
    fn trace_is_at_most_logarithmic_plus_one() {
        let coords: Vec<f64> = (0..64).map(|i| i as f64 * 5.0).collect();
        let c: &'static [f64] = Box::leak(coords.into_boxed_slice());
        let m = FnMetric::new(c.len(), move |i, j| (c[i] - c[j]).abs());
        let out = greedy_search(&m, 7.0);
        assert!(out.trace.len() <= 64usize.ilog2() as usize + 1, "trace {:?}", out.trace.len());
    }

    #[test]
    fn zero_delta_gives_singletons_unless_coincident() {
        let m = line(&[0.0, 5.0, 9.0]);
        let out = greedy_search(&m, 0.0);
        assert_eq!(out.clustering.k, 3);
        assert_eq!(out.clustering.radius, 0.0);
    }

    #[test]
    fn coincident_points_collapse() {
        let m = line(&[4.0, 4.0, 4.0]);
        let out = greedy_search(&m, 0.0);
        assert_eq!(out.clustering.k, 1);
    }

    #[test]
    fn cluster_with_k_matches_greedy() {
        let m = line(&[0.0, 10.0, 20.0, 30.0]);
        let c = cluster_with_k(&m, 2);
        assert_eq!(c.k, 2);
        let mut all: Vec<_> = c.clusters().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn feasibility_check() {
        let m = line(&[0.0, 1.0, 2.0]);
        let c = cluster_with_k(&m, 1);
        assert!(c.is_feasible(&m, 2.0));
        assert!(!c.is_feasible(&m, 1.0));
    }
}
