//! Exact CLUSTERMINIMIZATION by branch-and-bound clique cover.
//!
//! Theorem 4 of the paper shows CLUSTERMINIMIZATION is equivalent to
//! *minimum clique cover* on the unweighted threshold graph where
//! "landmarks are vertices, and an edge between any two vertices exists
//! if and only if the distance between the corresponding landmarks is
//! ≤ δ" — and therefore NP-complete. This module solves small instances
//! (n ≲ 25) exactly, serving as the ground truth the GREEDYSEARCH
//! bicriteria guarantee is property-tested against, and as the direct
//! optimal solver the ILP of §V would compute.

use crate::greedy_search::Clustering;
use crate::kcenter::PointMetric;

/// Exact minimum number of clusters with pairwise intra-cluster
/// distance `≤ delta`, via branch-and-bound over vertex-to-clique
/// assignments.
///
/// Complexity is exponential; intended for test instances. The returned
/// [`Clustering`] uses the first member of each clique as its "center"
/// and reports the exact covering radius relative to those centers.
///
/// # Panics
///
/// Panics if the metric is empty or `delta` is negative.
pub fn exact_min_clusters<M: PointMetric>(metric: &M, delta: f64) -> Clustering {
    let n = metric.len();
    assert!(n > 0, "cannot cluster an empty set");
    assert!(delta >= 0.0, "delta must be non-negative");
    // Adjacency: compatible[i][j] = can share a cluster.
    let mut compatible = vec![vec![false; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric fill over (i, j)
    for i in 0..n {
        for j in 0..n {
            compatible[i][j] = i == j || metric.dist(i, j) <= delta + 1e-9;
        }
    }

    // Greedy first-fit gives an initial upper bound.
    let mut best_assignment = first_fit(&compatible);
    let mut best_k = best_assignment.iter().max().map_or(0, |&m| m + 1);

    // Branch and bound: assign vertices in order; vertex v may join any
    // open clique whose members are all compatible, or open clique
    // `used` (canonical order prunes symmetric branches).
    let mut assignment = vec![usize::MAX; n];
    let mut cliques: Vec<Vec<usize>> = Vec::new();

    fn rec(
        v: usize,
        n: usize,
        compatible: &[Vec<bool>],
        assignment: &mut Vec<usize>,
        cliques: &mut Vec<Vec<usize>>,
        best_k: &mut usize,
        best_assignment: &mut Vec<usize>,
    ) {
        if cliques.len() >= *best_k {
            return; // cannot improve
        }
        if v == n {
            *best_k = cliques.len();
            *best_assignment = assignment.clone();
            return;
        }
        for c in 0..cliques.len() {
            if cliques[c].iter().all(|&u| compatible[u][v]) {
                cliques[c].push(v);
                assignment[v] = c;
                rec(v + 1, n, compatible, assignment, cliques, best_k, best_assignment);
                cliques[c].pop();
            }
        }
        // Open a new clique (only if it can still beat the best).
        if cliques.len() + 1 < *best_k {
            cliques.push(vec![v]);
            assignment[v] = cliques.len() - 1;
            rec(v + 1, n, compatible, assignment, cliques, best_k, best_assignment);
            cliques.pop();
        }
        assignment[v] = usize::MAX;
    }
    rec(0, n, &compatible, &mut assignment, &mut cliques, &mut best_k, &mut best_assignment);

    clustering_from_assignment(metric, best_assignment, best_k)
}

/// Greedy first-fit clique cover (upper bound and fallback).
fn first_fit(compatible: &[Vec<bool>]) -> Vec<usize> {
    let n = compatible.len();
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; n];
    for v in 0..n {
        let slot = cliques.iter().position(|c| c.iter().all(|&u| compatible[u][v]));
        match slot {
            Some(c) => {
                cliques[c].push(v);
                assignment[v] = c;
            }
            None => {
                cliques.push(vec![v]);
                assignment[v] = cliques.len() - 1;
            }
        }
    }
    assignment
}

fn clustering_from_assignment<M: PointMetric>(
    metric: &M,
    assignment: Vec<usize>,
    k: usize,
) -> Clustering {
    // Center = first member of each cluster; radius relative to it.
    let mut centers = vec![usize::MAX; k];
    for (p, &a) in assignment.iter().enumerate() {
        if centers[a] == usize::MAX {
            centers[a] = p;
        }
    }
    let mut radius = 0.0f64;
    for (p, &a) in assignment.iter().enumerate() {
        radius = radius.max(metric.dist(p, centers[a]));
    }
    Clustering { k, centers, assignment, radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcenter::FnMetric;

    fn line(coords: &'static [f64]) -> FnMetric<impl Fn(usize, usize) -> f64> {
        FnMetric::new(coords.len(), move |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn all_within_delta_is_one_cluster() {
        let m = line(&[0.0, 1.0, 2.0]);
        let c = exact_min_clusters(&m, 2.0);
        assert_eq!(c.k, 1);
    }

    #[test]
    fn all_far_apart_is_singletons() {
        let m = line(&[0.0, 10.0, 20.0, 30.0]);
        let c = exact_min_clusters(&m, 5.0);
        assert_eq!(c.k, 4);
    }

    #[test]
    fn line_interval_cover() {
        // Points 0..9 spaced by 1, delta 3 => cliques of 4 consecutive
        // points => ceil(10/4) = 3 clusters.
        let coords: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c2: &'static [f64] = Box::leak(coords.into_boxed_slice());
        let m = FnMetric::new(c2.len(), move |i, j| (c2[i] - c2[j]).abs());
        let c = exact_min_clusters(&m, 3.0);
        assert_eq!(c.k, 3);
        assert!(c.is_feasible(&m, 3.0));
    }

    #[test]
    fn solution_is_always_feasible() {
        let m = line(&[0.0, 2.5, 5.0, 7.5, 10.0, 12.5]);
        for delta in [1.0, 2.5, 5.0, 100.0] {
            let c = exact_min_clusters(&m, delta);
            assert!(c.is_feasible(&m, delta), "delta={delta}");
            // Every point assigned exactly once to a valid cluster id.
            assert!(c.assignment.iter().all(|&a| a < c.k));
        }
    }

    #[test]
    fn non_interval_metric() {
        // Star metric: center point near everyone, leaves far apart.
        // 0 is within 2 of each leaf; leaves are 4 apart pairwise.
        let m = FnMetric::new(4, |i, j| {
            if i == j {
                0.0
            } else if i == 0 || j == 0 {
                2.0
            } else {
                4.0
            }
        });
        // delta=2: {0, one leaf} + two singleton leaves = 3 clusters.
        let c = exact_min_clusters(&m, 2.0);
        assert_eq!(c.k, 3);
        // delta=4: everything fits together.
        let c = exact_min_clusters(&m, 4.0);
        assert_eq!(c.k, 1);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Random symmetric metrics (not necessarily triangle-satisfying
        // — clique cover doesn't need it) vs exhaustive partition search.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let n = 6;
            let mut d = vec![vec![0.0f64; n]; n];
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = rng.random::<f64>() * 10.0;
                    d[i][j] = v;
                    d[j][i] = v;
                }
            }
            let dd = d.clone();
            let m = FnMetric::new(n, move |i, j| dd[i][j]);
            let delta = 4.0;
            let exact = exact_min_clusters(&m, delta);
            let brute = brute_force_min(&d, delta);
            assert_eq!(exact.k, brute, "trial {trial}");
        }
    }

    /// Exhaustive minimum clique cover via set-partition enumeration
    /// (restricted growth strings).
    fn brute_force_min(d: &[Vec<f64>], delta: f64) -> usize {
        let n = d.len();
        let mut best = n;
        let mut rgs = vec![0usize; n];
        loop {
            // Validate partition.
            let k = rgs.iter().max().unwrap() + 1;
            if k < best {
                let mut ok = true;
                #[allow(clippy::needless_range_loop)]
                'outer: for i in 0..n {
                    for j in (i + 1)..n {
                        if rgs[i] == rgs[j] && d[i][j] > delta + 1e-9 {
                            ok = false;
                            break 'outer;
                        }
                    }
                }
                if ok {
                    best = k;
                }
            }
            // Next restricted growth string.
            let mut i = n - 1;
            loop {
                let max_prefix = rgs[..i].iter().max().copied().unwrap_or(0);
                if i > 0 && rgs[i] <= max_prefix {
                    rgs[i] += 1;
                    for x in rgs[i + 1..].iter_mut() {
                        *x = 0;
                    }
                    break;
                }
                if i == 0 {
                    return best;
                }
                i -= 1;
            }
        }
    }
}
