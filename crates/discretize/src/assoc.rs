//! Grid → landmark association and walkable-cluster lists (paper §IV).
//!
//! * Each grid "is associated with a unique landmark, that minimizes the
//!   maximum driving distance of the grid from the landmark", ties going
//!   to "the one with the lowest number", and only "if it is within Δ
//!   distance of the landmark". Grids beyond Δ of every landmark stay
//!   unassociated but may still be served through walkable clusters.
//! * Each grid additionally keeps a list of *walkable clusters*
//!   `⟨C, w⟩` where `w ≤ W` is the walking distance to the nearest
//!   landmark of `C`, "sorted in non-decreasing walking distances".
//!
//! Both tables are stored per **road node** rather than per raw grid
//! cell: every grid cell is represented by its centroid (§IV), and the
//! centroid snaps to its nearest way-point, so node-level tables are the
//! natural dense encoding — the snap error is below the grid
//! discretization error already accepted by the paper's model.

use crate::landmarks::{Landmark, LandmarkId};
use crate::region::ClusterId;
use xar_roadnet::{CostMetric, Direction, NodeId, RoadGraph, ShortestPaths};

/// One entry of a walkable-cluster list: the paper's tuple `⟨C, w⟩`,
/// extended with the identity of the nearest landmark so that booking
/// can route the ride to a concrete pick-up way-point without
/// recomputing the walking search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkEntry {
    /// The walkable cluster `C`.
    pub cluster: ClusterId,
    /// The nearest landmark of `C` (the one realising `w`).
    pub landmark: LandmarkId,
    /// Walking distance `w` to that landmark, metres.
    pub walk_m: f32,
}

/// Per-node association tables (tiers "grid → landmark" and
/// "grid → walkable clusters" of the hierarchy).
#[derive(Debug, Clone)]
pub struct NodeAssociation {
    /// For each node: the associated landmark and the driving distance
    /// (metres) from the node to it, if within `Δ`.
    pub landmark_of: Vec<Option<(LandmarkId, f32)>>,
    /// For each node: walkable clusters sorted by non-decreasing
    /// walking distance (ties by cluster id).
    pub walkable: Vec<Vec<WalkEntry>>,
}

impl NodeAssociation {
    /// Build both tables.
    ///
    /// * `cluster_of[l]` maps landmark index to its cluster.
    /// * `delta_drive_m` is the paper's `Δ` (maximum driving distance
    ///   for the grid → landmark association).
    /// * `max_walk_m` is the paper's `W` (system-wide walking cap).
    ///
    /// Driving distance "of the grid from the landmark" is the distance
    /// the rider's pick-up vehicle would cover, i.e. node → landmark on
    /// the directed graph; it is computed with one *reverse* bounded
    /// Dijkstra per landmark. Walking distances use the undirected
    /// graph.
    pub fn build(
        graph: &RoadGraph,
        landmarks: &[Landmark],
        cluster_of: &[ClusterId],
        delta_drive_m: f64,
        max_walk_m: f64,
    ) -> Self {
        assert_eq!(landmarks.len(), cluster_of.len(), "one cluster per landmark");
        let n = graph.node_count();
        let mut landmark_of: Vec<Option<(LandmarkId, f32)>> = vec![None; n];
        let rev = ShortestPaths::new(graph, CostMetric::Distance, Direction::Reverse);
        for lm in landmarks {
            // Reverse search from the landmark: settles nodes by their
            // node -> landmark driving distance.
            for (node, d) in rev.bounded_from(lm.node, delta_drive_m) {
                let d = d as f32;
                let better = match landmark_of[node.index()] {
                    None => true,
                    // Strictly closer wins; exact ties keep the lower id
                    // (landmarks are scanned in id order).
                    Some((_, cur)) => d < cur,
                };
                if better {
                    landmark_of[node.index()] = Some((lm.id, d));
                }
            }
        }

        let mut walk_best: Vec<std::collections::HashMap<u32, (LandmarkId, f32)>> =
            vec![std::collections::HashMap::new(); n];
        let walk = ShortestPaths::new(graph, CostMetric::Distance, Direction::Undirected);
        for lm in landmarks {
            let cluster = cluster_of[lm.id.index()];
            for (node, d) in walk.bounded_from(lm.node, max_walk_m) {
                let d = d as f32;
                walk_best[node.index()]
                    .entry(cluster.0)
                    .and_modify(|cur| {
                        if d < cur.1 {
                            *cur = (lm.id, d);
                        }
                    })
                    .or_insert((lm.id, d));
            }
        }
        let walkable = walk_best
            .into_iter()
            .map(|m| {
                let mut v: Vec<WalkEntry> = m
                    .into_iter()
                    .map(|(c, (landmark, walk_m))| WalkEntry { cluster: ClusterId(c), landmark, walk_m })
                    .collect();
                v.sort_by(|a, b| a.walk_m.total_cmp(&b.walk_m).then(a.cluster.0.cmp(&b.cluster.0)));
                v
            })
            .collect();
        Self { landmark_of, walkable }
    }

    /// The walkable clusters of `node` pruned to the per-request walking
    /// threshold `walk_limit_m` — the linear traversal of the sorted
    /// list the paper describes ("the list of walkable clusters can be
    /// further pruned according to the walking distance threshold
    /// mentioned by the commuter ... in time linear in the number of
    /// walkable clusters").
    pub fn walkable_within(&self, node: NodeId, walk_limit_m: f64) -> &[WalkEntry] {
        let list = &self.walkable[node.index()];
        let end = list.partition_point(|e| f64::from(e.walk_m) <= walk_limit_m);
        &list[..end]
    }

    /// Heap bytes held by the tables (index-size accounting).
    pub fn heap_bytes(&self) -> usize {
        let lm = self.landmark_of.capacity() * std::mem::size_of::<Option<(LandmarkId, f32)>>();
        let wk: usize = self.walkable.capacity() * std::mem::size_of::<Vec<WalkEntry>>()
            + self
                .walkable
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<WalkEntry>())
                .sum::<usize>();
        lm + wk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::filter_landmarks;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn setup() -> (RoadGraph, Vec<Landmark>, Vec<ClusterId>) {
        let g = CityConfig::test_city(5).generate();
        let pois = sample_pois(&g, &PoiConfig { count: 400, ..Default::default() });
        let lms = filter_landmarks(&g, &pois, 300.0);
        assert!(lms.len() >= 4, "need a few landmarks, got {}", lms.len());
        // Simple clustering for the tests: two clusters by parity.
        let clusters: Vec<ClusterId> = lms.iter().map(|l| ClusterId(l.id.0 % 2)).collect();
        (g, lms, clusters)
    }

    #[test]
    fn landmark_nodes_associate_to_themselves() {
        let (g, lms, cl) = setup();
        let assoc = NodeAssociation::build(&g, &lms, &cl, 800.0, 500.0);
        for lm in &lms {
            let (id, d) = assoc.landmark_of[lm.node.index()].expect("landmark node associated");
            assert_eq!(d, 0.0, "landmark {lm:?} has nonzero self-distance");
            // The associated landmark must be *a* landmark at distance 0
            // (two landmarks can share a snap node); lowest id wins.
            let co_located: Vec<_> = lms.iter().filter(|o| o.node == lm.node).collect();
            assert_eq!(id, co_located[0].id);
        }
    }

    #[test]
    fn association_respects_delta_bound() {
        let (g, lms, cl) = setup();
        let delta = 400.0;
        let assoc = NodeAssociation::build(&g, &lms, &cl, delta, 500.0);
        let sp = ShortestPaths::driving(&g);
        for node in g.node_ids().take(50) {
            if let Some((lm, d)) = assoc.landmark_of[node.index()] {
                assert!(f64::from(d) <= delta + 1e-6);
                // Distance recorded is the true driving distance.
                let true_d = sp.cost(node, lms[lm.index()].node).unwrap();
                assert!((f64::from(d) - true_d).abs() < 0.5, "{d} vs {true_d}");
            }
        }
    }

    #[test]
    fn association_picks_nearest_landmark() {
        let (g, lms, cl) = setup();
        let assoc = NodeAssociation::build(&g, &lms, &cl, 1500.0, 500.0);
        let sp = ShortestPaths::driving(&g);
        for node in g.node_ids().take(20) {
            if let Some((lm, d)) = assoc.landmark_of[node.index()] {
                // No landmark may be strictly closer.
                for other in &lms {
                    if let Some(od) = sp.cost(node, other.node) {
                        assert!(
                            od >= f64::from(d) - 0.5,
                            "node {node:?}: assigned {lm:?}@{d} but {other:?}@{od} closer"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_delta_leaves_far_nodes_unassociated() {
        let (g, lms, cl) = setup();
        let assoc = NodeAssociation::build(&g, &lms, &cl, 1.0, 500.0);
        let associated = assoc.landmark_of.iter().flatten().count();
        // Only nodes at distance <= 1 m (essentially the landmark snap
        // nodes themselves).
        assert!(associated <= lms.len());
    }

    #[test]
    fn walkable_lists_are_sorted_and_bounded() {
        let (g, lms, cl) = setup();
        let w = 600.0;
        let assoc = NodeAssociation::build(&g, &lms, &cl, 800.0, w);
        for list in &assoc.walkable {
            for pair in list.windows(2) {
                assert!(pair[0].walk_m <= pair[1].walk_m, "walkable list not sorted: {list:?}");
            }
            for e in list {
                assert!(f64::from(e.walk_m) <= w + 1e-6);
            }
            // Each cluster appears at most once.
            let mut ids: Vec<u32> = list.iter().map(|e| e.cluster.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), list.len());
        }
    }

    #[test]
    fn walkable_distance_is_true_undirected_distance() {
        let (g, lms, cl) = setup();
        let assoc = NodeAssociation::build(&g, &lms, &cl, 800.0, 700.0);
        let walk = ShortestPaths::walking(&g);
        let node = lms[0].node;
        for e in &assoc.walkable[node.index()] {
            // walk_m must equal the min walking distance to a landmark
            // of that cluster, and the recorded landmark must realise it.
            let best = lms
                .iter()
                .filter(|l| cl[l.id.index()] == e.cluster)
                .filter_map(|l| walk.cost(node, l.node))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (f64::from(e.walk_m) - best).abs() < 0.5,
                "cluster {:?}: {} vs {best}",
                e.cluster,
                e.walk_m
            );
            let via_recorded = walk.cost(node, lms[e.landmark.index()].node).unwrap();
            assert!((via_recorded - best).abs() < 0.5);
            assert_eq!(cl[e.landmark.index()], e.cluster);
        }
    }

    #[test]
    fn walkable_within_prunes_by_threshold() {
        let (g, lms, cl) = setup();
        let assoc = NodeAssociation::build(&g, &lms, &cl, 800.0, 700.0);
        let node = lms[1].node;
        let full = assoc.walkable[node.index()].len();
        let half = assoc.walkable_within(node, 200.0);
        assert!(half.len() <= full);
        assert!(half.iter().all(|e| f64::from(e.walk_m) <= 200.0));
        let none = assoc.walkable_within(node, -1.0);
        assert!(none.is_empty());
        let all = assoc.walkable_within(node, f64::INFINITY);
        assert_eq!(all.len(), full);
    }
}
