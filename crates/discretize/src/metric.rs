//! Inter-landmark driving-distance table.
//!
//! The XAR in-memory index "stores information about the discretization
//! of the city such as grids, landmarks, clusters, **distances between
//! landmarks**, etc." (§III). This module computes that table: one
//! Dijkstra per landmark over the road graph (parallelised with scoped
//! threads), stored as a dense `n x n` matrix of `f32` metres.
//!
//! One-way streets make raw driving distance a *quasi*-metric
//! (asymmetric). The clustering theory (metric k-center, Theorem 6's
//! triangle-inequality argument) needs a true metric, so the table also
//! exposes the **max-symmetrization** `d_sym(a,b) = max(d(a,b), d(b,a))`,
//! which provably preserves the triangle inequality and upper-bounds the
//! driving distance in both directions — a cluster with symmetrized
//! diameter ≤ ε therefore satisfies the paper's guarantee for every
//! pickup/drop-off direction.

use crate::landmarks::{Landmark, LandmarkId};
use xar_roadnet::{CostMetric, Direction, RoadGraph, ShortestPaths};

/// Dense pairwise driving-distance table over a landmark set.
#[derive(Debug, Clone)]
pub struct LandmarkMetric {
    n: usize,
    /// Row-major directed distances in metres; `f32::INFINITY` when
    /// unreachable.
    dist: Vec<f32>,
}

impl LandmarkMetric {
    /// Compute the table with one Dijkstra per landmark, in parallel.
    ///
    /// # Panics
    ///
    /// Panics if any landmark's node is out of range for `graph`.
    pub fn compute(graph: &RoadGraph, landmarks: &[Landmark]) -> Self {
        let n = landmarks.len();
        let nodes: Vec<_> = landmarks.iter().map(|l| l.node).collect();
        let mut dist = vec![f32::INFINITY; n * n];
        if n == 0 {
            return Self { n, dist };
        }
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n);
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, rows) in dist.chunks_mut(chunk * n).enumerate() {
                let nodes = &nodes;
                scope.spawn(move || {
                    let sp = ShortestPaths::new(graph, CostMetric::Distance, Direction::Forward);
                    for (local, row) in rows.chunks_mut(n).enumerate() {
                        let i = t * chunk + local;
                        let costs = sp.to_targets(nodes[i], nodes, f64::INFINITY);
                        for (j, c) in costs.into_iter().enumerate() {
                            row[j] = c.map_or(f32::INFINITY, |c| c as f32);
                        }
                    }
                });
            }
        });
        Self { n, dist }
    }

    /// Build directly from a row-major directed distance matrix
    /// (mostly for tests and synthetic metrics).
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != n * n`.
    pub fn from_matrix(n: usize, dist: Vec<f32>) -> Self {
        assert_eq!(dist.len(), n * n, "matrix must be n^2");
        Self { n, dist }
    }

    /// Number of landmarks.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Directed driving distance `a -> b` in metres.
    #[inline]
    pub fn directed(&self, a: LandmarkId, b: LandmarkId) -> f64 {
        f64::from(self.dist[a.index() * self.n + b.index()])
    }

    /// Max-symmetrized distance: `max(d(a,b), d(b,a))`. This is the
    /// metric the clustering algorithms run on.
    #[inline]
    pub fn sym(&self, a: LandmarkId, b: LandmarkId) -> f64 {
        self.directed(a, b).max(self.directed(b, a))
    }

    /// Heap bytes held by the table (index-size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::filter_landmarks;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig, ShortestPaths};

    fn setup() -> (RoadGraph, Vec<Landmark>) {
        let g = CityConfig::test_city(2).generate();
        let pois = sample_pois(&g, &PoiConfig { count: 300, ..Default::default() });
        let lms = filter_landmarks(&g, &pois, 250.0);
        (g, lms)
    }

    #[test]
    fn diagonal_is_zero() {
        let (g, lms) = setup();
        let m = LandmarkMetric::compute(&g, &lms);
        for l in &lms {
            assert_eq!(m.directed(l.id, l.id), 0.0);
        }
    }

    #[test]
    fn matches_individual_dijkstra() {
        let (g, lms) = setup();
        let m = LandmarkMetric::compute(&g, &lms);
        let sp = ShortestPaths::driving(&g);
        // Spot-check a handful of pairs against one-off Dijkstra.
        for (i, j) in [(0usize, 1usize), (1, 3), (2, 0)] {
            if i >= lms.len() || j >= lms.len() {
                continue;
            }
            let expect = sp.cost(lms[i].node, lms[j].node).unwrap();
            let got = m.directed(lms[i].id, lms[j].id);
            assert!((got - expect).abs() < 0.5, "pair ({i},{j}): {got} vs {expect}");
        }
    }

    #[test]
    fn sym_is_symmetric_and_dominates_directed() {
        let (g, lms) = setup();
        let m = LandmarkMetric::compute(&g, &lms);
        for i in 0..lms.len().min(10) {
            for j in 0..lms.len().min(10) {
                let (a, b) = (LandmarkId(i as u32), LandmarkId(j as u32));
                assert_eq!(m.sym(a, b), m.sym(b, a));
                assert!(m.sym(a, b) >= m.directed(a, b));
                assert!(m.sym(a, b) >= m.directed(b, a));
            }
        }
    }

    #[test]
    fn sym_satisfies_triangle_inequality() {
        let (g, lms) = setup();
        let m = LandmarkMetric::compute(&g, &lms);
        let k = lms.len().min(8);
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    let (a, b, c) = (LandmarkId(a as u32), LandmarkId(b as u32), LandmarkId(c as u32));
                    assert!(
                        m.sym(a, c) <= m.sym(a, b) + m.sym(b, c) + 0.5,
                        "triangle violated: {:?} {:?} {:?}",
                        a,
                        b,
                        c
                    );
                }
            }
        }
    }

    #[test]
    fn empty_landmark_set() {
        let (g, _) = setup();
        let m = LandmarkMetric::compute(&g, &[]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn from_matrix_round_trip() {
        let m = LandmarkMetric::from_matrix(2, vec![0.0, 5.0, 7.0, 0.0]);
        assert_eq!(m.directed(LandmarkId(0), LandmarkId(1)), 5.0);
        assert_eq!(m.directed(LandmarkId(1), LandmarkId(0)), 7.0);
        assert_eq!(m.sym(LandmarkId(0), LandmarkId(1)), 7.0);
    }

    #[test]
    #[should_panic(expected = "n^2")]
    fn bad_matrix_panics() {
        let _ = LandmarkMetric::from_matrix(2, vec![0.0; 3]);
    }
}
