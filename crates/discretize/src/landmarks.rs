//! Landmark extraction (paper §IV, Definition 2).
//!
//! > *"A landmark is a point of interest in a geographical region, such
//! > as a bus stop, a mall or an important building, such that it is
//! > sufficiently far (at least a pre-specified `f` distance away) from
//! > any other landmark."*
//!
//! The filter scans POIs in significance order (transit stops first)
//! and keeps a POI only if every previously kept landmark is at least
//! `f` metres away. A spatial hash makes the scan near-linear.

use xar_geo::{BoundingBox, GeoPoint, GridSpec};
use xar_roadnet::{NodeId, Poi, RoadGraph};

/// Identifier of a landmark; dense `0..n` after filtering, which is
/// also "the lowest number in an ordering imposed on the set of
/// landmarks" used for tie-breaking (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LandmarkId(pub u32);

impl LandmarkId {
    /// The landmark index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A filtered landmark: a significant POI at least `f` from every other
/// landmark, snapped to its road node.
#[derive(Debug, Clone, Copy)]
pub struct Landmark {
    /// Dense id (position in the filtered list).
    pub id: LandmarkId,
    /// Geographic location of the landmark itself.
    pub point: GeoPoint,
    /// Road node the landmark snaps to; all driving/walking distances
    /// to or from the landmark are measured at this way-point.
    pub node: NodeId,
}

/// Filter `pois` down to a set of landmarks pairwise at least
/// `min_separation_m` apart (great-circle distance).
///
/// POIs are processed in significance order (most significant first,
/// stable within a class), so transit stops win conflicts against
/// stores, mirroring the paper's preference for "bus stops, railway
/// stations, big stores, taxi stands". Insignificant POIs are dropped
/// up front.
///
/// # Panics
///
/// Panics if `min_separation_m` is negative or not finite.
pub fn filter_landmarks(graph: &RoadGraph, pois: &[Poi], min_separation_m: f64) -> Vec<Landmark> {
    assert!(
        min_separation_m.is_finite() && min_separation_m >= 0.0,
        "separation must be non-negative, got {min_separation_m}"
    );
    let mut significant: Vec<&Poi> = pois.iter().filter(|p| p.kind.is_significant()).collect();
    significant.sort_by_key(|p| p.kind); // PoiKind ordering: TransitStop < MajorDestination
    if significant.is_empty() {
        return vec![];
    }

    // Spatial hash over the POI extent with cells of side f (or 1 m
    // minimum) — a conflict can only come from the 3x3 neighbourhood.
    let bbox = BoundingBox::from_points(significant.iter().map(|p| p.point))
        .expect("non-empty POI set")
        .expanded(1e-4);
    let cell = min_separation_m.max(1.0);
    let grid = GridSpec::new(bbox, cell);
    let cols = grid.cols() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); grid.cell_count() as usize];
    let mut kept: Vec<Landmark> = Vec::new();

    for poi in significant {
        let gid = grid.grid_of(&poi.point);
        let mut ok = true;
        'scan: for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                let r = i64::from(gid.row) + dr;
                let c = i64::from(gid.col) + dc;
                if r < 0 || c < 0 || r as u32 >= grid.rows() || c as u32 >= grid.cols() {
                    continue;
                }
                for &k in &buckets[r as usize * cols + c as usize] {
                    if kept[k as usize].point.haversine_m(&poi.point) < min_separation_m {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            let id = LandmarkId(kept.len() as u32);
            kept.push(Landmark { id, point: poi.point, node: poi.node });
            buckets[gid.row as usize * cols + gid.col as usize].push(id.0);
        }
    }
    // Re-snap: POIs scatter off the road; confirm nodes exist.
    debug_assert!(kept.iter().all(|l| l.node.index() < graph.node_count()));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig, PoiKind};

    fn setup() -> (RoadGraph, Vec<Poi>) {
        let g = CityConfig::test_city(1).generate();
        let pois = sample_pois(&g, &PoiConfig { count: 800, ..Default::default() });
        (g, pois)
    }

    #[test]
    fn separation_is_enforced() {
        let (g, pois) = setup();
        let f = 150.0;
        let lms = filter_landmarks(&g, &pois, f);
        assert!(!lms.is_empty());
        for (i, a) in lms.iter().enumerate() {
            for b in &lms[i + 1..] {
                let d = a.point.haversine_m(&b.point);
                assert!(d >= f, "landmarks {a:?} and {b:?} only {d} m apart");
            }
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (g, pois) = setup();
        let lms = filter_landmarks(&g, &pois, 120.0);
        for (i, l) in lms.iter().enumerate() {
            assert_eq!(l.id, LandmarkId(i as u32));
        }
    }

    #[test]
    fn insignificant_pois_are_dropped() {
        let (g, mut pois) = setup();
        // Force every POI minor: result must be empty.
        for p in &mut pois {
            p.kind = PoiKind::MinorAmenity;
        }
        assert!(filter_landmarks(&g, &pois, 100.0).is_empty());
    }

    #[test]
    fn zero_separation_keeps_all_significant() {
        let (g, pois) = setup();
        let significant = pois.iter().filter(|p| p.kind.is_significant()).count();
        let lms = filter_landmarks(&g, &pois, 0.0);
        assert_eq!(lms.len(), significant);
    }

    #[test]
    fn larger_f_keeps_fewer() {
        let (g, pois) = setup();
        let few = filter_landmarks(&g, &pois, 400.0).len();
        let many = filter_landmarks(&g, &pois, 50.0).len();
        assert!(few < many, "f=400 kept {few}, f=50 kept {many}");
    }

    #[test]
    fn transit_stops_win_conflicts() {
        let (g, pois) = setup();
        let lms = filter_landmarks(&g, &pois, 200.0);
        // The first landmarks must be transit stops (processed first).
        let transit_nodes: std::collections::HashSet<_> = pois
            .iter()
            .filter(|p| p.kind == PoiKind::TransitStop)
            .map(|p| (p.point.lat.to_bits(), p.point.lon.to_bits()))
            .collect();
        let first = &lms[0];
        assert!(transit_nodes.contains(&(first.point.lat.to_bits(), first.point.lon.to_bits())));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let (g, _) = setup();
        assert!(filter_landmarks(&g, &[], 100.0).is_empty());
    }
}
