//! Cluster-to-cluster distance table (paper §VI).
//!
//! > *"Note that the distance between clusters is determined by the
//! > distance between the closest pair of landmarks belonging to the two
//! > clusters, respectively."*
//!
//! The table is the workhorse of the search-time detour check
//! (`d(C,C') + d(C',v) − d(C,v) ≤ detour`), which is what lets XAR avoid
//! shortest-path computation entirely during search. It is computed with
//! one *multi-source* forward Dijkstra per cluster (all the cluster's
//! landmark way-points seeded at distance 0), parallelised across
//! clusters. Driving distances over one-way streets are asymmetric, so
//! the table is stored directed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::landmarks::Landmark;
use crate::region::ClusterId;
use xar_roadnet::RoadGraph;

/// Dense directed cluster-to-cluster driving distances, metres.
#[derive(Debug, Clone)]
pub struct ClusterDistances {
    k: usize,
    /// Row-major `k x k`; `f32::INFINITY` when unreachable or beyond the
    /// computation bound.
    dist: Vec<f32>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    cost: f64,
    node: u32,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.total_cmp(&self.cost).then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ClusterDistances {
    /// Compute the table.
    ///
    /// * `cluster_of[l]` maps landmark index → cluster.
    /// * `k` is the number of clusters.
    /// * `max_dist_m` bounds each search; distances beyond it are
    ///   recorded as `INFINITY`. Pass `f64::INFINITY` for the full
    ///   table (the ride logic only ever consults distances up to the
    ///   maximum detour, so a finite bound saves pre-processing time
    ///   without changing behaviour).
    pub fn compute(
        graph: &RoadGraph,
        landmarks: &[Landmark],
        cluster_of: &[ClusterId],
        k: usize,
        max_dist_m: f64,
    ) -> Self {
        assert_eq!(landmarks.len(), cluster_of.len(), "one cluster per landmark");
        let n_nodes = graph.node_count();
        // node -> cluster of the landmark snapped there (for target
        // detection); a node can host landmarks of several clusters if
        // snaps collide, so keep a small list.
        let mut clusters_at_node: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        for lm in landmarks {
            let c = cluster_of[lm.id.index()].0;
            if !clusters_at_node[lm.node.index()].contains(&c) {
                clusters_at_node[lm.node.index()].push(c);
            }
        }
        // Sources per cluster.
        let mut sources: Vec<Vec<u32>> = vec![Vec::new(); k];
        for lm in landmarks {
            sources[cluster_of[lm.id.index()].index()].push(lm.node.0);
        }

        let mut dist = vec![f32::INFINITY; k * k];
        if k == 0 {
            return Self { k, dist };
        }
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(k);
        let chunk = k.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, rows) in dist.chunks_mut(chunk * k).enumerate() {
                let sources = &sources;
                let clusters_at_node = &clusters_at_node;
                scope.spawn(move || {
                    let mut node_dist = vec![f64::INFINITY; n_nodes];
                    let mut touched: Vec<u32> = Vec::new();
                    for (local, row) in rows.chunks_mut(k).enumerate() {
                        let c = t * chunk + local;
                        multi_source_dijkstra(
                            graph,
                            &sources[c],
                            max_dist_m,
                            &mut node_dist,
                            &mut touched,
                            |node, d| {
                                for &other in &clusters_at_node[node as usize] {
                                    let cell = &mut row[other as usize];
                                    if (d as f32) < *cell {
                                        *cell = d as f32;
                                    }
                                }
                            },
                        );
                        // Reset only the touched entries for the next row.
                        for &n in &touched {
                            node_dist[n as usize] = f64::INFINITY;
                        }
                        touched.clear();
                    }
                });
            }
        });
        Self { k, dist }
    }

    /// Number of clusters.
    #[inline]
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Directed driving distance from cluster `a` to cluster `b`
    /// (closest landmark pair); `INFINITY` when unknown.
    #[inline]
    pub fn dist(&self, a: ClusterId, b: ClusterId) -> f64 {
        f64::from(self.dist[a.index() * self.k + b.index()])
    }

    /// Heap bytes held by the table (index-size accounting — this is
    /// the dominant term of Figure 3c's memory curve).
    pub fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<f32>()
    }

    /// The raw row-major distances (persistence).
    pub(crate) fn raw(&self) -> &[f32] {
        &self.dist
    }

    /// Rebuild from raw parts (persistence).
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != k * k`.
    pub(crate) fn from_raw(k: usize, dist: Vec<f32>) -> Self {
        assert_eq!(dist.len(), k * k, "cluster distance matrix must be k^2");
        Self { k, dist }
    }
}

/// Multi-source bounded Dijkstra (forward/driving), invoking `on_settle`
/// for every settled node. `node_dist` must be all-INFINITY on entry;
/// settled/visited node ids are appended to `touched`.
fn multi_source_dijkstra(
    graph: &RoadGraph,
    sources: &[u32],
    max_dist_m: f64,
    node_dist: &mut [f64],
    touched: &mut Vec<u32>,
    mut on_settle: impl FnMut(u32, f64),
) {
    let mut heap = BinaryHeap::new();
    for &s in sources {
        if node_dist[s as usize] > 0.0 {
            node_dist[s as usize] = 0.0;
            touched.push(s);
            heap.push(Entry { cost: 0.0, node: s });
        }
    }
    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > node_dist[node as usize] {
            continue;
        }
        on_settle(node, cost);
        for e in graph.out_edges(xar_roadnet::NodeId(node)) {
            let nd = cost + e.len_m;
            if nd <= max_dist_m && nd < node_dist[e.to.index()] {
                if node_dist[e.to.index()] == f64::INFINITY {
                    touched.push(e.to.0);
                }
                node_dist[e.to.index()] = nd;
                heap.push(Entry { cost: nd, node: e.to.0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::filter_landmarks;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig, ShortestPaths};

    fn setup() -> (RoadGraph, Vec<Landmark>, Vec<ClusterId>, usize) {
        let g = CityConfig::test_city(8).generate();
        let pois = sample_pois(&g, &PoiConfig { count: 300, ..Default::default() });
        let lms = filter_landmarks(&g, &pois, 350.0);
        assert!(lms.len() >= 6);
        let k = 3;
        let cl: Vec<ClusterId> = lms.iter().map(|l| ClusterId(l.id.0 % k as u32)).collect();
        (g, lms, cl, k)
    }

    #[test]
    fn self_distance_is_zero() {
        let (g, lms, cl, k) = setup();
        let cd = ClusterDistances::compute(&g, &lms, &cl, k, f64::INFINITY);
        for c in 0..k as u32 {
            assert_eq!(cd.dist(ClusterId(c), ClusterId(c)), 0.0);
        }
    }

    #[test]
    fn matches_brute_force_closest_pair() {
        let (g, lms, cl, k) = setup();
        let cd = ClusterDistances::compute(&g, &lms, &cl, k, f64::INFINITY);
        let sp = ShortestPaths::driving(&g);
        for a in 0..k as u32 {
            for b in 0..k as u32 {
                let mut best = f64::INFINITY;
                for la in lms.iter().filter(|l| cl[l.id.index()] == ClusterId(a)) {
                    for lb in lms.iter().filter(|l| cl[l.id.index()] == ClusterId(b)) {
                        if let Some(d) = sp.cost(la.node, lb.node) {
                            best = best.min(d);
                        }
                    }
                }
                let got = cd.dist(ClusterId(a), ClusterId(b));
                if best.is_infinite() {
                    assert!(got.is_infinite());
                } else {
                    assert!((got - best).abs() < 0.5, "{a}->{b}: {got} vs {best}");
                }
            }
        }
    }

    #[test]
    fn bound_truncates_far_distances() {
        let (g, lms, cl, k) = setup();
        let full = ClusterDistances::compute(&g, &lms, &cl, k, f64::INFINITY);
        let bounded = ClusterDistances::compute(&g, &lms, &cl, k, 300.0);
        for a in 0..k as u32 {
            for b in 0..k as u32 {
                let (fa, ba) = (full.dist(ClusterId(a), ClusterId(b)), bounded.dist(ClusterId(a), ClusterId(b)));
                if fa <= 300.0 {
                    assert!((fa - ba).abs() < 0.5);
                } else {
                    assert!(ba.is_infinite());
                }
            }
        }
    }

    #[test]
    fn empty_is_empty() {
        let (g, _, _, _) = setup();
        let cd = ClusterDistances::compute(&g, &[], &[], 0, f64::INFINITY);
        assert!(cd.is_empty());
    }
}
