//! Three-tiered hierarchical region discretization (paper §IV–§V).
//!
//! The region hierarchy is *region → clusters → landmarks → grids →
//! point locations*, with the cross-level association of grids directly
//! to clusters through the walkable-cluster lists. This crate implements
//! the entire pre-processing unit of the XAR architecture (Figure 1):
//!
//! * [`landmarks`] — landmark extraction: the minimum-separation filter
//!   (`f`) over significant POIs (Definition 2);
//! * [`metric`] — the pairwise inter-landmark driving-distance table
//!   ("distances between landmarks" stored by the in-memory index,
//!   §III), with max-symmetrization so the clustering algorithms work on
//!   a true metric even over one-way streets;
//! * [`ilp`] — the CLUSTERMINIMIZATION integer program of §V: feasibility
//!   validation and combinatorial lower bounds;
//! * [`exact`] — exact minimum clique cover by branch-and-bound, the
//!   ground truth the approximation algorithms are property-tested
//!   against (Theorem 4 reduces CLUSTERMINIMIZATION to clique cover);
//! * [`kcenter`] — Gonzalez's 2-approximate GREEDY for metric k-center;
//! * [`greedy_search`] — GREEDYSEARCH: binary search over k invoking
//!   GREEDY, with the Theorem 6 bicriteria guarantee
//!   `(k_ALG ≤ k_OPT, diameter ≤ 4δ)`;
//! * [`assoc`] — grid/node → landmark association within `Δ` driving
//!   distance, and the walkable-cluster lists within `W` walking
//!   distance, sorted by non-decreasing walking distance;
//! * [`cluster_distance`] — the cluster-to-cluster distance table
//!   (closest landmark pair, §VI);
//! * [`region`] — the [`region::RegionIndex`]: the one-shot
//!   pre-processing pipeline producing everything the runtime needs.
//!
//! ```
//! use xar_discretize::greedy_search::greedy_search;
//! use xar_discretize::kcenter::FnMetric;
//!
//! // Ten landmarks on a line, 1.0 apart; inter-landmark threshold δ = 2.
//! let metric = FnMetric::new(10, |i, j| (i as f64 - j as f64).abs());
//! let out = greedy_search(&metric, 2.0);
//! // Theorem 6 bicriteria guarantee: no more clusters than OPT needs,
//! // with every cluster diameter at most 4δ.
//! assert!(out.clustering.k <= 10);
//! assert!(out.clustering.max_diameter(&metric) <= 4.0 * 2.0);
//! ```

#![warn(missing_docs)]

pub mod assoc;
pub mod cluster_distance;
pub mod exact;
pub mod greedy_search;
pub mod ilp;
pub mod kcenter;
pub mod landmarks;
pub mod metric;
pub mod persist;
pub mod region;

pub use greedy_search::{Clustering, GreedySearchOutcome};
pub use kcenter::KCenterResult;
pub use landmarks::{Landmark, LandmarkId};
pub use metric::LandmarkMetric;
pub use assoc::{NodeAssociation, WalkEntry};
pub use region::{ClusterGoal, ClusterId, RegionConfig, RegionIndex};
