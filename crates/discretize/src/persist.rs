//! Persistence of the pre-processing output.
//!
//! "This pre-processing needs to be done once before deploying the
//! system for each region" (§III) — so a deployment should be able to
//! save the [`RegionIndex`] and reload it at start-up instead of
//! re-running landmark filtering, clustering, the association searches
//! and the cluster-distance table. The file embeds the road graph (via
//! `xar_roadnet::io`), so one artifact fully describes a deployed
//! region.
//!
//! The derived structures that are cheap to rebuild (the implicit grid
//! and the nearest-node locator) are reconstructed at load time from
//! the stored configuration.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use xar_geo::BoundingBox;
use xar_geo::GridSpec;
use xar_roadnet::io::{read_graph, write_graph};
use xar_roadnet::{NodeId, NodeLocator};

use crate::assoc::{NodeAssociation, WalkEntry};
use crate::cluster_distance::ClusterDistances;
use crate::landmarks::{Landmark, LandmarkId};
use crate::region::{ClusterGoal, ClusterId, RegionConfig, RegionIndex};

/// Magic bytes prefixing a serialized region index.
pub const REGION_MAGIC: &[u8; 4] = b"XARR";
/// Current format version.
pub const REGION_VERSION: u16 = 1;

fn w_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

impl RegionIndex {
    /// Serialize the region (including its road graph) to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(REGION_MAGIC)?;
        w_u16(w, REGION_VERSION)?;
        write_graph(w, &self.graph)?;

        // Config.
        w_f64(w, self.config.grid_cell_m)?;
        w_f64(w, self.config.landmark_separation_m)?;
        match self.config.cluster_goal {
            ClusterGoal::Delta(d) => {
                w.write_all(&[0])?;
                w_f64(w, d)?;
            }
            ClusterGoal::FixedCount(k) => {
                w.write_all(&[1])?;
                w_u64(w, k as u64)?;
            }
        }
        w_f64(w, self.config.assoc_drive_m)?;
        w_f64(w, self.config.max_walk_m)?;
        w_f64(w, self.config.cluster_distance_bound_m)?;
        w_f64(w, self.epsilon_m)?;

        // Landmarks + cluster assignment.
        w_u32(w, self.landmarks.len() as u32)?;
        for lm in &self.landmarks {
            w_f64(w, lm.point.lat)?;
            w_f64(w, lm.point.lon)?;
            w_u32(w, lm.node.0)?;
        }
        for c in &self.cluster_of {
            w_u32(w, c.0)?;
        }
        w_u32(w, self.cluster_count() as u32)?;

        // Node association tables.
        w_u32(w, self.assoc.landmark_of.len() as u32)?;
        for entry in &self.assoc.landmark_of {
            match entry {
                Some((l, d)) => {
                    w.write_all(&[1])?;
                    w_u32(w, l.0)?;
                    w_f32(w, *d)?;
                }
                None => w.write_all(&[0])?,
            }
        }
        for list in &self.assoc.walkable {
            w_u32(w, list.len() as u32)?;
            for e in list {
                w_u32(w, e.cluster.0)?;
                w_u32(w, e.landmark.0)?;
                w_f32(w, e.walk_m)?;
            }
        }

        // Cluster distance matrix.
        for &d in self.cluster_dist.raw() {
            w_f32(w, d)?;
        }
        Ok(())
    }

    /// Deserialize a region from `r`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on magic/version mismatch or malformed
    /// content.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != REGION_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a XAR region index"));
        }
        let version = r_u16(r)?;
        if version != REGION_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported region version {version}"),
            ));
        }
        let graph = Arc::new(read_graph(r)?);
        let n_nodes = graph.node_count();

        let grid_cell_m = r_f64(r)?;
        let landmark_separation_m = r_f64(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let cluster_goal = match tag[0] {
            0 => ClusterGoal::Delta(r_f64(r)?),
            1 => ClusterGoal::FixedCount(r_u64(r)? as usize),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown cluster goal tag {other}"),
                ))
            }
        };
        let assoc_drive_m = r_f64(r)?;
        let max_walk_m = r_f64(r)?;
        let cluster_distance_bound_m = r_f64(r)?;
        // The grid and locator are rebuilt from these values below;
        // GridSpec::new asserts on non-positive cell sizes, so corrupt
        // floats must be rejected here as data errors, not panics.
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !(positive(grid_cell_m)
            && positive(landmark_separation_m)
            && positive(assoc_drive_m)
            && positive(max_walk_m)
            && positive(cluster_distance_bound_m))
        {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "non-positive config value"));
        }
        if let ClusterGoal::Delta(d) = cluster_goal {
            if !(d.is_finite() && d >= 0.0) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "invalid delta"));
            }
        }
        let config = RegionConfig {
            grid_cell_m,
            landmark_separation_m,
            cluster_goal,
            assoc_drive_m,
            max_walk_m,
            cluster_distance_bound_m,
        };
        let epsilon_m = r_f64(r)?;

        let n_lm = r_u32(r)? as usize;
        if n_lm > n_nodes.max(1) * 16 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible landmark count"));
        }
        let mut landmarks = Vec::with_capacity(n_lm);
        for i in 0..n_lm {
            let lat = r_f64(r)?;
            let lon = r_f64(r)?;
            let node = r_u32(r)?;
            if node as usize >= n_nodes
                || !((-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon))
            {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "landmark out of range"));
            }
            landmarks.push(Landmark {
                id: LandmarkId(i as u32),
                point: xar_geo::GeoPoint::new(lat, lon),
                node: NodeId(node),
            });
        }
        let mut cluster_of = Vec::with_capacity(n_lm);
        for _ in 0..n_lm {
            cluster_of.push(ClusterId(r_u32(r)?));
        }
        let k = r_u32(r)? as usize;
        // A cluster count above the landmark count is impossible in a
        // valid file, and bounding it here prevents a corrupt header
        // from driving the k*k matrix allocation below.
        if k > n_lm || cluster_of.iter().any(|c| c.index() >= k) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cluster id out of range"));
        }
        let mut members = vec![Vec::new(); k];
        for (l, &c) in cluster_of.iter().enumerate() {
            members[c.index()].push(LandmarkId(l as u32));
        }

        let n_assoc = r_u32(r)? as usize;
        if n_assoc != n_nodes {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "association table size mismatch"));
        }
        let mut landmark_of = Vec::with_capacity(n_assoc);
        for _ in 0..n_assoc {
            let mut t = [0u8; 1];
            r.read_exact(&mut t)?;
            landmark_of.push(match t[0] {
                0 => None,
                1 => {
                    let l = r_u32(r)?;
                    let d = r_f32(r)?;
                    if l as usize >= n_lm {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, "landmark id out of range"));
                    }
                    Some((LandmarkId(l), d))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad option tag {other}"),
                    ))
                }
            });
        }
        let mut walkable = Vec::with_capacity(n_assoc);
        for _ in 0..n_assoc {
            let len = r_u32(r)? as usize;
            if len > k {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "walkable list longer than cluster count"));
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let cluster = ClusterId(r_u32(r)?);
                let landmark = LandmarkId(r_u32(r)?);
                let walk_m = r_f32(r)?;
                if cluster.index() >= k || landmark.index() >= n_lm {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "walkable entry out of range"));
                }
                list.push(WalkEntry { cluster, landmark, walk_m });
            }
            walkable.push(list);
        }
        let assoc = NodeAssociation { landmark_of, walkable };

        let mut dist = Vec::with_capacity(k * k);
        for _ in 0..k * k {
            dist.push(r_f32(r)?);
        }
        let cluster_dist = ClusterDistances::from_raw(k, dist);

        // Rebuild the cheap derived structures.
        let bbox = BoundingBox::from_points(graph.node_ids().map(|n| graph.point(n)))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty graph"))?
            .expanded(1e-3);
        let grid = GridSpec::new(bbox, config.grid_cell_m);
        let locator = NodeLocator::new(&graph, (config.grid_cell_m * 4.0).max(200.0));

        Ok(RegionIndex {
            graph,
            grid,
            locator,
            landmarks,
            cluster_of,
            members,
            assoc,
            cluster_dist,
            epsilon_m,
            config,
        })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionConfig;
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn build() -> RegionIndex {
        let graph = Arc::new(CityConfig::test_city(88).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 400, ..Default::default() });
        RegionIndex::build(
            graph,
            &pois,
            RegionConfig {
                cluster_goal: ClusterGoal::Delta(200.0),
                ..Default::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let original = build();
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        let loaded = RegionIndex::read_from(&mut buf.as_slice()).unwrap();

        assert_eq!(original.landmark_count(), loaded.landmark_count());
        assert_eq!(original.cluster_count(), loaded.cluster_count());
        assert_eq!(original.epsilon_m(), loaded.epsilon_m());
        assert_eq!(original.graph().node_count(), loaded.graph().node_count());
        // Landmark/cluster structure identical.
        for lm in original.landmarks() {
            let l2 = loaded.landmark(lm.id);
            assert_eq!(lm.node, l2.node);
            assert_eq!(original.cluster_of_landmark(lm.id), loaded.cluster_of_landmark(lm.id));
        }
        // Association and distances identical on a sample of nodes.
        for n in original.graph().node_ids().take(100) {
            assert_eq!(original.landmark_of_node(n), loaded.landmark_of_node(n));
            assert_eq!(
                original.walkable_within(n, 1_000.0),
                loaded.walkable_within(n, 1_000.0)
            );
        }
        for a in 0..original.cluster_count() as u32 {
            for b in 0..original.cluster_count() as u32 {
                let (x, y) = (
                    original.cluster_distance(ClusterId(a), ClusterId(b)),
                    loaded.cluster_distance(ClusterId(a), ClusterId(b)),
                );
                assert!(x == y || (x.is_infinite() && y.is_infinite()));
            }
        }
        // Snapping behaves identically (grid + locator rebuilt).
        let p = original.grid().bbox().center();
        assert_eq!(original.snap(&p), loaded.snap(&p));
        assert_eq!(original.snap_exact(&p), loaded.snap_exact(&p));
    }

    #[test]
    fn save_and_load_file() {
        let original = build();
        let dir = std::env::temp_dir().join("xar_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.xarr");
        original.save(&path).unwrap();
        let loaded = RegionIndex::load(&path).unwrap();
        assert_eq!(original.cluster_count(), loaded.cluster_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(RegionIndex::read_from(&mut &b"garbage!"[..]).is_err());
        let original = build();
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(RegionIndex::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn loaded_region_drives_a_working_engine() {
        // The loaded index must be functionally equivalent: rebuild an
        // engine on it and exercise a create+search.
        let original = build();
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        let loaded = Arc::new(RegionIndex::read_from(&mut buf.as_slice()).unwrap());
        // xar-core depends on this crate, so the engine round-trip test
        // itself lives in xar-core; here we check the load-time
        // invariants the engine relies on.
        for list in &loaded.assoc.walkable {
            for w in list.windows(2) {
                assert!(w[0].walk_m <= w[1].walk_m, "walkable order lost in round-trip");
            }
        }
        assert!(loaded.cluster_count() > 0);
    }
}
