//! The Theorem 4 reduction, executable: CLUSTERMINIMIZATION on a
//! threshold metric is exactly *minimum clique cover* on the graph
//! whose edges join landmark pairs at distance ≤ δ. These tests encode
//! classic graphs as CLUSTERMINIMIZATION instances and check the exact
//! solver recovers their known clique-cover numbers — and that the
//! GREEDYSEARCH bicriteria guarantee holds relative to those optima.

use xar_discretize::exact::exact_min_clusters;
use xar_discretize::greedy_search::greedy_search;
use xar_discretize::ilp::ClusterIlp;
use xar_discretize::kcenter::FnMetric;

/// Encode a graph as a {1, 3}-threshold metric: adjacent vertices are
/// at distance 1, non-adjacent at 3 (a valid metric: 1+1 ≥ 3 fails —
/// so use 2 for non-adjacent? 1+1 = 2 ≥ 2 ✓). With δ = 1, a cluster is
/// precisely a clique.
fn graph_metric(n: usize, edges: &[(usize, usize)]) -> FnMetric<impl Fn(usize, usize) -> f64> {
    let mut adj = vec![vec![false; n]; n];
    for &(a, b) in edges {
        adj[a][b] = true;
        adj[b][a] = true;
    }
    FnMetric::new(n, move |i, j| {
        if i == j {
            0.0
        } else if adj[i][j] {
            1.0
        } else {
            2.0
        }
    })
}

#[test]
fn five_cycle_needs_three_cliques() {
    // C5: largest clique is an edge; cover number = ceil(5/2) = 3.
    let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
    let m = graph_metric(5, &edges);
    let exact = exact_min_clusters(&m, 1.0);
    assert_eq!(exact.k, 3);
    // GREEDYSEARCH: no more clusters than optimal, diameter ≤ 4δ.
    let out = greedy_search(&m, 1.0);
    assert!(out.clustering.k <= 3);
    assert!(out.clustering.max_diameter(&m) <= 4.0);
}

#[test]
fn complete_graph_is_one_clique() {
    let n = 6;
    let edges: Vec<(usize, usize)> =
        (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
    let m = graph_metric(n, &edges);
    assert_eq!(exact_min_clusters(&m, 1.0).k, 1);
}

#[test]
fn empty_graph_needs_n_cliques() {
    let m = graph_metric(5, &[]);
    assert_eq!(exact_min_clusters(&m, 1.0).k, 5);
    // The independent-set lower bound is tight here.
    assert_eq!(ClusterIlp::new(&m, 1.0).independent_set_lower_bound(), 5);
}

#[test]
fn petersen_graph_cover_number() {
    // The Petersen graph is triangle-free: cliques are edges or
    // vertices; a perfect matching (5 edges) covers all 10 vertices, so
    // the clique cover number is 5.
    let edges = [
        // outer 5-cycle
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
        // spokes
        (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
        // inner pentagram
        (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
    ];
    let m = graph_metric(10, &edges);
    let exact = exact_min_clusters(&m, 1.0);
    assert_eq!(exact.k, 5);
    let ilp = ClusterIlp::new(&m, 1.0);
    assert!(ilp.is_feasible(&exact));
}

#[test]
fn bipartite_complete_k33() {
    // K_{3,3} is triangle-free: cliques are edges; perfect matching of
    // size 3 covers it.
    let edges = [(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)];
    let m = graph_metric(6, &edges);
    assert_eq!(exact_min_clusters(&m, 1.0).k, 3);
}

#[test]
fn two_triangles_sharing_a_vertex() {
    // Bowtie: {0,1,2} and {2,3,4} triangles → 2 cliques.
    let edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
    let m = graph_metric(5, &edges);
    assert_eq!(exact_min_clusters(&m, 1.0).k, 2);
}

#[test]
fn greedy_search_respects_theorem6_on_all_reduction_instances() {
    let instances: Vec<(usize, Vec<(usize, usize)>)> = vec![
        (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
        (6, vec![(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]),
        (5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]),
        (4, vec![(0, 1), (2, 3)]),
    ];
    for (n, edges) in instances {
        let m = graph_metric(n, &edges);
        let exact = exact_min_clusters(&m, 1.0);
        let out = greedy_search(&m, 1.0);
        assert!(
            out.clustering.k <= exact.k,
            "n={n}: k_ALG {} > k_OPT {}",
            out.clustering.k,
            exact.k
        );
        assert!(out.clustering.max_diameter(&m) <= 4.0 + 1e-9);
    }
}
