//! Property-based tests of the discretization algorithms on random
//! metric instances.

use proptest::prelude::*;
use xar_discretize::exact::exact_min_clusters;
use xar_discretize::greedy_search::{cluster_with_k, greedy_search};
use xar_discretize::ilp::ClusterIlp;
use xar_discretize::kcenter::{greedy_k_center, FnMetric, PointMetric};

/// Random points in the plane — always a genuine metric.
fn planar_points(max_n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 2..max_n)
}

fn metric_of(points: Vec<(f64, f64)>) -> FnMetric<impl Fn(usize, usize) -> f64> {
    FnMetric::new(points.len(), move |i, j| {
        let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
        (dx * dx + dy * dy).sqrt()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Gonzalez GREEDY covers all points, never increases radius with
    /// k, and stays within 2x of any sampled center set (a necessary
    /// consequence of the 2-approximation).
    #[test]
    fn kcenter_basic_properties(points in planar_points(20), k in 1usize..8) {
        let n = points.len();
        let m = metric_of(points);
        let r = greedy_k_center(&m, k);
        prop_assert_eq!(r.assignment.len(), n);
        let k_eff = k.min(n);
        prop_assert_eq!(r.centers.len(), k_eff);
        // Radius consistent with the assignment.
        let mut radius = 0.0f64;
        for (p, &slot) in r.assignment.iter().enumerate() {
            radius = radius.max(m.dist(p, r.centers[slot]));
        }
        prop_assert!((radius - r.radius).abs() < 1e-9);
        // Monotone in k.
        if k_eff < n {
            let r2 = greedy_k_center(&m, k_eff + 1);
            prop_assert!(r2.radius <= r.radius + 1e-9);
        }
    }

    /// Theorem 6 bicriteria on random planar instances, checked against
    /// the exact branch-and-bound optimum.
    #[test]
    fn greedy_search_bicriteria(points in planar_points(12), delta in 50.0f64..600.0) {
        let m = metric_of(points);
        let exact = exact_min_clusters(&m, delta);
        let out = greedy_search(&m, delta);
        prop_assert!(
            out.clustering.k <= exact.k,
            "k_ALG {} > k_OPT {}", out.clustering.k, exact.k
        );
        prop_assert!(
            out.clustering.max_diameter(&m) <= 4.0 * delta + 1e-6,
            "diameter {} > 4 delta {}", out.clustering.max_diameter(&m), 4.0 * delta
        );
        prop_assert!(out.clustering.radius <= 2.0 * delta + 1e-6);
    }

    /// The exact solution is ILP-feasible and at least the
    /// independent-set lower bound.
    #[test]
    fn exact_is_sandwiched(points in planar_points(10), delta in 50.0f64..600.0) {
        let m = metric_of(points);
        let exact = exact_min_clusters(&m, delta);
        let ilp = ClusterIlp::new(&m, delta);
        prop_assert!(ilp.is_feasible(&exact));
        prop_assert!(ilp.independent_set_lower_bound() <= exact.k);
        // Exact is minimal among feasible solutions we can generate:
        // merging any two clusters must violate feasibility (otherwise
        // exact wasn't minimal — a weaker but useful local check).
        if exact.k >= 2 {
            let clusters = exact.clusters();
            let mut can_merge = false;
            'outer: for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    let ok = clusters[a].iter().all(|&x| {
                        clusters[b].iter().all(|&y| m.dist(x, y) <= delta + 1e-9)
                    });
                    if ok {
                        can_merge = true;
                        break 'outer;
                    }
                }
            }
            prop_assert!(!can_merge, "two clusters of the optimum could be merged");
        }
    }

    /// cluster_with_k partitions all points into exactly k groups.
    #[test]
    fn fixed_k_partitions(points in planar_points(16), k in 1usize..6) {
        let n = points.len();
        let m = metric_of(points);
        let c = cluster_with_k(&m, k);
        prop_assert_eq!(c.k, k.min(n));
        let mut seen: Vec<usize> = c.clusters().into_iter().flatten().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}

mod persist_fuzz {
    use proptest::prelude::*;
    use std::sync::Arc;
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn serialized_region() -> &'static Vec<u8> {
        use std::sync::OnceLock;
        static BUF: OnceLock<Vec<u8>> = OnceLock::new();
        BUF.get_or_init(|| {
            let graph = Arc::new(CityConfig::manhattan(10, 10, 6).generate());
            let pois = sample_pois(&graph, &PoiConfig { count: 150, ..Default::default() });
            let region = RegionIndex::build(
                graph,
                &pois,
                RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
            );
            let mut buf = Vec::new();
            region.write_to(&mut buf).unwrap();
            buf
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Corrupting any single byte of a region file must produce a
        /// clean error or a successfully loaded (possibly semantically
        /// different) region — never a panic or a runaway allocation.
        #[test]
        fn single_byte_corruption_never_panics(pos in 0usize..16_384, val in any::<u8>()) {
            let mut buf = serialized_region().clone();
            let idx = pos % buf.len();
            buf[idx] = val;
            let _ = RegionIndex::read_from(&mut buf.as_slice()); // Ok or Err, both fine
        }

        /// Random garbage never panics the reader.
        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert!(RegionIndex::read_from(&mut data.as_slice()).is_err() || data.len() > 64);
        }

        /// Truncation at any point is a clean error.
        #[test]
        fn truncation_is_clean_error(frac in 0.0f64..0.999) {
            let buf = serialized_region();
            let cut = (buf.len() as f64 * frac) as usize;
            prop_assert!(RegionIndex::read_from(&mut &buf[..cut]).is_err());
        }
    }
}
