//! The T-Share engine: create / dual-side search / book / track.
//!
//! The search path is deliberately faithful to the baseline's cost
//! profile: an expanding ring scan over grid cells followed by a *lazy
//! shortest-path* feasibility check per candidate taxi. Those
//! per-candidate shortest paths are exactly what makes T-Share's search
//! slow relative to XAR (Figure 4a), and make its search time grow
//! linearly with the number of requested matches `k` (Figure 5a) — in
//! [`DistanceMode::Haversine`] the shortest paths are replaced by the
//! haversine formula and the growth in `k` remains, reproducing the
//! paper's finding that "higher search time of T-Share is not just
//! because of shortest path calculation, but also due to the way rides
//! are indexed".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xar_geo::{BoundingBox, GeoPoint, GridSpec};
use xar_roadnet::{NodeId, NodeLocator, RoadGraph, Route, ShortestPaths};

use crate::index::{CellEntry, GridTaxiIndex};
use crate::metrics::TShareMetrics;
use crate::taxi::{CellVisit, Taxi, TaxiId};

/// How the feasibility check measures distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMode {
    /// Real shortest paths over the road graph (the baseline's "lazy
    /// shortest path calculation").
    ShortestPath,
    /// Haversine distance with a circuity factor — "negligible constant
    /// time" (§X.B.2's alternate setting).
    Haversine,
}

/// T-Share configuration. Defaults follow the XAR paper's comparison
/// setup: 1 km grid cells and an 80-cell search cap ≈ 4 km max detour.
#[derive(Debug, Clone)]
pub struct TShareConfig {
    /// Grid cell side, metres.
    pub grid_cell_m: f64,
    /// Maximum number of neighbouring cells explored per search side.
    pub max_search_cells: usize,
    /// Maximum detour a taxi accepts for one match, metres.
    pub max_detour_m: f64,
    /// Distance mode of the feasibility check.
    pub distance_mode: DistanceMode,
    /// Historical average speed for ETA compensation, m/s.
    pub historical_speed_mps: f64,
    /// Circuity factor applied to haversine distances (road distance ≈
    /// haversine × factor).
    pub haversine_circuity: f64,
}

impl Default for TShareConfig {
    fn default() -> Self {
        Self {
            grid_cell_m: 1_000.0,
            max_search_cells: 80,
            max_detour_m: 4_000.0,
            distance_mode: DistanceMode::ShortestPath,
            historical_speed_mps: 8.0,
            haversine_circuity: 1.3,
        }
    }
}

/// A rider request in the T-Share model: the taxi detours to the exact
/// pick-up / drop-off points (no walking).
#[derive(Debug, Clone, Copy)]
pub struct TShareRequest {
    /// Pick-up location.
    pub pickup: GeoPoint,
    /// Drop-off location.
    pub dropoff: GeoPoint,
    /// Earliest pick-up, absolute seconds.
    pub window_start_s: f64,
    /// Latest pick-up, absolute seconds.
    pub window_end_s: f64,
}

/// A feasible match produced by the T-Share search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TShareMatch {
    /// The matched taxi.
    pub taxi: TaxiId,
    /// Snapped pick-up way-point.
    pub pickup_node: NodeId,
    /// Snapped drop-off way-point.
    pub dropoff_node: NodeId,
    /// Route way-point after which the pick-up is inserted.
    pub pickup_route_idx: usize,
    /// Route way-point after which the drop-off is inserted.
    pub dropoff_route_idx: usize,
    /// Estimated pick-up time, absolute seconds.
    pub pickup_eta_s: f64,
    /// Estimated total detour of the insertion, metres.
    pub detour_m: f64,
}

/// Operation counters.
#[derive(Debug, Default)]
pub struct TShareStats {
    /// Search operations served.
    pub searches: AtomicU64,
    /// Taxis created.
    pub creates: AtomicU64,
    /// Bookings confirmed.
    pub bookings: AtomicU64,
    /// Shortest-path computations (creation + booking + *search* — the
    /// baseline, unlike XAR, pays them at search time).
    pub shortest_paths: AtomicU64,
}

/// The T-Share baseline engine.
pub struct TShareEngine {
    graph: Arc<RoadGraph>,
    grid: GridSpec,
    locator: NodeLocator,
    config: TShareConfig,
    taxis: HashMap<TaxiId, Taxi>,
    index: GridTaxiIndex,
    next_id: u64,
    stats: TShareStats,
    metrics: TShareMetrics,
}

impl TShareEngine {
    /// Create an engine over a road graph.
    pub fn new(graph: Arc<RoadGraph>, config: TShareConfig) -> Self {
        Self::with_metrics(graph, config, TShareMetrics::new())
    }

    /// Create an engine recording into caller-supplied metrics (for
    /// sharing one registry with the XAR engine under comparison).
    pub fn with_metrics(graph: Arc<RoadGraph>, config: TShareConfig, metrics: TShareMetrics) -> Self {
        let bbox = BoundingBox::from_points(graph.node_ids().map(|n| graph.point(n)))
            .expect("non-empty graph")
            .expanded(1e-3);
        let grid = GridSpec::new(bbox, config.grid_cell_m);
        let locator = NodeLocator::new(&graph, 250.0);
        Self {
            graph,
            grid,
            locator,
            config,
            taxis: HashMap::new(),
            index: GridTaxiIndex::new(),
            next_id: 1,
            stats: TShareStats::default(),
            metrics,
        }
    }

    /// Latency and candidate-set telemetry.
    pub fn metrics(&self) -> &TShareMetrics {
        &self.metrics
    }

    /// The underlying road graph.
    pub fn graph(&self) -> &Arc<RoadGraph> {
        &self.graph
    }

    /// Operation counters.
    pub fn stats(&self) -> &TShareStats {
        &self.stats
    }

    /// The taxi with id `id`.
    pub fn taxi(&self, id: TaxiId) -> Option<&Taxi> {
        self.taxis.get(&id)
    }

    /// Number of live taxis.
    pub fn taxi_count(&self) -> usize {
        self.taxis.len()
    }

    /// Distance between two way-points under the configured mode.
    fn check_distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        match self.config.distance_mode {
            DistanceMode::ShortestPath => {
                self.stats.shortest_paths.fetch_add(1, Ordering::Relaxed);
                let _sp_trace = xar_obs::trace::span("shortest_path");
                ShortestPaths::driving(&self.graph).cost(a, b)
            }
            DistanceMode::Haversine => Some(
                self.graph.point(a).haversine_m(&self.graph.point(b)) * self.config.haversine_circuity,
            ),
        }
    }

    /// Register a taxi (ride offer): one shortest path for the route,
    /// then cheap grid-cell list insertions.
    pub fn create_taxi(
        &mut self,
        source: GeoPoint,
        destination: GeoPoint,
        departure_s: f64,
        seats: u8,
    ) -> Option<TaxiId> {
        let _span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.create_ns));
        let _tspan = xar_obs::trace::span("create");
        let src = self.locator.nearest(&self.graph, &source).0;
        let dst = self.locator.nearest(&self.graph, &destination).0;
        self.stats.shortest_paths.fetch_add(1, Ordering::Relaxed);
        let sp = ShortestPaths::driving(&self.graph);
        let path = {
            let _sp_trace = xar_obs::trace::span("shortest_path");
            sp.path(src, dst)?
        };
        let route = Route::from_path_result(&self.graph, &path)?;
        let id = TaxiId(self.next_id);
        self.next_id += 1;
        let last = route.len() - 1;
        let mut taxi = Taxi {
            id,
            source,
            destination,
            departure_s,
            seats_available: seats,
            via_points: vec![0, last],
            route,
            cells: Vec::new(),
            detour_used_m: 0.0,
            progress_idx: 0,
        };
        Self::index_taxi(&self.grid, &self.graph, &mut taxi, &mut self.index, 0);
        self.taxis.insert(id, taxi);
        self.stats.creates.fetch_add(1, Ordering::Relaxed);
        Some(id)
    }

    /// (Re)compute the cell visits of a taxi from way-point `from_idx`
    /// and insert them into the grid index.
    fn index_taxi(
        grid: &GridSpec,
        graph: &RoadGraph,
        taxi: &mut Taxi,
        index: &mut GridTaxiIndex,
        from_idx: usize,
    ) {
        let mut cells: Vec<CellVisit> = Vec::new();
        let nodes = taxi.route.nodes();
        let mut cur: Option<xar_geo::GridId> = None;
        for (idx, &n) in nodes.iter().enumerate().skip(from_idx) {
            let cell = grid.grid_of(&graph.point(n));
            if cur == Some(cell) {
                continue;
            }
            cur = Some(cell);
            cells.push(CellVisit { cell, route_idx: idx, eta_s: taxi.eta_at(idx) });
        }
        for v in &cells {
            index.insert(v.cell, CellEntry { taxi: taxi.id, eta_s: v.eta_s, route_idx: v.route_idx });
        }
        taxi.cells = cells;
    }

    /// Remove every index entry of `taxi`.
    fn deindex_taxi(taxi: &Taxi, index: &mut GridTaxiIndex) {
        let mut seen = std::collections::HashSet::new();
        for v in &taxi.cells {
            if seen.insert(v.cell.packed()) {
                index.remove_taxi(v.cell, taxi.id);
            }
        }
    }

    /// **Search**: dual-side *incrementally* expanding scan with a lazy
    /// shortest-path feasibility check per candidate. Rings around the
    /// pick-up and drop-off cells grow in lockstep; a taxi becomes a
    /// candidate once it has been seen on both sides, and the expansion
    /// stops as soon as `k` feasible matches are confirmed (the paper's
    /// modification: "search the region until it finds all the taxis
    /// ... which can be matched" — with `k = usize::MAX` the whole
    /// 80-cell region is scanned). This incremental structure is what
    /// makes T-Share's search cost grow with `k` (Figure 5a).
    pub fn search(&self, req: &TShareRequest, k: usize) -> Vec<TShareMatch> {
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let _span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.search_ns));
        let mut tspan = xar_obs::trace::span("search");
        if k == 0 {
            return vec![];
        }
        // Outcome-labeled latency: misses scan the full ring budget, so
        // their distribution is the interesting one on a dashboard.
        let outcome_hist = |hit: bool| {
            &self.metrics.search_ns_outcome[usize::from(!hit)]
        };
        let pickup_node = self.locator.nearest(&self.graph, &req.pickup).0;
        let dropoff_node = self.locator.nearest(&self.graph, &req.dropoff).0;
        let p_center = self.grid.grid_of(&req.pickup);
        let d_center = self.grid.grid_of(&req.dropoff);

        let mut p_seen: HashMap<TaxiId, CellEntry> = HashMap::new();
        let mut d_seen: HashMap<TaxiId, CellEntry> = HashMap::new();
        let mut checked: std::collections::HashSet<TaxiId> = Default::default();
        let mut out = Vec::new();
        let (mut scanned_p, mut scanned_d) = (0usize, 0usize);
        let max_cells = self.config.max_search_cells;
        let max_radius = self.grid.cols().max(self.grid.rows());

        let merge = |map: &mut HashMap<TaxiId, CellEntry>, e: &CellEntry| {
            map.entry(e.taxi)
                .and_modify(|cur| {
                    if e.eta_s < cur.eta_s {
                        *cur = *e;
                    }
                })
                .or_insert(*e);
        };

        for radius in 0..=max_radius {
            if scanned_p >= max_cells && scanned_d >= max_cells {
                break;
            }
            let slack =
                f64::from(radius) * self.config.grid_cell_m / self.config.historical_speed_mps;
            if scanned_p < max_cells {
                for cell in self.grid.ring(p_center, radius) {
                    scanned_p += 1;
                    for e in self.index.range_eta(
                        cell,
                        req.window_start_s - slack,
                        req.window_end_s + slack,
                    ) {
                        merge(&mut p_seen, e);
                    }
                    if scanned_p >= max_cells {
                        break;
                    }
                }
            }
            if scanned_d < max_cells {
                for cell in self.grid.ring(d_center, radius) {
                    scanned_d += 1;
                    for e in self.index.range_eta(cell, req.window_start_s - slack, f64::INFINITY) {
                        merge(&mut d_seen, e);
                    }
                    if scanned_d >= max_cells {
                        break;
                    }
                }
            }
            // Feasibility-check every taxi now present on both sides,
            // in temporal order of pick-up arrival.
            let mut ready: Vec<(TaxiId, CellEntry)> = p_seen
                .iter()
                .filter(|(t, _)| d_seen.contains_key(t) && !checked.contains(t))
                .map(|(t, e)| (*t, *e))
                .collect();
            ready.sort_by(|a, b| a.1.eta_s.total_cmp(&b.1.eta_s).then(a.0.cmp(&b.0)));
            for (tid, p_entry) in ready {
                checked.insert(tid);
                if let Some(m) =
                    self.feasibility_check(&tid, &p_entry, &d_seen[&tid], pickup_node, dropoff_node, req)
                {
                    out.push(m);
                    if out.len() >= k {
                        self.metrics.search_candidates.record(checked.len() as u64);
                        outcome_hist(true).record(t0.elapsed().as_nanos() as u64);
                        tspan.attr("candidates", checked.len());
                        tspan.attr("matches", out.len());
                        return out;
                    }
                }
            }
        }
        self.metrics.search_candidates.record(checked.len() as u64);
        outcome_hist(!out.is_empty()).record(t0.elapsed().as_nanos() as u64);
        tspan.attr("candidates", checked.len());
        tspan.attr("matches", out.len());
        out
    }

    /// The lazy insertion feasibility check: up to four shortest-path
    /// (or haversine) distance computations per candidate taxi.
    fn feasibility_check(
        &self,
        tid: &TaxiId,
        p_entry: &CellEntry,
        d_entry: &CellEntry,
        pickup_node: NodeId,
        dropoff_node: NodeId,
        req: &TShareRequest,
    ) -> Option<TShareMatch> {
        let _tspan = xar_obs::trace::span("feasibility_check");
        let taxi = self.taxis.get(tid)?;
        if taxi.seats_available == 0 {
            return None;
        }
        if d_entry.route_idx < p_entry.route_idx {
            return None; // drop-off side met the route before the pick-up side
        }
        let nodes = taxi.route.nodes();
        let p_anchor = nodes[p_entry.route_idx];
        let d_anchor = nodes[d_entry.route_idx];
        let p_seg_end = taxi.via_points[taxi.segment_of(p_entry.route_idx) + 1];
        let d_seg_end = taxi.via_points[taxi.segment_of(d_entry.route_idx) + 1];
        let d1 = self.check_distance(p_anchor, pickup_node)?;
        let d2 = self.check_distance(pickup_node, nodes[p_seg_end])?;
        let pickup_detour =
            (d1 + d2 - taxi.route.dist_between(p_entry.route_idx, p_seg_end)).max(0.0);
        let d3 = self.check_distance(d_anchor, dropoff_node)?;
        let d4 = self.check_distance(dropoff_node, nodes[d_seg_end])?;
        let dropoff_detour =
            (d3 + d4 - taxi.route.dist_between(d_entry.route_idx, d_seg_end)).max(0.0);
        let detour = pickup_detour + dropoff_detour;
        if detour > self.config.max_detour_m {
            return None;
        }
        let pickup_eta = p_entry.eta_s + d1 / self.config.historical_speed_mps;
        if pickup_eta < req.window_start_s || pickup_eta > req.window_end_s {
            return None;
        }
        Some(TShareMatch {
            taxi: *tid,
            pickup_node,
            dropoff_node,
            pickup_route_idx: p_entry.route_idx,
            dropoff_route_idx: d_entry.route_idx,
            pickup_eta_s: pickup_eta,
            detour_m: detour,
        })
    }

    /// **Book** a match: splice the pick-up and drop-off into the
    /// route with fresh shortest paths and refresh the grid lists.
    pub fn book(&mut self, m: &TShareMatch) -> Option<f64> {
        let _span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.book_ns));
        let mut tspan = xar_obs::trace::span("book");
        let taxi = self.taxis.get(&m.taxi)?;
        if taxi.seats_available == 0 {
            return None;
        }
        let sp = ShortestPaths::driving(&self.graph);
        let mut n_sp = 0u64;
        let mut leg = |a: NodeId, b: NodeId| -> Option<Route> {
            n_sp += 1;
            let _sp_trace = xar_obs::trace::span("shortest_path");
            Route::from_path_result(&self.graph, &sp.path(a, b)?)
        };

        let p_seg = taxi.segment_of(m.pickup_route_idx);
        let d_seg = taxi.segment_of(m.dropoff_route_idx.max(m.pickup_route_idx));
        let old_len = taxi.route.dist_m();
        let (new_route, new_vias);
        if p_seg == d_seg {
            let s1 = taxi.via_points[p_seg];
            let s2 = taxi.via_points[p_seg + 1];
            let l1 = leg(taxi.route.nodes()[s1], m.pickup_node)?;
            let l2 = leg(m.pickup_node, m.dropoff_node)?;
            let l3 = leg(m.dropoff_node, taxi.route.nodes()[s2])?;
            let pickup_idx = s1 + l1.len() - 1;
            let dropoff_idx = pickup_idx + l2.len() - 1;
            let replacement = l1.concat(&l2).concat(&l3);
            let route = taxi.route.splice(s1, s2, &replacement);
            let delta = route.len() as isize - taxi.route.len() as isize;
            let mut vias: Vec<usize> = taxi
                .via_points
                .iter()
                .map(|&v| if v >= s2 { (v as isize + delta) as usize } else { v })
                .collect();
            vias.insert(p_seg + 1, pickup_idx);
            vias.insert(p_seg + 2, dropoff_idx);
            new_route = route;
            new_vias = vias;
        } else {
            let s1 = taxi.via_points[p_seg];
            let s2 = taxi.via_points[p_seg + 1];
            let l1 = leg(taxi.route.nodes()[s1], m.pickup_node)?;
            let l2 = leg(m.pickup_node, taxi.route.nodes()[s2])?;
            let pickup_idx = s1 + l1.len() - 1;
            let mid = taxi.route.splice(s1, s2, &l1.concat(&l2));
            let shift1 = mid.len() as isize - taxi.route.len() as isize;
            let at1 = |v: usize| if v >= s2 { (v as isize + shift1) as usize } else { v };
            let d1 = at1(taxi.via_points[d_seg]);
            let d2 = at1(taxi.via_points[d_seg + 1]);
            let l3 = leg(mid.nodes()[d1], m.dropoff_node)?;
            let l4 = leg(m.dropoff_node, mid.nodes()[d2])?;
            let dropoff_idx = d1 + l3.len() - 1;
            let route = mid.splice(d1, d2, &l3.concat(&l4));
            let shift2 = route.len() as isize - mid.len() as isize;
            let at2 = |v: usize| if v >= d2 { (v as isize + shift2) as usize } else { v };
            let mut vias: Vec<usize> = taxi.via_points.iter().map(|&v| at2(at1(v))).collect();
            vias.insert(p_seg + 1, pickup_idx);
            vias.insert(d_seg + 2, dropoff_idx);
            new_route = route;
            new_vias = vias;
        }
        self.stats.shortest_paths.fetch_add(n_sp, Ordering::Relaxed);
        let detour = (new_route.dist_m() - old_len).max(0.0);

        let taxi = self.taxis.get_mut(&m.taxi).expect("checked above");
        Self::deindex_taxi(taxi, &mut self.index);
        taxi.route = new_route;
        taxi.via_points = new_vias;
        taxi.seats_available -= 1;
        taxi.detour_used_m += detour;
        let from = taxi.progress_idx;
        // Split borrow: take the taxi out, index, put back.
        let mut owned = self.taxis.remove(&m.taxi).expect("present");
        Self::index_taxi(&self.grid, &self.graph, &mut owned, &mut self.index, from);
        self.taxis.insert(m.taxi, owned);
        self.stats.bookings.fetch_add(1, Ordering::Relaxed);
        tspan.attr("taxi", m.taxi.0);
        tspan.attr("shortest_paths", n_sp);
        tspan.attr("detour_m", detour);
        Some(detour)
    }

    /// Advance every taxi to `now_s`: drop passed cell entries, retire
    /// finished taxis. Returns the number retired.
    pub fn track_all(&mut self, now_s: f64) -> usize {
        let _span = xar_obs::SpanTimer::new(Arc::clone(&self.metrics.track_ns));
        let mut tspan = xar_obs::trace::span("track");
        let ids: Vec<TaxiId> = self.taxis.keys().copied().collect();
        let mut retired = 0usize;
        for id in ids {
            let taxi = self.taxis.get_mut(&id).expect("present");
            if now_s <= taxi.departure_s {
                continue;
            }
            let idx = taxi.route.index_at_time(now_s - taxi.departure_s);
            if idx + 1 >= taxi.route.len() {
                let owned = self.taxis.remove(&id).expect("present");
                Self::deindex_taxi(&owned, &mut self.index);
                retired += 1;
                continue;
            }
            taxi.progress_idx = idx;
            // Remove visits the taxi has fully passed.
            let (passed, kept): (Vec<CellVisit>, Vec<CellVisit>) =
                taxi.cells.iter().copied().partition(|v| v.route_idx < idx);
            let still: std::collections::HashSet<u64> =
                kept.iter().map(|v| v.cell.packed()).collect();
            for v in passed {
                if !still.contains(&v.cell.packed()) {
                    self.index.remove_taxi(v.cell, id);
                }
            }
            taxi.cells = kept;
        }
        tspan.attr("retired", retired);
        retired
    }

    /// Approximate heap bytes of the runtime state.
    pub fn heap_bytes(&self) -> usize {
        let taxis: usize = self.taxis.values().map(|t| t.heap_bytes()).sum();
        self.index.heap_bytes() + taxis
    }
}
