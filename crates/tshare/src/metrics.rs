//! Per-engine telemetry for the T-Share baseline, symmetric with
//! `xar_core::EngineMetrics` so the two systems' latency distributions
//! can be compared from one registry snapshot.
//!
//! | name | type | unit |
//! |------|------|------|
//! | `tshare.search_ns` | histogram | ns per search call |
//! | `tshare.create_ns` | histogram | ns per taxi creation |
//! | `tshare.book_ns` | histogram | ns per booking |
//! | `tshare.track_ns` | histogram | ns per tracking sweep |
//! | `tshare.search_candidates` | histogram | taxis feasibility-checked per search |
//! | `tshare.search_ns{outcome="hit"\|"miss"}` | histogram | search latency split by whether any match was found (misses pay the full ring expansion, so their latency profile differs) |

use std::sync::Arc;

use xar_obs::{Histogram, Registry};

/// Cached metric handles for one T-Share engine instance.
#[derive(Clone)]
pub struct TShareMetrics {
    registry: Arc<Registry>,
    /// End-to-end search latency, nanoseconds.
    pub search_ns: Arc<Histogram>,
    /// End-to-end taxi-creation latency, nanoseconds.
    pub create_ns: Arc<Histogram>,
    /// End-to-end booking latency, nanoseconds.
    pub book_ns: Arc<Histogram>,
    /// End-to-end tracking-sweep latency, nanoseconds.
    pub track_ns: Arc<Histogram>,
    /// Candidate taxis put through the lazy insertion feasibility check
    /// per search — each costs up to 4 shortest paths, which is the
    /// cost XAR's index avoids.
    pub search_candidates: Arc<Histogram>,
    /// `tshare.search_ns{outcome=…}` — search latency by outcome,
    /// index-aligned with [`SEARCH_OUTCOMES`] (`hit` = at least one
    /// match returned, `miss` = none).
    pub search_ns_outcome: [Arc<Histogram>; 2],
}

/// The `outcome` label values for [`TShareMetrics::search_ns_outcome`].
pub const SEARCH_OUTCOMES: [&str; 2] = ["hit", "miss"];

impl TShareMetrics {
    /// Fresh metrics over a new private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Metrics recording into an existing registry (so the baseline and
    /// the XAR engine can share one snapshot).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let search_ns = registry.histogram("tshare.search_ns");
        let create_ns = registry.histogram("tshare.create_ns");
        let book_ns = registry.histogram("tshare.book_ns");
        let track_ns = registry.histogram("tshare.track_ns");
        let search_candidates = registry.histogram("tshare.search_candidates");
        let search_ns_outcome =
            SEARCH_OUTCOMES.map(|o| registry.histogram_with("tshare.search_ns", &[("outcome", o)]));
        Self { registry, search_ns, create_ns, book_ns, track_ns, search_candidates, search_ns_outcome }
    }

    /// The registry backing these handles.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }
}

impl Default for TShareMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_prefixed() {
        let m = TShareMetrics::new();
        m.search_ns.record(5);
        assert!(m.registry().snapshot_json().contains("\"tshare.search_ns\""));
    }

    #[test]
    fn outcome_series_are_distinct() {
        let m = TShareMetrics::new();
        m.search_ns_outcome[0].record(10);
        m.search_ns_outcome[1].record(20);
        let json = m.registry().snapshot_json();
        assert!(json.contains("tshare.search_ns{outcome=\\\"hit\\\"}"), "{json}");
        assert!(json.contains("tshare.search_ns{outcome=\\\"miss\\\"}"), "{json}");
    }
}
