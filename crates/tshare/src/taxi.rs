//! The taxi model of the T-Share baseline.

use xar_geo::{GeoPoint, GridId};
use xar_roadnet::Route;

/// Unique taxi (ride offer) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaxiId(pub u64);

/// One grid cell on a taxi's scheduled route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellVisit {
    /// The cell.
    pub cell: GridId,
    /// Way-point index at which the route first enters the cell.
    pub route_idx: usize,
    /// Estimated arrival at the cell, absolute seconds.
    pub eta_s: f64,
}

/// A taxi with its current schedule.
#[derive(Debug, Clone)]
pub struct Taxi {
    /// Unique id.
    pub id: TaxiId,
    /// Offered origin.
    pub source: GeoPoint,
    /// Offered destination.
    pub destination: GeoPoint,
    /// Departure time, absolute seconds.
    pub departure_s: f64,
    /// Seats still free.
    pub seats_available: u8,
    /// Current scheduled route.
    pub route: Route,
    /// Way-point indices of schedule stops (source, every rider pick-up
    /// / drop-off, destination), ascending.
    pub via_points: Vec<usize>,
    /// Cells the remaining route passes through, in route order.
    pub cells: Vec<CellVisit>,
    /// Total extra distance accepted so far through matches, metres.
    pub detour_used_m: f64,
    /// Way-point progress index from tracking.
    pub progress_idx: usize,
}

impl Taxi {
    /// Estimated arrival at way-point `idx`, absolute seconds.
    #[inline]
    pub fn eta_at(&self, idx: usize) -> f64 {
        self.departure_s + self.route.time_at(idx)
    }

    /// Scheduled completion time.
    #[inline]
    pub fn arrival_s(&self) -> f64 {
        self.departure_s + self.route.duration_s()
    }

    /// The schedule segment (between consecutive via way-points)
    /// containing route index `idx`.
    pub fn segment_of(&self, idx: usize) -> usize {
        let n_seg = self.via_points.len() - 1;
        let pos = self.via_points.partition_point(|&v| v <= idx);
        pos.saturating_sub(1).min(n_seg.saturating_sub(1))
    }

    /// Heap bytes held by this taxi (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.route.heap_bytes()
            + self.via_points.capacity() * std::mem::size_of::<usize>()
            + self.cells.capacity() * std::mem::size_of::<CellVisit>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::{CityConfig, NodeId, ShortestPaths};

    fn taxi() -> Taxi {
        let g = CityConfig::test_city(3).generate();
        let n = g.node_count() as u32;
        let sp = ShortestPaths::driving_time(&g);
        let p = sp.path(NodeId(0), NodeId(n - 1)).unwrap();
        let route = Route::from_path_result(&g, &p).unwrap();
        let last = route.len() - 1;
        Taxi {
            id: TaxiId(1),
            source: g.point(NodeId(0)),
            destination: g.point(NodeId(n - 1)),
            departure_s: 1000.0,
            seats_available: 3,
            via_points: vec![0, last],
            route,
            cells: vec![],
            detour_used_m: 0.0,
            progress_idx: 0,
        }
    }

    #[test]
    fn eta_and_arrival() {
        let t = taxi();
        assert_eq!(t.eta_at(0), 1000.0);
        assert!(t.arrival_s() > 1000.0);
        assert_eq!(t.arrival_s(), t.eta_at(t.route.len() - 1));
    }

    #[test]
    fn segment_of_single_segment() {
        let t = taxi();
        assert_eq!(t.segment_of(0), 0);
        assert_eq!(t.segment_of(t.route.len() - 1), 0);
    }

    #[test]
    fn segment_of_multi() {
        let mut t = taxi();
        let last = t.route.len() - 1;
        t.via_points = vec![0, last / 2, last];
        assert_eq!(t.segment_of(0), 0);
        assert_eq!(t.segment_of(last / 2), 1);
        assert_eq!(t.segment_of(last), 1);
    }
}
