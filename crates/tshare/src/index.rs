//! T-Share's grid-level spatio-temporal index.
//!
//! Each grid cell keeps the list of taxis scheduled to pass through it,
//! "temporally-ordered" by estimated arrival time. This is the
//! grid-only representation the XAR paper contrasts with its
//! hierarchical clusters: "state-of-the-art dynamic ride share systems
//! like T-Share store the region information in terms of grids only,
//! hence require shortest path computation in real-time" (§I).

use std::collections::{BTreeMap, HashMap};

use xar_geo::GridId;

use crate::taxi::TaxiId;

/// Total-ordered `f64` key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One cell entry: a taxi and its arrival metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEntry {
    /// The taxi.
    pub taxi: TaxiId,
    /// Estimated arrival at the cell, absolute seconds.
    pub eta_s: f64,
    /// Route way-point index where the taxi enters the cell.
    pub route_idx: usize,
}

/// Sparse map from grid cells to their temporally-ordered taxi lists.
#[derive(Debug, Default, Clone)]
pub struct GridTaxiIndex {
    cells: HashMap<u64, BTreeMap<(OrdF64, TaxiId), CellEntry>>,
    entries: usize,
}

impl GridTaxiIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total entries across all cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Insert a visit. A taxi may legitimately appear several times in
    /// one cell (route re-entry); each visit is its own entry.
    pub fn insert(&mut self, cell: GridId, entry: CellEntry) {
        self.cells
            .entry(cell.packed())
            .or_default()
            .insert((OrdF64(entry.eta_s), entry.taxi), entry);
        self.entries += 1;
    }

    /// Remove every entry of `taxi` in `cell`. Returns how many were
    /// removed.
    pub fn remove_taxi(&mut self, cell: GridId, taxi: TaxiId) -> usize {
        let Some(list) = self.cells.get_mut(&cell.packed()) else { return 0 };
        let keys: Vec<(OrdF64, TaxiId)> =
            list.iter().filter(|((_, t), _)| *t == taxi).map(|(k, _)| *k).collect();
        let removed = keys.len();
        for k in keys {
            list.remove(&k);
        }
        if list.is_empty() {
            self.cells.remove(&cell.packed());
        }
        self.entries -= removed;
        removed
    }

    /// Taxis arriving in `cell` within `[from_s, to_s]`, ETA order.
    pub fn range_eta(
        &self,
        cell: GridId,
        from_s: f64,
        to_s: f64,
    ) -> impl Iterator<Item = &CellEntry> {
        self.cells
            .get(&cell.packed())
            .into_iter()
            .flat_map(move |list| {
                list.range((OrdF64(from_s), TaxiId(0))..=(OrdF64(to_s), TaxiId(u64::MAX)))
                    .map(|(_, v)| v)
            })
    }

    /// All entries of `cell` in ETA order.
    pub fn entries_of(&self, cell: GridId) -> impl Iterator<Item = &CellEntry> {
        self.cells.get(&cell.packed()).into_iter().flat_map(|l| l.values())
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<((OrdF64, TaxiId), CellEntry)>() + 16;
        let per_cell = std::mem::size_of::<(u64, BTreeMap<(OrdF64, TaxiId), CellEntry>)>() + 16;
        self.cells.len() * per_cell + self.entries * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(c: u32, r: u32) -> GridId {
        GridId { col: c, row: r }
    }

    fn entry(t: u64, eta: f64) -> CellEntry {
        CellEntry { taxi: TaxiId(t), eta_s: eta, route_idx: 0 }
    }

    #[test]
    fn insert_and_range() {
        let mut idx = GridTaxiIndex::new();
        idx.insert(cell(1, 1), entry(1, 100.0));
        idx.insert(cell(1, 1), entry(2, 200.0));
        idx.insert(cell(2, 2), entry(3, 150.0));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.cell_count(), 2);
        let got: Vec<u64> = idx.range_eta(cell(1, 1), 0.0, 150.0).map(|e| e.taxi.0).collect();
        assert_eq!(got, vec![1]);
        let all: Vec<u64> = idx.range_eta(cell(1, 1), 0.0, 1e9).map(|e| e.taxi.0).collect();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn multiple_visits_of_same_taxi() {
        let mut idx = GridTaxiIndex::new();
        idx.insert(cell(0, 0), entry(7, 100.0));
        idx.insert(cell(0, 0), CellEntry { taxi: TaxiId(7), eta_s: 300.0, route_idx: 20 });
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove_taxi(cell(0, 0), TaxiId(7)), 2);
        assert!(idx.is_empty());
        assert_eq!(idx.cell_count(), 0);
    }

    #[test]
    fn remove_from_missing_cell_is_zero() {
        let mut idx = GridTaxiIndex::new();
        assert_eq!(idx.remove_taxi(cell(9, 9), TaxiId(1)), 0);
    }

    #[test]
    fn empty_cell_ranges_are_empty() {
        let idx = GridTaxiIndex::new();
        assert_eq!(idx.range_eta(cell(0, 0), 0.0, 1e9).count(), 0);
        assert_eq!(idx.entries_of(cell(0, 0)).count(), 0);
    }
}
