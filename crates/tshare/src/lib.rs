//! T-Share baseline (Ma, Zheng & Wolfson, ICDE 2013) — the
//! state-of-the-art system the XAR paper benchmarks against.
//!
//! The original implementation is not public; like the paper's authors
//! ("we implemented T-Share to resemble the description in \[6\]"), we
//! re-implement it from the published description, with the same
//! adaptations the XAR paper applied for the comparison:
//!
//! * the region is partitioned into a **flat grid** (1 km cells in the
//!   paper's experiments — "equivalent to the cluster size of XAR");
//! * each cell keeps a **temporally-ordered taxi list** (taxis that will
//!   pass the cell, sorted by estimated arrival);
//! * search runs a **dual-side expanding grid scan** around the pick-up
//!   and drop-off cells, in increasing ring distance, capped at a
//!   configurable number of cells (80 in the paper ≈ a 4 km detour
//!   bound);
//! * every candidate taxi then undergoes a **lazy shortest-path
//!   insertion check** — the cost the XAR index exists to avoid. An
//!   alternative [`DistanceMode::Haversine`] replaces the shortest
//!   paths with the haversine formula, reproducing the paper's second
//!   comparison setting (Figure 5a);
//! * the matching loop is modified, as in the paper, to keep searching
//!   until **all** (or the first `k`) matches are found rather than
//!   stopping at the first.
//!
//! ```
//! use std::sync::Arc;
//! use xar_roadnet::{CityConfig, NodeId};
//! use xar_tshare::engine::TShareRequest;
//! use xar_tshare::{TShareConfig, TShareEngine};
//!
//! let graph = Arc::new(CityConfig::test_city(5).generate());
//! let n = graph.node_count() as u32;
//! let mut engine = TShareEngine::new(Arc::clone(&graph), TShareConfig::default());
//! let taxi = engine
//!     .create_taxi(graph.point(NodeId(0)), graph.point(NodeId(n - 1)), 8.0 * 3600.0, 3)
//!     .expect("route exists");
//! let matches = engine.search(
//!     &TShareRequest {
//!         pickup: graph.point(NodeId(0)),
//!         dropoff: graph.point(NodeId(n - 1)),
//!         window_start_s: 7.5 * 3600.0,
//!         window_end_s: 9.0 * 3600.0,
//!     },
//!     5,
//! );
//! assert!(matches.iter().any(|m| m.taxi == taxi));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod metrics;
pub mod taxi;

pub use engine::{DistanceMode, TShareConfig, TShareEngine, TShareMatch};
pub use index::GridTaxiIndex;
pub use metrics::TShareMetrics;
pub use taxi::{Taxi, TaxiId};
