//! End-to-end tests of the T-Share baseline engine.

use std::sync::Arc;

use xar_roadnet::{CityConfig, NodeId, RoadGraph};
use xar_tshare::{DistanceMode, TShareConfig, TShareEngine};
use xar_tshare::engine::TShareRequest;

fn graph() -> Arc<RoadGraph> {
    Arc::new(CityConfig::test_city(55).generate())
}

fn engine(mode: DistanceMode) -> TShareEngine {
    let cfg = TShareConfig { grid_cell_m: 400.0, distance_mode: mode, ..Default::default() };
    TShareEngine::new(graph(), cfg)
}

fn cross_city(eng: &mut TShareEngine) -> xar_tshare::TaxiId {
    let g = Arc::clone(eng.graph());
    let n = g.node_count() as u32;
    eng.create_taxi(g.point(NodeId(0)), g.point(NodeId(n - 1)), 8.0 * 3600.0, 3)
        .expect("connected city")
}

fn mid_request(g: &RoadGraph) -> TShareRequest {
    let n = g.node_count() as u32;
    TShareRequest {
        pickup: g.point(NodeId(n / 2)),
        dropoff: g.point(NodeId(n - 1)),
        window_start_s: 8.0 * 3600.0 - 600.0,
        window_end_s: 8.0 * 3600.0 + 1_800.0,
    }
}

#[test]
fn create_indexes_cells_along_route() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let taxi = eng.taxi(id).unwrap();
    assert!(taxi.cells.len() >= 3, "cross-city route passes several 400 m cells");
    // Cell visits are route-ordered with increasing ETA.
    for w in taxi.cells.windows(2) {
        assert!(w[0].route_idx < w[1].route_idx);
        assert!(w[0].eta_s <= w[1].eta_s);
    }
}

#[test]
fn search_finds_taxi_on_route() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let g = Arc::clone(eng.graph());
    let matches = eng.search(&mid_request(&g), usize::MAX);
    assert!(matches.iter().any(|m| m.taxi == id), "taxi passing the pick-up must match");
    let m = matches.iter().find(|m| m.taxi == id).unwrap();
    assert!(m.detour_m <= 4_000.0);
    assert!(m.pickup_route_idx <= m.dropoff_route_idx);
}

#[test]
fn search_uses_shortest_paths_but_haversine_mode_does_not() {
    let mut sp_eng = engine(DistanceMode::ShortestPath);
    cross_city(&mut sp_eng);
    let g = Arc::clone(sp_eng.graph());
    let before = sp_eng.stats().shortest_paths.load(std::sync::atomic::Ordering::Relaxed);
    let _ = sp_eng.search(&mid_request(&g), usize::MAX);
    let after = sp_eng.stats().shortest_paths.load(std::sync::atomic::Ordering::Relaxed);
    assert!(after > before, "T-Share search must compute shortest paths (its defining cost)");

    let mut hv_eng = engine(DistanceMode::Haversine);
    cross_city(&mut hv_eng);
    let before = hv_eng.stats().shortest_paths.load(std::sync::atomic::Ordering::Relaxed);
    let _ = hv_eng.search(&mid_request(&g), usize::MAX);
    let after = hv_eng.stats().shortest_paths.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(after, before, "haversine mode must not compute shortest paths in search");
}

#[test]
fn search_k_truncates() {
    let mut eng = engine(DistanceMode::Haversine);
    for i in 0..5 {
        let g = Arc::clone(eng.graph());
        let n = g.node_count() as u32;
        eng.create_taxi(g.point(NodeId(i)), g.point(NodeId(n - 1 - i)), 8.0 * 3600.0 + i as f64, 3);
    }
    let g = Arc::clone(eng.graph());
    let all = eng.search(&mid_request(&g), usize::MAX);
    let one = eng.search(&mid_request(&g), 1);
    assert!(one.len() <= 1);
    if !all.is_empty() {
        assert_eq!(one.len(), 1);
    }
}

#[test]
fn search_respects_window() {
    let mut eng = engine(DistanceMode::ShortestPath);
    cross_city(&mut eng);
    let g = Arc::clone(eng.graph());
    let mut req = mid_request(&g);
    req.window_start_s = 0.0;
    req.window_end_s = 1_800.0; // taxi departs 8am
    assert!(eng.search(&req, usize::MAX).is_empty());
}

#[test]
fn booking_extends_route_and_consumes_seat() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let g = Arc::clone(eng.graph());
    let m = *eng
        .search(&mid_request(&g), usize::MAX)
        .iter()
        .find(|m| m.taxi == id)
        .expect("match");
    let before = eng.taxi(id).unwrap().clone();
    let detour = eng.book(&m).expect("booking succeeds");
    let after = eng.taxi(id).unwrap();
    assert!(detour >= 0.0);
    assert_eq!(after.seats_available, before.seats_available - 1);
    assert_eq!(after.via_points.len(), 4);
    assert!(after.route.nodes().contains(&m.pickup_node));
    assert!(after.route.nodes().contains(&m.dropoff_node));
    for w in after.via_points.windows(2) {
        assert!(w[0] <= w[1]);
    }
}

#[test]
fn booking_full_taxi_fails() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let g = Arc::clone(eng.graph());
    let n = g.node_count() as u32;
    let id = eng
        .create_taxi(g.point(NodeId(0)), g.point(NodeId(n - 1)), 8.0 * 3600.0, 1)
        .unwrap();
    let m = *eng
        .search(&mid_request(&g), usize::MAX)
        .iter()
        .find(|m| m.taxi == id)
        .expect("match");
    assert!(eng.book(&m).is_some());
    assert!(eng.book(&m).is_none(), "no seats left");
}

#[test]
fn tracking_retires_finished_taxis() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let arrival = eng.taxi(id).unwrap().arrival_s();
    assert_eq!(eng.track_all(arrival - 60.0), 0);
    assert!(eng.taxi(id).is_some());
    assert_eq!(eng.track_all(arrival + 60.0), 1);
    assert!(eng.taxi(id).is_none());
    // Index fully cleaned.
    assert_eq!(eng.heap_bytes(), {
        let empty = TShareEngine::new(Arc::clone(eng.graph()), TShareConfig::default());
        empty.heap_bytes()
    });
}

#[test]
fn tracking_removes_passed_cells_from_index() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let taxi = eng.taxi(id).unwrap();
    let depart = taxi.departure_s;
    let dur = taxi.route.duration_s();
    let first_cells = taxi.cells.len();
    eng.track_all(depart + dur * 0.6);
    let taxi = eng.taxi(id).unwrap();
    assert!(taxi.cells.len() < first_cells, "passed cells must be dropped");
    assert!(taxi.progress_idx > 0);
}

#[test]
fn search_after_tracking_ignores_passed_pickup() {
    let mut eng = engine(DistanceMode::ShortestPath);
    let id = cross_city(&mut eng);
    let g = Arc::clone(eng.graph());
    let taxi = eng.taxi(id).unwrap();
    let late = taxi.departure_s + taxi.route.duration_s() * 0.9;
    eng.track_all(late);
    // A request at the start of the route can no longer match.
    let req = TShareRequest {
        pickup: g.point(NodeId(0)),
        dropoff: g.point(NodeId(g.node_count() as u32 / 2)),
        window_start_s: late,
        window_end_s: late + 3_600.0,
    };
    let matches = eng.search(&req, usize::MAX);
    assert!(matches.iter().all(|m| m.taxi != id), "taxi already passed the pick-up");
}
