//! Edge-case tests for the T-Share baseline: degenerate requests,
//! expansion caps, haversine-mode consistency.

use std::sync::Arc;

use xar_roadnet::{CityConfig, NodeId, RoadGraph};
use xar_tshare::engine::TShareRequest;
use xar_tshare::{DistanceMode, TShareConfig, TShareEngine};

fn graph() -> Arc<RoadGraph> {
    Arc::new(CityConfig::manhattan(30, 30, 77).generate())
}

#[test]
fn search_with_no_taxis_is_empty_and_cheap() {
    let eng = TShareEngine::new(graph(), TShareConfig::default());
    let g = eng.graph();
    let req = TShareRequest {
        pickup: g.point(NodeId(0)),
        dropoff: g.point(NodeId(10)),
        window_start_s: 0.0,
        window_end_s: 3_600.0,
    };
    assert!(eng.search(&req, usize::MAX).is_empty());
    // No shortest paths wasted when there is nothing to check.
    assert_eq!(eng.stats().shortest_paths.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn expansion_cap_limits_match_radius() {
    // A tiny cap must prevent matching a taxi whose route stays far
    // from the pick-up point.
    let g = graph();
    let n = g.node_count() as u32;
    let tight = TShareConfig { grid_cell_m: 300.0, max_search_cells: 1, ..Default::default() };
    let mut eng = TShareEngine::new(Arc::clone(&g), tight);
    // Taxi along the east edge; request from the west edge.
    let east_lo = g.point(NodeId(n - 2));
    let east_hi = g.point(NodeId(n / 2 + 28));
    eng.create_taxi(east_lo, east_hi, 8.0 * 3600.0, 3).unwrap();
    let req = TShareRequest {
        pickup: g.point(NodeId(0)),
        dropoff: g.point(NodeId(30)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.0 * 3600.0,
    };
    assert!(
        eng.search(&req, usize::MAX).is_empty(),
        "1-cell cap cannot reach a taxi across the city"
    );
}

#[test]
fn k_zero_returns_nothing() {
    let g = graph();
    let n = g.node_count() as u32;
    let mut eng = TShareEngine::new(Arc::clone(&g), TShareConfig::default());
    eng.create_taxi(g.point(NodeId(0)), g.point(NodeId(n - 1)), 8.0 * 3600.0, 3).unwrap();
    let req = TShareRequest {
        pickup: g.point(NodeId(n / 2)),
        dropoff: g.point(NodeId(n - 1)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.0 * 3600.0,
    };
    assert!(eng.search(&req, 0).is_empty());
}

#[test]
fn haversine_and_sp_modes_agree_on_match_existence() {
    // Haversine underestimates road distances, so it may admit a few
    // more matches — but a match found under shortest paths should
    // almost always be found under haversine too (same candidate
    // generation, looser feasibility).
    let g = graph();
    let n = g.node_count() as u32;
    let mk = |mode| {
        let mut eng = TShareEngine::new(
            Arc::clone(&g),
            TShareConfig { distance_mode: mode, ..Default::default() },
        );
        for i in 0..20u32 {
            eng.create_taxi(
                g.point(NodeId((i * 97) % n)),
                g.point(NodeId((i * 41 + n / 2) % n)),
                8.0 * 3600.0 + f64::from(i) * 60.0,
                3,
            );
        }
        eng
    };
    let sp_eng = mk(DistanceMode::ShortestPath);
    let hv_eng = mk(DistanceMode::Haversine);
    let mut agree = 0;
    let mut total = 0;
    for i in 0..30u32 {
        let req = TShareRequest {
            pickup: g.point(NodeId((i * 53) % n)),
            dropoff: g.point(NodeId((i * 149 + n / 3) % n)),
            window_start_s: 7.5 * 3600.0,
            window_end_s: 9.5 * 3600.0,
        };
        let sp_found: std::collections::HashSet<_> =
            sp_eng.search(&req, usize::MAX).iter().map(|m| m.taxi).collect();
        let hv_found: std::collections::HashSet<_> =
            hv_eng.search(&req, usize::MAX).iter().map(|m| m.taxi).collect();
        total += sp_found.len();
        agree += sp_found.intersection(&hv_found).count();
    }
    assert!(total > 0, "fixture produced no matches at all");
    assert!(
        agree as f64 >= total as f64 * 0.8,
        "haversine mode lost too many SP matches: {agree}/{total}"
    );
}

#[test]
fn departed_taxi_cells_shrink_monotonically() {
    let g = graph();
    let n = g.node_count() as u32;
    let mut eng = TShareEngine::new(Arc::clone(&g), TShareConfig { grid_cell_m: 300.0, ..Default::default() });
    let id = eng.create_taxi(g.point(NodeId(0)), g.point(NodeId(n - 1)), 8.0 * 3600.0, 3).unwrap();
    let dur = eng.taxi(id).unwrap().route.duration_s();
    let mut prev = eng.taxi(id).unwrap().cells.len();
    for frac in [0.2, 0.4, 0.6, 0.8] {
        eng.track_all(8.0 * 3600.0 + dur * frac);
        let now = eng.taxi(id).unwrap().cells.len();
        assert!(now <= prev, "cells grew during tracking: {now} > {prev}");
        prev = now;
    }
    eng.track_all(8.0 * 3600.0 + dur + 1.0);
    assert!(eng.taxi(id).is_none());
}
