//! Integration tests: Aider and Enhancer modes against real XAR and
//! transit engines on a synthetic city.

use std::sync::Arc;

use xar_core::{EngineConfig, RideOffer, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_mmtp::{aid_plan, enhance_plan, AiderConfig, EnhancerConfig};
use xar_roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};
use xar_transit::{generate::generate_transit, TransitGenConfig, TransitRouter, WalkParams};

struct Fixture {
    graph: Arc<RoadGraph>,
    region: Arc<RegionIndex>,
    net: xar_transit::TransitNetwork,
}

fn fixture() -> Fixture {
    let graph = Arc::new(CityConfig::manhattan(30, 30, 123).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 900, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig {
            landmark_separation_m: 220.0,
            cluster_goal: ClusterGoal::Delta(150.0),
            max_walk_m: 900.0,
            ..Default::default()
        },
    ));
    // Sparse transit: few lines with long headways, so that plans have
    // long waits/walks the aider can fix.
    let net = generate_transit(
        &graph,
        &TransitGenConfig {
            subway_lines: 1,
            bus_lines: 2,
            bus_headway_s: 1_500.0,
            subway_headway_s: 900.0,
            ..Default::default()
        },
    );
    Fixture { graph, region, net }
}

fn xar_with_rides(f: &Fixture, n: usize) -> XarEngine {
    let mut eng = XarEngine::new(Arc::clone(&f.region), EngineConfig::default());
    let total = f.graph.node_count() as u32;
    for i in 0..n {
        let a = NodeId((i as u32 * 137) % total);
        let b = NodeId((i as u32 * 251 + total / 2) % total);
        let _ = eng.create_ride(&RideOffer {
            source: f.graph.point(a),
            destination: f.graph.point(b),
            departure_s: 8.0 * 3600.0 + (i as f64) * 120.0,
            seats: 3,
            detour_limit_m: 4_000.0, driver: None, via: Vec::new(),
        });
    }
    eng
}

#[test]
fn aider_preserves_or_improves_infeasible_plans() {
    let f = fixture();
    let router = TransitRouter::new(&f.graph, &f.net, WalkParams::default());
    let mut xar = xar_with_rides(&f, 60);
    let cfg = AiderConfig::default();

    let total = f.graph.node_count() as u32;
    let mut aided_any = false;
    for i in 0..20u32 {
        let a = f.graph.point(NodeId((i * 97) % total));
        let b = f.graph.point(NodeId((i * 389 + total / 3) % total));
        let Some(base) = router.plan(&a, &b, 8.0 * 3600.0 + f64::from(i) * 60.0) else { continue };
        let aided = aid_plan(&base, b, &f.net, &router, &mut xar, &cfg);
        // The aided plan must be time-consistent.
        assert!(aided.plan.is_consistent(), "inconsistent aided plan: {:?}", aided.plan);
        assert!(aided.plan.arrival_s >= aided.plan.departure_s);
        if aided.replaced > 0 {
            aided_any = true;
            // Replaced plans contain shared-ride legs.
            assert!(aided
                .plan
                .legs
                .iter()
                .any(|l| matches!(l, xar_transit::Leg::SharedRide { .. })));
        }
    }
    assert!(aided_any, "no plan was ever aided — fixture too easy or aider broken");
}

#[test]
fn aider_without_rides_resolves_nothing() {
    let f = fixture();
    let router = TransitRouter::new(&f.graph, &f.net, WalkParams::default());
    let mut xar = XarEngine::new(Arc::clone(&f.region), EngineConfig::default());
    let total = f.graph.node_count() as u32;
    let a = f.graph.point(NodeId(0));
    let b = f.graph.point(NodeId(total - 1));
    let base = router.plan(&a, &b, 8.0 * 3600.0).expect("plan");
    let aided = aid_plan(&base, b, &f.net, &router, &mut xar, &AiderConfig::default());
    assert_eq!(aided.replaced, 0);
    assert_eq!(aided.plan.legs, base.legs);
}

#[test]
fn enhancer_generates_bounded_search_volume() {
    let f = fixture();
    let router = TransitRouter::new(&f.graph, &f.net, WalkParams::default());
    let mut xar = xar_with_rides(&f, 40);
    let total = f.graph.node_count() as u32;
    let a = f.graph.point(NodeId(3));
    let b = f.graph.point(NodeId(total - 4));
    let base = router.plan(&a, &b, 8.5 * 3600.0).expect("plan");
    let k = base.hops();
    let out = enhance_plan(&base, a, b, &f.net, &router, &mut xar, &EnhancerConfig::default());
    let n_points = k + 2;
    let bound = if k <= 4 { n_points * (n_points - 1) / 2 } else { 2 * k + 1 };
    assert!(out.searches <= bound, "{} searches for k={k}", out.searches);
    assert!(out.plan.is_consistent());
    // Enhancement never makes the plan worse on hops.
    assert!(out.plan.hops() <= base.hops());
}

#[test]
fn enhancer_substitution_reduces_hops_or_keeps_plan() {
    let f = fixture();
    let router = TransitRouter::new(&f.graph, &f.net, WalkParams::default());
    let mut xar = xar_with_rides(&f, 80);
    let total = f.graph.node_count() as u32;
    let mut substituted_any = false;
    for i in 0..200u32 {
        let a = f.graph.point(NodeId((i * 113) % total));
        let b = f.graph.point(NodeId((i * 211 + total / 2) % total));
        let Some(base) = router.plan(&a, &b, 8.0 * 3600.0 + f64::from(i) * 90.0) else { continue };
        if base.hops() == 0 {
            continue;
        }
        let out = enhance_plan(&base, a, b, &f.net, &router, &mut xar, &EnhancerConfig::default());
        if let Some((i0, j0)) = out.substituted {
            substituted_any = true;
            assert!(j0 > i0);
            assert!(
                out.plan.hops() < base.hops()
                    || (out.plan.hops() == base.hops() && out.plan.arrival_s < base.arrival_s),
                "substitution did not improve the plan"
            );
        }
    }
    // It's acceptable (but suspicious) if no plan was enhanced; make it
    // a soft signal by requiring at least one substitution across all
    // trials — the fixture has 80 rides crossing the city.
    assert!(substituted_any, "enhancer never substituted a ride");
}
