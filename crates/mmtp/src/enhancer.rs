//! Enhancer mode (§IX.B): XAR enhances an entire MMTP trip plan by
//! substituting shared rides for combinations of its segments.
//!
//! For a plan with `k ≤ 4` intermediate hops, XAR issues search
//! requests for the `C(k+1, 2)` non-adjacent combinations of {source,
//! hop₁, …, hop_k, destination} (adjacent pairs are the plan's existing
//! legs and are skipped — footnote 4 of the paper). For `k > 4`
//! ("extremely unlikely in a trip plan") only the `2k+1` combinations
//! of source→hop and hop→destination plus the full journey are tried,
//! keeping the search volume linear so that "the search operation for a
//! particular trip request is completed within a reasonable amount of
//! time".

use xar_core::{RideMatch, RideRequest, XarEngine};
use xar_geo::GeoPoint;
use xar_roadnet::WALK_SPEED_MPS;
use xar_transit::{Leg, TransitNetwork, TransitRouter, TripPlan};

use crate::segments::hop_points;

/// Enhancer-mode parameters.
#[derive(Debug, Clone)]
pub struct EnhancerConfig {
    /// Walking threshold passed to the XAR searches, metres.
    pub ride_walk_limit_m: f64,
    /// Pick-up window width offered to XAR, seconds.
    pub window_s: f64,
    /// Above this hop count, fall back to the linear `2k+1` scheme.
    pub combinatorial_hop_limit: usize,
    /// Whether the chosen enhancement is booked.
    pub book: bool,
}

impl Default for EnhancerConfig {
    fn default() -> Self {
        Self { ride_walk_limit_m: 800.0, window_s: 1_200.0, combinatorial_hop_limit: 4, book: true }
    }
}

/// The result of an enhancement attempt.
#[derive(Debug, Clone)]
pub struct EnhancerOutcome {
    /// The enhanced (or original, if nothing helped) plan.
    pub plan: TripPlan,
    /// Which hop-point pair `(i, j)` the substituted ride covers, if
    /// any.
    pub substituted: Option<(usize, usize)>,
    /// How many XAR search requests were generated — the quantity the
    /// paper's look-to-book arithmetic counts.
    pub searches: usize,
}

/// Enumerate the hop-point index pairs the Enhancer tries, in the
/// paper's scheme. Exposed for the look-to-book arithmetic tests.
pub fn candidate_pairs(n_points: usize, combinatorial_hop_limit: usize) -> Vec<(usize, usize)> {
    let k = n_points.saturating_sub(2); // intermediate hops
    let mut out = Vec::new();
    if k <= combinatorial_hop_limit {
        // All non-adjacent pairs: C(k+2, 2) − (k+1) = C(k+1, 2).
        for i in 0..n_points {
            for j in (i + 2)..n_points {
                out.push((i, j));
            }
        }
    } else {
        // Linear fallback (2k+1 requests): source → every intermediate
        // hop, every intermediate hop → destination, plus the entire
        // journey.
        for j in 1..=k {
            out.push((0, j));
        }
        for i in 1..=k {
            out.push((i, n_points - 1));
        }
        out.push((0, n_points - 1));
    }
    out
}

/// Run enhancer mode over a base plan. The substitution that reduces
/// hop count the most (tie-break: earliest arrival) wins.
pub fn enhance_plan(
    base: &TripPlan,
    origin: GeoPoint,
    destination: GeoPoint,
    net: &TransitNetwork,
    router: &TransitRouter<'_>,
    xar: &mut XarEngine,
    cfg: &EnhancerConfig,
) -> EnhancerOutcome {
    let hops = hop_points(base, net, origin, destination);
    let pairs = candidate_pairs(hops.len(), cfg.combinatorial_hop_limit);
    let mut searches = 0usize;

    // Collect the best feasible substitution per candidate pair.
    let mut best: Option<(usize, usize, RideMatch, TripPlan)> = None;
    for (i, j) in pairs {
        let (from, t_from) = hops[i];
        let (to, _) = hops[j];
        let req = RideRequest {
            source: from,
            destination: to,
            window_start_s: t_from,
            window_end_s: t_from + cfg.window_s,
            walk_limit_m: cfg.ride_walk_limit_m,
        };
        searches += 1;
        let Ok(matches) = xar.search(&req, 1) else { continue };
        let Some(m) = matches.first().copied() else { continue };
        let Some(candidate) = compose(base, &hops, (i, j), &m, origin, destination, router, xar) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some((_, _, _, cur)) => {
                candidate.hops() < cur.hops()
                    || (candidate.hops() == cur.hops() && candidate.arrival_s < cur.arrival_s)
            }
        };
        if better {
            best = Some((i, j, m, candidate));
        }
    }

    match best {
        Some((i, j, m, plan))
            if plan.hops() < base.hops()
                || (plan.hops() == base.hops() && plan.arrival_s < base.arrival_s) =>
        {
            if cfg.book {
                // Booking can fail if the ride filled up meanwhile; fall
                // back to the original plan in that case.
                if xar.book(&m).is_err() {
                    return EnhancerOutcome { plan: base.clone(), substituted: None, searches };
                }
            }
            EnhancerOutcome { plan, substituted: Some((i, j)), searches }
        }
        _ => EnhancerOutcome { plan: base.clone(), substituted: None, searches },
    }
}

/// Compose the enhanced plan: prefix (replanned up to hop `i`), walk +
/// ride + walk, then the remainder replanned from hop `j`.
#[allow(clippy::too_many_arguments)]
fn compose(
    base: &TripPlan,
    hops: &[(GeoPoint, f64)],
    (i, j): (usize, usize),
    m: &RideMatch,
    origin: GeoPoint,
    destination: GeoPoint,
    router: &TransitRouter<'_>,
    xar: &XarEngine,
) -> Option<TripPlan> {
    let region = xar.region();
    let pickup_pt = region.landmark(m.pickup_landmark).point;
    let dropoff_pt = region.landmark(m.dropoff_landmark).point;
    let (hop_i_pt, hop_i_t) = hops[i];
    let (hop_j_pt, _) = hops[j];

    // Prefix: the original journey up to hop i. Replanned when i > 0 to
    // get clean legs; empty when the ride starts at the origin.
    let mut legs: Vec<Leg> = Vec::new();
    let mut clock = base.departure_s;
    if i > 0 {
        let prefix = router.plan(&origin, &hop_i_pt, base.departure_s)?;
        clock = prefix.arrival_s;
        legs.extend(prefix.legs);
    }
    let _ = hop_i_t;

    // Walk to the pick-up landmark, wait, ride, walk back to hop j.
    let walk_in_dur = m.walk_pickup_m / WALK_SPEED_MPS;
    legs.push(Leg::Walk { from: hop_i_pt, to: pickup_pt, dist_m: m.walk_pickup_m, duration_s: walk_in_dur });
    clock += walk_in_dur;
    if m.eta_pickup_s > clock {
        legs.push(Leg::WaitAt { point: pickup_pt, duration_s: m.eta_pickup_s - clock });
        clock = m.eta_pickup_s;
    }
    let alight = m.eta_dropoff_s.max(clock);
    legs.push(Leg::SharedRide { from: pickup_pt, to: dropoff_pt, board_s: clock, alight_s: alight });
    clock = alight;
    let walk_out_dur = m.walk_dropoff_m / WALK_SPEED_MPS;
    legs.push(Leg::Walk { from: dropoff_pt, to: hop_j_pt, dist_m: m.walk_dropoff_m, duration_s: walk_out_dur });
    clock += walk_out_dur;

    // Suffix: replanned remainder from hop j (empty if j is the
    // destination).
    if j + 1 < hops.len() {
        let rest = router.plan(&hop_j_pt, &destination, clock)?;
        clock = rest.arrival_s;
        legs.extend(rest.legs);
    }
    Some(TripPlan { departure_s: base.departure_s, arrival_s: clock, legs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_count_matches_paper_formula() {
        // k intermediate hops => n_points = k + 2 => C(k+1, 2) pairs.
        // The paper's count: C(k+2, 2) combinations of the k+2 points
        // minus the k+1 adjacent pairs, which it writes as C(k+1, 2).
        for k in 0..=4usize {
            let n = k + 2;
            let pairs = candidate_pairs(n, 4);
            let formula = (n * (n - 1)) / 2 - (n - 1);
            assert_eq!(pairs.len(), formula, "k={k}");
            assert_eq!(formula, (k + 1) * k / 2, "C(k+1,2) identity, k={k}");
        }
        // k = 3 (the Go-LA case): C(4, 2) = 6 searches.
        assert_eq!(candidate_pairs(5, 4).len(), 6);
    }

    #[test]
    fn pairs_skip_adjacent() {
        for (i, j) in candidate_pairs(6, 4) {
            assert!(j >= i + 2, "adjacent pair ({i},{j}) included");
        }
    }

    #[test]
    fn linear_fallback_above_limit() {
        // k = 6 hops => n = 8 points => 2k+1 = 13 requests.
        let pairs = candidate_pairs(8, 4);
        assert_eq!(pairs.len(), 13);
        // All pairs touch an endpoint.
        for (i, j) in pairs {
            assert!(i == 0 || j == 7, "interior pair ({i},{j}) in fallback");
        }
    }

    #[test]
    fn degenerate_plans() {
        // n = 2 (direct journey, k = 0): no non-adjacent pairs.
        assert!(candidate_pairs(2, 4).is_empty());
        // n = 3 (one hop): exactly the full journey (0, 2).
        assert_eq!(candidate_pairs(3, 4), vec![(0, 2)]);
    }
}
