//! Integration of XAR with a multi-modal trip planner (paper §IX).
//!
//! Two systematic modes of interaction:
//!
//! * [`aider`] — **Aider mode**: the MMTP plans the trip; for any
//!   *infeasible* segment (walking beyond a threshold, waiting beyond a
//!   threshold) it asks XAR for shared-ride options covering just that
//!   segment, then resumes the plan from the segment's end.
//! * [`enhancer`] — **Enhancer mode**: the MMTP hands XAR the whole
//!   plan; XAR tries ride substitutions over the `C(k+1, 2)`
//!   combinations of source, destination and the `k ≤ 4` intermediate
//!   hops (or the `2k+1` linear fallback for `k > 4`), returning an
//!   enhanced plan with fewer hops and/or less travel time.
//! * [`metrics`] — the look-to-book arithmetic of §X.B.2 (the Go-LA
//!   estimate) and the Figure 6 per-mode quality aggregates.
//!
//! ```
//! use xar_mmtp::look_to_book_ratio;
//!
//! // The paper's Go-LA estimate (§X.B.2): 8 plans per request, 3 hops
//! // per plan, 1-in-10 adoption → 480 searches per booking.
//! assert_eq!(look_to_book_ratio(8, 3, 0.1), 480.0);
//! ```

#![warn(missing_docs)]

pub mod aider;
pub mod enhancer;
pub mod metrics;
pub mod segments;

pub use aider::{aid_plan, AidedPlan, AiderConfig};
pub use enhancer::{enhance_plan, EnhancerConfig, EnhancerOutcome};
pub use metrics::{look_to_book_ratio, ModeQuality};
