//! Trip-quality aggregates (Figure 6) and the look-to-book arithmetic
//! (§X.B.2).

use xar_transit::TripPlan;

/// Aggregated quality of one transport mode over a set of served
/// trips — the four bars of Figure 6 plus car usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeQuality {
    /// Trips aggregated.
    pub trips: usize,
    /// Total end-to-end travel time, seconds.
    pub travel_time_s: f64,
    /// Total walking time, seconds.
    pub walk_time_s: f64,
    /// Total waiting time, seconds.
    pub wait_time_s: f64,
    /// Number of distinct cars used to serve the trips (taxi: one per
    /// trip; ride sharing: one per created ride; transit: zero).
    pub cars_used: usize,
}

impl ModeQuality {
    /// Fold one trip plan into the aggregate.
    pub fn add_plan(&mut self, plan: &TripPlan) {
        self.trips += 1;
        self.travel_time_s += plan.travel_time_s();
        self.walk_time_s += plan.walk_time_s();
        self.wait_time_s += plan.wait_time_s();
    }

    /// Mean travel time per trip, seconds.
    pub fn avg_travel_time_s(&self) -> f64 {
        if self.trips == 0 {
            0.0
        } else {
            self.travel_time_s / self.trips as f64
        }
    }

    /// Mean walking time per trip, seconds.
    pub fn avg_walk_time_s(&self) -> f64 {
        if self.trips == 0 {
            0.0
        } else {
            self.walk_time_s / self.trips as f64
        }
    }

    /// Mean waiting time per trip, seconds.
    pub fn avg_wait_time_s(&self) -> f64 {
        if self.trips == 0 {
            0.0
        } else {
            self.wait_time_s / self.trips as f64
        }
    }
}

/// The paper's look-to-book estimate (§X.B.2): with `plans_per_request`
/// trip plans returned per MMTP request (Go-LA: 8), `hops` intermediate
/// hops per plan (Go-LA: 3, i.e. 4 legs), and an `adoption` fraction of
/// commuters actually booking (paper: 1 in 10), the ratio of XAR
/// searches to bookings is
/// `plans_per_request × C(hops+1, 2) / adoption`.
pub fn look_to_book_ratio(plans_per_request: usize, hops: usize, adoption: f64) -> f64 {
    assert!(adoption > 0.0 && adoption <= 1.0, "adoption must be in (0, 1]");
    let combos = (hops + 1) * hops / 2; // C(hops+1, 2)
    let searches = plans_per_request as f64 * combos as f64;
    searches / adoption
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_geo::GeoPoint;
    use xar_transit::Leg;

    #[test]
    fn go_la_arithmetic_gives_480() {
        // "8 trip plans for each request ... 4 legs (i.e. 3 hops) ...
        //  8 * C(3+1, 2) = 48 ride-sharing searches ... 1 in every 10
        //  persons opts for ride-sharing, the look-to-book ratio becomes
        //  as high as 10 * 48 = 480."
        let r = look_to_book_ratio(8, 3, 0.1);
        assert_eq!(r, 480.0);
    }

    #[test]
    fn mode_quality_aggregates() {
        let p = GeoPoint::new(40.7, -74.0);
        let plan = TripPlan {
            departure_s: 0.0,
            arrival_s: 600.0,
            legs: vec![
                Leg::Walk { from: p, to: p, dist_m: 100.0, duration_s: 80.0 },
                Leg::WaitAt { point: p, duration_s: 120.0 },
                Leg::SharedRide { from: p, to: p, board_s: 200.0, alight_s: 600.0 },
            ],
        };
        let mut q = ModeQuality::default();
        q.add_plan(&plan);
        q.add_plan(&plan);
        q.cars_used = 1;
        assert_eq!(q.trips, 2);
        assert_eq!(q.avg_travel_time_s(), 600.0);
        assert_eq!(q.avg_walk_time_s(), 80.0);
        assert_eq!(q.avg_wait_time_s(), 120.0);
    }

    #[test]
    fn empty_quality_is_zero() {
        let q = ModeQuality::default();
        assert_eq!(q.avg_travel_time_s(), 0.0);
        assert_eq!(q.avg_walk_time_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "adoption")]
    fn zero_adoption_panics() {
        let _ = look_to_book_ratio(8, 3, 0.0);
    }
}
