//! Extraction of geographic segments and hop points from trip plans —
//! the vocabulary both integration modes reason in.

use xar_geo::GeoPoint;
use xar_transit::{Leg, TransitNetwork, TripPlan};

/// A geographic portion of a trip plan that a shared ride could
/// substitute: a contiguous run of legs with known endpoints and
/// timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSegment {
    /// Index of the first leg covered.
    pub first_leg: usize,
    /// Index of the last leg covered (inclusive).
    pub last_leg: usize,
    /// Geographic start.
    pub from: GeoPoint,
    /// Geographic end.
    pub to: GeoPoint,
    /// Time the commuter reaches the segment start, absolute seconds.
    pub start_s: f64,
    /// Time the segment currently ends, absolute seconds.
    pub end_s: f64,
}

/// The start point of a leg (`net` resolves stop ids to coordinates).
pub fn leg_start_point(leg: &Leg, net: &TransitNetwork) -> GeoPoint {
    match leg {
        Leg::Walk { from, .. } | Leg::SharedRide { from, .. } => *from,
        Leg::WaitAt { point, .. } => *point,
        Leg::Wait { stop, .. } => net.stops[stop.index()].point,
        Leg::Transit { from, .. } => net.stops[from.index()].point,
    }
}

/// The end point of a leg.
pub fn leg_end_point(leg: &Leg, net: &TransitNetwork) -> GeoPoint {
    match leg {
        Leg::Walk { to, .. } | Leg::SharedRide { to, .. } => *to,
        Leg::WaitAt { point, .. } => *point,
        Leg::Wait { stop, .. } => net.stops[stop.index()].point,
        Leg::Transit { to, .. } => net.stops[to.index()].point,
    }
}

/// The absolute time the commuter reaches the start of each leg (one
/// entry per leg, plus the final arrival appended).
pub fn leg_start_times(plan: &TripPlan) -> Vec<f64> {
    let mut out = Vec::with_capacity(plan.legs.len() + 1);
    let mut clock = plan.departure_s;
    for leg in &plan.legs {
        out.push(clock);
        clock += leg.duration_s();
    }
    out.push(clock);
    out
}

/// The segment a shared ride should cover for the infeasible leg at
/// `leg_idx` (§IX.A): a long walk is replaced end-to-end; a long wait
/// is replaced *together with the transit leg it waits for* (riding
/// instead of waiting-then-riding), extending through any directly
/// following waits+rides until the next walk.
pub fn infeasible_segment(plan: &TripPlan, net: &TransitNetwork, leg_idx: usize) -> PlanSegment {
    let times = leg_start_times(plan);
    match &plan.legs[leg_idx] {
        Leg::Walk { .. } | Leg::SharedRide { .. } => PlanSegment {
            first_leg: leg_idx,
            last_leg: leg_idx,
            from: leg_start_point(&plan.legs[leg_idx], net),
            to: leg_end_point(&plan.legs[leg_idx], net),
            start_s: times[leg_idx],
            end_s: times[leg_idx + 1],
        },
        Leg::Wait { .. } | Leg::WaitAt { .. } | Leg::Transit { .. } => {
            // Cover from this wait through the final consecutive
            // transit leg (waits and rides chain until a walk).
            let mut last = leg_idx;
            while last + 1 < plan.legs.len()
                && matches!(
                    plan.legs[last + 1],
                    Leg::Wait { .. } | Leg::WaitAt { .. } | Leg::Transit { .. }
                )
            {
                last += 1;
            }
            PlanSegment {
                first_leg: leg_idx,
                last_leg: last,
                from: leg_start_point(&plan.legs[leg_idx], net),
                to: leg_end_point(&plan.legs[last], net),
                start_s: times[leg_idx],
                end_s: times[last + 1],
            }
        }
    }
}

/// The hop points of a plan for the Enhancer mode: origin, each
/// vehicle-to-vehicle transfer location, destination.
pub fn hop_points(plan: &TripPlan, net: &TransitNetwork, origin: GeoPoint, destination: GeoPoint) -> Vec<(GeoPoint, f64)> {
    let times = leg_start_times(plan);
    let mut out = vec![(origin, plan.departure_s)];
    let mut seen_vehicle = false;
    for (i, leg) in plan.legs.iter().enumerate() {
        if matches!(leg, Leg::Transit { .. } | Leg::SharedRide { .. }) {
            if seen_vehicle {
                // The point where this vehicle leg begins is a transfer
                // hop.
                out.push((leg_start_point(leg, net), times[i]));
            }
            seen_vehicle = true;
        }
    }
    out.push((destination, plan.arrival_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_transit::{LineId, LineKind, StopId};

    fn net() -> TransitNetwork {
        let stops: Vec<xar_transit::Stop> = (0..4)
            .map(|i| xar_transit::Stop {
                id: StopId(i),
                point: GeoPoint::new(40.70 + 0.01 * f64::from(i), -74.0),
                node: xar_roadnet::NodeId(0),
            })
            .collect();
        let line = xar_transit::Line::with_headway(
            LineId(0),
            LineKind::Bus,
            vec![StopId(0), StopId(1), StopId(2), StopId(3)],
            vec![100.0, 100.0, 100.0],
            0.0,
            600.0,
            0.0,
            86_400.0,
        );
        TransitNetwork::new(stops, vec![line])
    }

    fn p(lat: f64) -> GeoPoint {
        GeoPoint::new(lat, -74.0)
    }

    fn sample_plan() -> TripPlan {
        TripPlan {
            departure_s: 0.0,
            arrival_s: 1000.0,
            legs: vec![
                Leg::Walk { from: p(40.69), to: p(40.70), dist_m: 1400.0, duration_s: 200.0 },
                Leg::Wait { stop: StopId(0), duration_s: 700.0 },
                Leg::Transit { line: LineId(0), from: StopId(0), to: StopId(2), board_s: 900.0, alight_s: 950.0 },
                Leg::Walk { from: p(40.72), to: p(40.73), dist_m: 70.0, duration_s: 50.0 },
            ],
        }
    }

    #[test]
    fn start_times_accumulate() {
        let t = leg_start_times(&sample_plan());
        assert_eq!(t, vec![0.0, 200.0, 900.0, 950.0, 1000.0]);
    }

    #[test]
    fn walk_segment_is_single_leg() {
        let n = net();
        let s = infeasible_segment(&sample_plan(), &n, 0);
        assert_eq!((s.first_leg, s.last_leg), (0, 0));
        assert_eq!(s.from, p(40.69));
        assert_eq!(s.to, p(40.70));
        assert_eq!(s.start_s, 0.0);
        assert_eq!(s.end_s, 200.0);
    }

    #[test]
    fn wait_segment_extends_through_ride() {
        let n = net();
        let s = infeasible_segment(&sample_plan(), &n, 1);
        assert_eq!((s.first_leg, s.last_leg), (1, 2));
        assert_eq!(s.from, n.stops[0].point);
        assert_eq!(s.to, n.stops[2].point);
        assert_eq!(s.start_s, 200.0);
        assert_eq!(s.end_s, 950.0);
    }

    #[test]
    fn hop_points_single_vehicle_leg() {
        let n = net();
        let plan = sample_plan();
        let hops = hop_points(&plan, &n, p(40.69), p(40.73));
        // One vehicle leg: no intermediate hops, just origin + dest.
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].0, p(40.69));
        assert_eq!(hops[1].0, p(40.73));
    }

    #[test]
    fn hop_points_with_transfer() {
        let n = net();
        let mut plan = sample_plan();
        plan.legs.push(Leg::Wait { stop: StopId(2), duration_s: 100.0 });
        plan.legs.push(Leg::Transit {
            line: LineId(0),
            from: StopId(2),
            to: StopId(3),
            board_s: 1100.0,
            alight_s: 1200.0,
        });
        plan.arrival_s = 1200.0;
        let hops = hop_points(&plan, &n, p(40.69), p(40.74));
        assert_eq!(hops.len(), 3, "origin + 1 transfer + destination");
        assert_eq!(hops[1].0, n.stops[2].point);
    }
}
