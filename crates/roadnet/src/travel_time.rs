//! Historical travel-time model.
//!
//! XAR estimates arrival times "from historical travel times" (§VI).
//! Free-flow edge speeds are a poor estimate at 8:30 am in Manhattan;
//! this model captures the standard diurnal congestion profile as an
//! hour-of-day multiplier on free-flow travel time, with linear
//! interpolation between hours. The engine samples the profile at a
//! ride's departure time and scales all of the ride's ETAs by it.

/// Hour-of-day travel-time multipliers (1.0 = free flow).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoricalSpeeds {
    /// `hourly[h]` multiplies free-flow travel time for departures at
    /// hour `h` (0-23). Values must be ≥ 1.0 (congestion never makes
    /// roads faster than free flow).
    hourly: [f64; 24],
}

impl HistoricalSpeeds {
    /// Build from explicit multipliers.
    ///
    /// # Panics
    ///
    /// Panics if any multiplier is below 1.0 or not finite.
    pub fn new(hourly: [f64; 24]) -> Self {
        for (h, &m) in hourly.iter().enumerate() {
            assert!(m.is_finite() && m >= 1.0, "multiplier for hour {h} must be >= 1, got {m}");
        }
        Self { hourly }
    }

    /// Flat profile: free flow all day (the default behaviour when no
    /// history is configured).
    pub fn flat() -> Self {
        Self { hourly: [1.0; 24] }
    }

    /// A typical weekday urban congestion profile: quiet nights,
    /// a morning peak around 8-9 am (~1.8x free flow) and a heavier
    /// evening peak around 5-7 pm (~2.0x).
    pub fn weekday_urban() -> Self {
        let mut h = [1.0f64; 24];
        let profile = [
            (6, 1.2),
            (7, 1.5),
            (8, 1.8),
            (9, 1.7),
            (10, 1.4),
            (11, 1.3),
            (12, 1.35),
            (13, 1.35),
            (14, 1.4),
            (15, 1.5),
            (16, 1.7),
            (17, 2.0),
            (18, 1.9),
            (19, 1.6),
            (20, 1.3),
            (21, 1.15),
            (22, 1.05),
        ];
        for (hour, m) in profile {
            h[hour] = m;
        }
        Self { hourly: h }
    }

    /// The multiplier at an absolute time (seconds since midnight),
    /// linearly interpolated between hour marks, wrapping at midnight.
    pub fn multiplier_at(&self, time_s: f64) -> f64 {
        let day = 86_400.0;
        let t = time_s.rem_euclid(day);
        let hf = t / 3_600.0;
        let h0 = hf.floor() as usize % 24;
        let h1 = (h0 + 1) % 24;
        let frac = hf - hf.floor();
        self.hourly[h0] * (1.0 - frac) + self.hourly[h1] * frac
    }

    /// Historical travel time for a leg with free-flow duration
    /// `free_flow_s` departing at `depart_s`.
    pub fn travel_time_s(&self, free_flow_s: f64, depart_s: f64) -> f64 {
        free_flow_s * self.multiplier_at(depart_s)
    }
}

impl Default for HistoricalSpeeds {
    fn default() -> Self {
        Self::flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_identity() {
        let h = HistoricalSpeeds::flat();
        for t in [0.0, 3.33 * 3600.0, 12.0 * 3600.0, 23.99 * 3600.0] {
            assert_eq!(h.multiplier_at(t), 1.0);
        }
        assert_eq!(h.travel_time_s(600.0, 8.5 * 3600.0), 600.0);
    }

    #[test]
    fn weekday_peaks_at_rush_hours() {
        let h = HistoricalSpeeds::weekday_urban();
        let morning = h.multiplier_at(8.0 * 3600.0);
        let night = h.multiplier_at(3.0 * 3600.0);
        let evening = h.multiplier_at(17.0 * 3600.0);
        assert!(morning > 1.5, "morning {morning}");
        assert!(evening > morning, "evening {evening} vs morning {morning}");
        assert_eq!(night, 1.0);
    }

    #[test]
    fn interpolation_is_continuous() {
        let h = HistoricalSpeeds::weekday_urban();
        // Just before and after an hour boundary differ by a hair.
        let before = h.multiplier_at(7.999 * 3600.0);
        let after = h.multiplier_at(8.001 * 3600.0);
        assert!((before - after).abs() < 0.01, "{before} vs {after}");
        // Midpoint is the average of hour marks.
        let mid = h.multiplier_at(7.5 * 3600.0);
        assert!((mid - (1.5 + 1.8) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn wraps_at_midnight() {
        let h = HistoricalSpeeds::weekday_urban();
        assert_eq!(h.multiplier_at(0.0), h.multiplier_at(86_400.0));
        assert_eq!(h.multiplier_at(-3_600.0), h.multiplier_at(23.0 * 3600.0));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_speedups() {
        let mut m = [1.0; 24];
        m[5] = 0.5;
        let _ = HistoricalSpeeds::new(m);
    }
}
