//! Road-network substrate for the XAR system.
//!
//! The paper obtains its road network from OpenStreetMap and its
//! shortest paths from OpenTripPlanner. This crate replaces both with a
//! from-scratch implementation:
//!
//! * [`graph`] — a compact directed road graph (CSR adjacency) whose
//!   vertices are way-points with geographic coordinates, exactly the
//!   representation the paper assumes ("OpenStreetMaps represent the
//!   underlying road network as a graph where the vertices correspond to
//!   waypoints", §VI fn. 2).
//! * [`spatial`] — grid-bucketed nearest-node lookup for snapping
//!   point locations onto the network.
//! * [`shortest_path`] — Dijkstra / A* / bounded and multi-target
//!   variants, over driving time, driving distance, or undirected
//!   walking distance (walking ignores one-way restrictions, which is
//!   why the paper keeps separate walking and driving distances).
//! * [`route`] — a concrete route: node sequence + cumulative
//!   distance/time, supporting position-at-time queries for tracking.
//! * [`generators`] — synthetic city generators (Manhattan lattice with
//!   avenues/streets/one-ways, radial, random) standing in for the NYC
//!   OSM extract, plus strong-connectivity repair.
//! * [`poi`] — a seeded point-of-interest sampler standing in for the
//!   Google Places landmark source.
//!
//! ```
//! use xar_roadnet::{CityConfig, CostMetric, Direction, NodeId, ShortestPaths};
//!
//! let graph = CityConfig::test_city(7).generate();
//! let sp = ShortestPaths::new(&graph, CostMetric::Distance, Direction::Forward);
//! let n = graph.node_count() as u32;
//! let path = sp.path(NodeId(0), NodeId(n - 1)).expect("city is strongly connected");
//! // A road path is never shorter than the great-circle distance.
//! let crow = graph.point(NodeId(0)).haversine_m(&graph.point(NodeId(n - 1)));
//! assert!(path.dist_m >= crow - 1.0);
//! assert_eq!(path.nodes.first(), Some(&NodeId(0)));
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod geojson;
pub mod graph;
pub mod io;
pub mod poi;
pub mod route;
pub mod scc;
pub mod shortest_path;
pub mod spatial;
pub mod travel_time;

pub use generators::{CityConfig, CityKind};
pub use graph::{Edge, EdgeId, Node, NodeId, RoadClass, RoadGraph, RoadGraphBuilder};
pub use poi::{prune_insignificant, sample_pois, Poi, PoiConfig, PoiKind};
pub use route::Route;
pub use shortest_path::{CostMetric, Direction, PathResult, ShortestPaths, WALK_SPEED_MPS};
pub use spatial::NodeLocator;
pub use travel_time::HistoricalSpeeds;
