//! Binary serialization of road graphs.
//!
//! The paper's pre-processing "needs to be done once before deploying
//! the system for each region" (§III); persisting the network (and,
//! one level up, the whole region index) lets a deployment skip it on
//! restart. The format is a small versioned little-endian codec — no
//! external dependencies, stable across runs.

use std::io::{self, Read, Write};

use xar_geo::GeoPoint;

use crate::graph::{NodeId, RoadClass, RoadGraph, RoadGraphBuilder};

/// Magic bytes prefixing a serialized road graph.
pub const GRAPH_MAGIC: &[u8; 4] = b"XARG";
/// Current format version.
pub const GRAPH_VERSION: u16 = 1;

fn w_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn class_tag(c: RoadClass) -> u8 {
    match c {
        RoadClass::Highway => 0,
        RoadClass::Avenue => 1,
        RoadClass::Street => 2,
        RoadClass::Lane => 3,
    }
}

fn class_from_tag(t: u8) -> io::Result<RoadClass> {
    Ok(match t {
        0 => RoadClass::Highway,
        1 => RoadClass::Avenue,
        2 => RoadClass::Street,
        3 => RoadClass::Lane,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown road class tag {other}"),
            ))
        }
    })
}

/// Serialize `graph` to `w`.
pub fn write_graph(w: &mut impl Write, graph: &RoadGraph) -> io::Result<()> {
    w.write_all(GRAPH_MAGIC)?;
    w_u16(w, GRAPH_VERSION)?;
    w_u32(w, graph.node_count() as u32)?;
    for n in graph.node_ids() {
        let p = graph.point(n);
        w_f64(w, p.lat)?;
        w_f64(w, p.lon)?;
    }
    w_u32(w, graph.edge_count() as u32)?;
    for e in graph.edges() {
        w_u32(w, e.from.0)?;
        w_u32(w, e.to.0)?;
        w_f64(w, e.len_m)?;
        w.write_all(&[class_tag(e.class)])?;
    }
    Ok(())
}

/// Deserialize a road graph from `r`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version or malformed content.
pub fn read_graph(r: &mut impl Read) -> io::Result<RoadGraph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a XAR road graph"));
    }
    let version = r_u16(r)?;
    if version != GRAPH_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported graph version {version}"),
        ));
    }
    let n = r_u32(r)? as usize;
    // Counts come from untrusted bytes: cap the up-front reservation so
    // a corrupt header cannot force a multi-gigabyte allocation; pushes
    // beyond the cap just grow normally (truncated input fails at
    // read_exact long before that).
    let mut b = RoadGraphBuilder::with_capacity(n.min(1 << 20), 0);
    for _ in 0..n {
        let lat = r_f64(r)?;
        let lon = r_f64(r)?;
        if !((-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon)) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "coordinate out of range"));
        }
        b.add_node(GeoPoint::new(lat, lon));
    }
    let m = r_u32(r)? as usize;
    for _ in 0..m {
        let from = r_u32(r)?;
        let to = r_u32(r)?;
        let len = r_f64(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let class = class_from_tag(tag[0])?;
        if from as usize >= n || to as usize >= n || !(len.is_finite() && len > 0.0) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed edge"));
        }
        b.add_edge(NodeId(from), NodeId(to), class, Some(len));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::CityConfig;

    #[test]
    fn round_trip_preserves_graph() {
        let g = CityConfig::test_city(3).generate();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for n in g.node_ids() {
            assert_eq!(g.point(n).lat, g2.point(n).lat);
            assert_eq!(g.point(n).lon, g2.point(n).lon);
        }
        for (a, b) in g.edges().zip(g2.edges()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.len_m, b.len_m);
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph(&mut &b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_input() {
        let g = CityConfig::test_city(4).generate();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let g = CityConfig::test_city(5).generate();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        buf[4] = 99; // version little-endian low byte
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }
}
