//! Grid-bucketed nearest-node lookup.
//!
//! Every external location (taxi pickup, landmark, transit stop) must be
//! snapped to a road-graph way-point before any routing can happen. The
//! locator buckets node ids by grid cell and answers nearest-node
//! queries by scanning outward ring by ring, which is exact because a
//! ring at Chebyshev distance `r` cannot contain a point closer than
//! `(r-1) * cell` metres.

use xar_geo::{BoundingBox, GeoPoint, GridSpec};

use crate::graph::{NodeId, RoadGraph};

/// Spatial index over the nodes of a road graph.
#[derive(Debug, Clone)]
pub struct NodeLocator {
    grid: GridSpec,
    /// Node ids per cell, indexed by `row * cols + col`.
    buckets: Vec<Vec<NodeId>>,
    node_count: usize,
}

impl NodeLocator {
    /// Index all nodes of `graph` with bucket cells of side `cell_m`
    /// metres (a few hundred metres is a good default).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn new(graph: &RoadGraph, cell_m: f64) -> Self {
        assert!(graph.node_count() > 0, "cannot index an empty graph");
        let bbox = BoundingBox::from_points(graph.node_ids().map(|n| graph.point(n)))
            .expect("non-empty graph")
            .expanded(1e-4);
        let grid = GridSpec::new(bbox, cell_m);
        let mut buckets = vec![Vec::new(); grid.cell_count() as usize];
        for n in graph.node_ids() {
            let id = grid.grid_of(&graph.point(n));
            buckets[(id.row as usize) * grid.cols() as usize + id.col as usize].push(n);
        }
        Self { grid, buckets, node_count: graph.node_count() }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// Whether the locator is empty (never true: construction panics on
    /// an empty graph).
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    fn bucket(&self, col: u32, row: u32) -> &[NodeId] {
        &self.buckets[(row as usize) * self.grid.cols() as usize + col as usize]
    }

    /// The graph node nearest to `p` (by great-circle distance), and the
    /// distance to it in metres.
    ///
    /// Allocation-free: the engine snaps both request endpoints through
    /// here on every search, so the ring walk uses the visitor form of
    /// the grid expansion.
    pub fn nearest(&self, graph: &RoadGraph, p: &GeoPoint) -> (NodeId, f64) {
        let center = self.grid.grid_of(p);
        let cell = self.grid.cell_m();
        let max_radius = self.grid.cols().max(self.grid.rows());
        let mut best: Option<(NodeId, f64)> = None;
        for r in 0..=max_radius {
            // Once we have a candidate, stop as soon as the next ring
            // cannot possibly contain a closer node.
            if let Some((_, d)) = best {
                if f64::from(r.saturating_sub(1)) * cell > d {
                    break;
                }
            }
            self.grid.for_ring(center, r, |cid| {
                for &n in self.bucket(cid.col, cid.row) {
                    let d = graph.point(n).haversine_m(p);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((n, d));
                    }
                }
            });
        }
        best.expect("locator indexes at least one node")
    }

    /// All nodes within `radius_m` metres of `p`, as `(node, distance)`
    /// pairs sorted by distance.
    pub fn within(&self, graph: &RoadGraph, p: &GeoPoint, radius_m: f64) -> Vec<(NodeId, f64)> {
        let center = self.grid.grid_of(p);
        let cell = self.grid.cell_m();
        let rings = (radius_m / cell).ceil() as u32 + 1;
        let mut out = Vec::new();
        for r in 0..=rings {
            for cid in self.grid.ring(center, r) {
                for &n in self.bucket(cid.col, cid.row) {
                    let d = graph.point(n).haversine_m(p);
                    if d <= radius_m {
                        out.push((n, d));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadClass, RoadGraphBuilder};

    fn grid_graph(n: usize, spacing_deg: f64) -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let mut ids = vec![];
        for r in 0..n {
            for c in 0..n {
                ids.push(b.add_node(GeoPoint::new(
                    40.70 + spacing_deg * r as f64,
                    -74.00 + spacing_deg * c as f64,
                )));
            }
        }
        // A ring to keep the graph non-trivial.
        for i in 1..ids.len() {
            b.add_two_way(ids[i - 1], ids[i], RoadClass::Street, None);
        }
        b.build()
    }

    #[test]
    fn nearest_exact_hit() {
        let g = grid_graph(10, 0.005);
        let loc = NodeLocator::new(&g, 300.0);
        for n in [0u32, 37, 99] {
            let p = g.point(NodeId(n));
            let (found, d) = loc.nearest(&g, &p);
            assert_eq!(found, NodeId(n));
            assert!(d < 1e-6);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let g = grid_graph(10, 0.005);
        let loc = NodeLocator::new(&g, 250.0);
        let queries = [
            GeoPoint::new(40.712, -73.987),
            GeoPoint::new(40.7401, -73.9703),
            GeoPoint::new(40.699, -74.01), // outside the node bbox
        ];
        for q in queries {
            let (found, d) = loc.nearest(&g, &q);
            let (bf, bd) = g
                .node_ids()
                .map(|n| (n, g.point(n).haversine_m(&q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((d - bd).abs() < 1e-9, "query {q:?}: {found:?}@{d} vs {bf:?}@{bd}");
        }
    }

    #[test]
    fn within_radius_sorted_and_complete() {
        let g = grid_graph(10, 0.005);
        let loc = NodeLocator::new(&g, 250.0);
        let q = GeoPoint::new(40.72, -73.98);
        let r = 1200.0;
        let got = loc.within(&g, &q, r);
        let expect: usize = g
            .node_ids()
            .filter(|n| g.point(*n).haversine_m(&q) <= r)
            .count();
        assert_eq!(got.len(), expect);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn within_zero_radius_can_be_empty() {
        let g = grid_graph(3, 0.01);
        let loc = NodeLocator::new(&g, 250.0);
        let q = GeoPoint::new(40.705, -73.995); // between nodes
        assert!(loc.within(&g, &q, 10.0).is_empty());
    }

    #[test]
    fn single_node_graph() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(GeoPoint::new(40.70, -74.00));
        let c = b.add_node(GeoPoint::new(40.701, -74.00));
        b.add_two_way(a, c, RoadClass::Street, None);
        let g = b.build();
        let loc = NodeLocator::new(&g, 100.0);
        let (n, _) = loc.nearest(&g, &GeoPoint::new(40.7004, -74.00));
        assert_eq!(n, a);
    }
}
