//! Point-of-interest sampler.
//!
//! The paper extracts ~30 000 landmarks from the Google Places API,
//! prunes insignificant ones (small stores) down to ~16 000, and feeds
//! the remainder to the landmark filter. We reproduce the same pipeline
//! with a seeded sampler: POIs are scattered near road nodes, weighted
//! by local connectivity (intersections of big roads attract more
//! amenities), with a significance class that the caller can use to
//! prune exactly like the paper does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xar_geo::GeoPoint;

use crate::graph::{NodeId, RoadGraph};

/// Category of a point of interest, ordered by significance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PoiKind {
    /// Transit infrastructure (bus stop, railway station, taxi stand) —
    /// always significant.
    TransitStop,
    /// Major destination (mall, big store, important building).
    MajorDestination,
    /// Small store / minor amenity — pruned by the paper's filter.
    MinorAmenity,
}

impl PoiKind {
    /// Whether the paper's pruning step keeps this POI ("pruned to
    /// remove insignificant landmarks (e.g., small stores)", §X.A.3).
    pub fn is_significant(self) -> bool {
        !matches!(self, PoiKind::MinorAmenity)
    }
}

/// A sampled point of interest, snapped to its nearest road node.
#[derive(Debug, Clone, Copy)]
pub struct Poi {
    /// Geographic location (near, not exactly on, the road node).
    pub point: GeoPoint,
    /// The road-graph node this POI snaps to.
    pub node: NodeId,
    /// Significance category.
    pub kind: PoiKind,
}

/// Configuration of the POI sampler.
#[derive(Debug, Clone)]
pub struct PoiConfig {
    /// Expected number of POIs to sample (before significance pruning).
    pub count: usize,
    /// Fraction that are transit stops.
    pub transit_fraction: f64,
    /// Fraction that are major destinations.
    pub major_fraction: f64,
    /// Maximum offset of the POI from its road node, metres.
    pub scatter_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoiConfig {
    fn default() -> Self {
        Self { count: 2_000, transit_fraction: 0.25, major_fraction: 0.35, scatter_m: 40.0, seed: 0xA11CE }
    }
}

/// Sample POIs over the road network.
///
/// Nodes with higher out-degree (bigger intersections) are
/// proportionally more likely to host POIs, mimicking real amenity
/// distributions. Deterministic in the seed.
pub fn sample_pois(graph: &RoadGraph, cfg: &PoiConfig) -> Vec<Poi> {
    assert!(graph.node_count() > 0, "cannot sample POIs on an empty graph");
    assert!(
        cfg.transit_fraction + cfg.major_fraction <= 1.0 + 1e-9,
        "fractions must sum to at most 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Degree-weighted cumulative distribution over nodes.
    let weights: Vec<f64> = graph.node_ids().map(|n| 1.0 + graph.out_degree(n) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(acc);
    }
    let mut out = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let x = rng.random::<f64>() * total;
        let idx = cum.partition_point(|&c| c < x).min(weights.len() - 1);
        let node = NodeId(idx as u32);
        let base = graph.point(node);
        let bearing = rng.random::<f64>() * 360.0;
        let dist = rng.random::<f64>() * cfg.scatter_m;
        let point = base.destination(bearing, dist);
        let roll = rng.random::<f64>();
        let kind = if roll < cfg.transit_fraction {
            PoiKind::TransitStop
        } else if roll < cfg.transit_fraction + cfg.major_fraction {
            PoiKind::MajorDestination
        } else {
            PoiKind::MinorAmenity
        };
        out.push(Poi { point, node, kind });
    }
    out
}

/// The paper's significance pruning: keep transit stops and major
/// destinations, drop minor amenities.
pub fn prune_insignificant(pois: &[Poi]) -> Vec<Poi> {
    pois.iter().copied().filter(|p| p.kind.is_significant()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::CityConfig;

    #[test]
    fn sampling_is_deterministic() {
        let g = CityConfig::test_city(1).generate();
        let a = sample_pois(&g, &PoiConfig::default());
        let b = sample_pois(&g, &PoiConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn count_is_respected() {
        let g = CityConfig::test_city(1).generate();
        let pois = sample_pois(&g, &PoiConfig { count: 500, ..Default::default() });
        assert_eq!(pois.len(), 500);
    }

    #[test]
    fn kinds_roughly_match_fractions() {
        let g = CityConfig::test_city(2).generate();
        let cfg = PoiConfig { count: 4_000, ..Default::default() };
        let pois = sample_pois(&g, &cfg);
        let transit = pois.iter().filter(|p| p.kind == PoiKind::TransitStop).count() as f64;
        let frac = transit / pois.len() as f64;
        assert!((frac - cfg.transit_fraction).abs() < 0.05, "transit fraction {frac}");
    }

    #[test]
    fn pois_are_near_their_nodes() {
        let g = CityConfig::test_city(3).generate();
        let cfg = PoiConfig { scatter_m: 40.0, ..Default::default() };
        for p in sample_pois(&g, &cfg) {
            assert!(p.point.haversine_m(&g.point(p.node)) <= cfg.scatter_m + 1.0);
        }
    }

    #[test]
    fn pruning_removes_only_minor() {
        let g = CityConfig::test_city(4).generate();
        let pois = sample_pois(&g, &PoiConfig::default());
        let kept = prune_insignificant(&pois);
        assert!(kept.len() < pois.len());
        assert!(kept.iter().all(|p| p.kind.is_significant()));
        let significant = pois.iter().filter(|p| p.kind.is_significant()).count();
        assert_eq!(kept.len(), significant);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn invalid_fractions_panic() {
        let g = CityConfig::test_city(1).generate();
        let _ = sample_pois(
            &g,
            &PoiConfig { transit_fraction: 0.8, major_fraction: 0.5, ..Default::default() },
        );
    }
}
