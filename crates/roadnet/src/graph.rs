//! Compact directed road graph.
//!
//! Nodes are way-points with geographic coordinates; edges are directed
//! road segments with a length and a free-flow speed derived from their
//! [`RoadClass`]. The graph is built with a [`RoadGraphBuilder`] and
//! frozen into a CSR (compressed sparse row) [`RoadGraph`] that stores
//! both the forward and the reverse adjacency, so that forward,
//! reverse and undirected traversals are all cache-friendly.

use xar_geo::GeoPoint;

/// Index of a node (way-point) in the road graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a directed edge in the road graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road segment, determining its free-flow speed.
///
/// The synthetic Manhattan generator uses `Avenue` for the fast
/// north-south axes and `Street` for the slower cross streets, mirroring
/// the speed heterogeneity of the real NYC network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Grade-separated highway (fastest).
    Highway,
    /// Major urban artery (e.g. a Manhattan avenue).
    Avenue,
    /// Regular city street.
    Street,
    /// Narrow lane or service road (slowest).
    Lane,
}

impl RoadClass {
    /// Free-flow driving speed for this class, in m/s.
    pub fn speed_mps(self) -> f64 {
        match self {
            RoadClass::Highway => 22.0, // ~80 km/h
            RoadClass::Avenue => 11.0,  // ~40 km/h
            RoadClass::Street => 8.0,   // ~29 km/h
            RoadClass::Lane => 4.5,     // ~16 km/h
        }
    }
}

/// A node of the road graph: a way-point with a location.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Geographic position of the way-point.
    pub point: GeoPoint,
}

/// A directed edge of the road graph.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Length along the road, in metres.
    pub len_m: f64,
    /// Functional class, fixing the free-flow speed.
    pub class: RoadClass,
}

impl Edge {
    /// Free-flow traversal time of the edge, in seconds.
    #[inline]
    pub fn travel_time_s(&self) -> f64 {
        self.len_m / self.class.speed_mps()
    }
}

/// Incremental builder for a [`RoadGraph`].
#[derive(Debug, Default)]
pub struct RoadGraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl RoadGraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-allocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self { nodes: Vec::with_capacity(nodes), edges: Vec::with_capacity(edges) }
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, point: GeoPoint) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count exceeds u32"));
        self.nodes.push(Node { point });
        id
    }

    /// Add a one-way edge from `from` to `to`. The length defaults to
    /// the great-circle distance between the endpoints; pass
    /// `Some(len_m)` to override (e.g. for curved roads).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the length is not
    /// positive.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, class: RoadClass, len_m: Option<f64>) -> EdgeId {
        assert!(from.index() < self.nodes.len(), "edge tail {from:?} out of range");
        assert!(to.index() < self.nodes.len(), "edge head {to:?} out of range");
        let len = len_m.unwrap_or_else(|| {
            self.nodes[from.index()].point.haversine_m(&self.nodes[to.index()].point)
        });
        assert!(len.is_finite() && len > 0.0, "edge length must be positive, got {len}");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count exceeds u32"));
        self.edges.push(Edge { from, to, len_m: len, class });
        id
    }

    /// Add a pair of opposite one-way edges (a two-way road).
    pub fn add_two_way(&mut self, a: NodeId, b: NodeId, class: RoadClass, len_m: Option<f64>) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, class, len_m), self.add_edge(b, a, class, len_m))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into an immutable CSR graph.
    pub fn build(self) -> RoadGraph {
        RoadGraph::from_parts(self.nodes, self.edges)
    }
}

/// An immutable road graph in CSR form, with both forward and reverse
/// adjacency.
#[derive(Debug, Clone)]
pub struct RoadGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// CSR offsets into `out_edges` per node (len = nodes + 1).
    out_offsets: Vec<u32>,
    /// Edge ids sorted by tail node.
    out_edges: Vec<EdgeId>,
    /// CSR offsets into `in_edges` per node (len = nodes + 1).
    in_offsets: Vec<u32>,
    /// Edge ids sorted by head node.
    in_edges: Vec<EdgeId>,
}

impl RoadGraph {
    fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        let n = nodes.len();
        let mut out_counts = vec![0u32; n + 1];
        let mut in_counts = vec![0u32; n + 1];
        for e in &edges {
            out_counts[e.from.index() + 1] += 1;
            in_counts[e.to.index() + 1] += 1;
        }
        for i in 0..n {
            out_counts[i + 1] += out_counts[i];
            in_counts[i + 1] += in_counts[i];
        }
        let mut out_edges = vec![EdgeId(0); edges.len()];
        let mut in_edges = vec![EdgeId(0); edges.len()];
        let mut out_cursor = out_counts.clone();
        let mut in_cursor = in_counts.clone();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            out_edges[out_cursor[e.from.index()] as usize] = id;
            out_cursor[e.from.index()] += 1;
            in_edges[in_cursor[e.to.index()] as usize] = id;
            in_cursor[e.to.index()] += 1;
        }
        Self { nodes, edges, out_offsets: out_counts, out_edges, in_offsets: in_counts, in_edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The location of node `id`.
    #[inline]
    pub fn point(&self, id: NodeId) -> GeoPoint {
        self.nodes[id.index()].point
    }

    /// The edge with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// The edges leaving `node`.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        self.out_edges[lo..hi].iter().map(move |&e| &self.edges[e.index()])
    }

    /// The edges entering `node`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        let lo = self.in_offsets[node.index()] as usize;
        let hi = self.in_offsets[node.index() + 1] as usize;
        self.in_edges[lo..hi].iter().map(move |&e| &self.edges[e.index()])
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.out_offsets[node.index() + 1] - self.out_offsets[node.index()]) as usize
    }

    /// Total length of all edges in metres (each direction of a two-way
    /// road counted separately).
    pub fn total_edge_length_m(&self) -> f64 {
        self.edges.iter().map(|e| e.len_m).sum()
    }

    /// Find the directed edge from `from` to `to`, if any.
    pub fn find_edge(&self, from: NodeId, to: NodeId) -> Option<&Edge> {
        self.out_edges(from).find(|e| e.to == to)
    }

    /// Build a new graph containing only the nodes for which `keep` is
    /// true (and the edges between them). Returns the new graph and, for
    /// each old node id, its new id (or `None` if dropped).
    ///
    /// Used by the generators to restrict a city to its largest strongly
    /// connected component.
    pub fn subgraph(&self, keep: &[bool]) -> (RoadGraph, Vec<Option<NodeId>>) {
        assert_eq!(keep.len(), self.nodes.len(), "keep mask length mismatch");
        let mut mapping = vec![None; self.nodes.len()];
        let mut nodes = Vec::new();
        for (i, k) in keep.iter().enumerate() {
            if *k {
                mapping[i] = Some(NodeId(nodes.len() as u32));
                nodes.push(self.nodes[i]);
            }
        }
        let mut edges = Vec::new();
        for e in &self.edges {
            if let (Some(f), Some(t)) = (mapping[e.from.index()], mapping[e.to.index()]) {
                edges.push(Edge { from: f, to: t, ..*e });
            }
        }
        (RoadGraph::from_parts(nodes, edges), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadGraph {
        // a -> b -> c -> a, plus two-way a <-> c.
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(GeoPoint::new(40.70, -74.00));
        let bb = b.add_node(GeoPoint::new(40.71, -74.00));
        let c = b.add_node(GeoPoint::new(40.71, -73.99));
        b.add_edge(a, bb, RoadClass::Street, None);
        b.add_edge(bb, c, RoadClass::Street, None);
        b.add_edge(c, a, RoadClass::Avenue, None);
        b.add_two_way(a, c, RoadClass::Lane, Some(2_000.0));
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn out_and_in_edges_are_consistent() {
        let g = triangle();
        let a = NodeId(0);
        let out: Vec<_> = g.out_edges(a).map(|e| e.to).collect();
        assert!(out.contains(&NodeId(1)));
        assert!(out.contains(&NodeId(2)));
        assert_eq!(out.len(), 2);
        let inc: Vec<_> = g.in_edges(a).map(|e| e.from).collect();
        assert_eq!(inc, vec![NodeId(2), NodeId(2)]); // c->a street + c->a lane
    }

    #[test]
    fn default_edge_length_is_haversine() {
        let g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let d = g.point(NodeId(0)).haversine_m(&g.point(NodeId(1)));
        assert!((e.len_m - d).abs() < 1e-9);
    }

    #[test]
    fn explicit_edge_length_is_respected() {
        let g = triangle();
        let lane = g
            .out_edges(NodeId(0))
            .find(|e| e.class == RoadClass::Lane)
            .unwrap();
        assert_eq!(lane.len_m, 2_000.0);
    }

    #[test]
    fn travel_time_uses_class_speed() {
        let e = Edge { from: NodeId(0), to: NodeId(1), len_m: 110.0, class: RoadClass::Avenue };
        assert!((e.travel_time_s() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn speeds_are_ordered_by_class() {
        assert!(RoadClass::Highway.speed_mps() > RoadClass::Avenue.speed_mps());
        assert!(RoadClass::Avenue.speed_mps() > RoadClass::Street.speed_mps());
        assert!(RoadClass::Street.speed_mps() > RoadClass::Lane.speed_mps());
    }

    #[test]
    fn subgraph_drops_nodes_and_their_edges() {
        let g = triangle();
        let (sub, map) = g.subgraph(&[true, false, true]);
        assert_eq!(sub.node_count(), 2);
        assert!(map[1].is_none());
        // Only a<->c edges survive (street c->a + two-way lane).
        assert_eq!(sub.edge_count(), 3);
        let new_a = map[0].unwrap();
        let new_c = map[2].unwrap();
        assert!(sub.find_edge(new_c, new_a).is_some());
        assert!(sub.find_edge(new_a, new_c).is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_panics() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(GeoPoint::new(40.70, -74.00));
        b.add_edge(a, NodeId(7), RoadClass::Street, Some(1.0));
    }

    #[test]
    fn find_edge_absent_is_none() {
        let g = triangle();
        assert!(g.find_edge(NodeId(1), NodeId(0)).is_none());
    }
}
