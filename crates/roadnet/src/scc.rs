//! Strongly connected components (iterative Kosaraju).
//!
//! The synthetic city generators use this to restrict a generated
//! network to its largest strongly connected component, so that every
//! ride request has a driving route — one-way streets and deleted links
//! can otherwise strand nodes.

use crate::graph::{NodeId, RoadGraph};

/// Assign every node a component id; ids are arbitrary but dense
/// (`0..component_count`). Returns `(component_of_node, component_count)`.
pub fn strongly_connected_components(g: &RoadGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    // Pass 1: iterative DFS on the forward graph recording finish order.
    let mut visited = vec![false; n];
    let mut finish_order = Vec::with_capacity(n);
    // Stack frames: (node, out-edge iterator position).
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
        visited[start] = true;
        while let Some(&mut (node, ref mut pos)) = stack.last_mut() {
            let succs: Vec<NodeId> =
                g.out_edges(NodeId(node)).map(|e| e.to).collect();
            if *pos < succs.len() {
                let next = succs[*pos];
                *pos += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next.0, 0));
                }
            } else {
                finish_order.push(node);
                stack.pop();
            }
        }
    }
    // Pass 2: DFS on the reverse graph in decreasing finish order.
    let mut component = vec![u32::MAX; n];
    let mut count = 0usize;
    for &start in finish_order.iter().rev() {
        if component[start as usize] != u32::MAX {
            continue;
        }
        let id = count as u32;
        count += 1;
        let mut stack = vec![start];
        component[start as usize] = id;
        while let Some(node) = stack.pop() {
            for e in g.in_edges(NodeId(node)) {
                let p = e.from;
                if component[p.index()] == u32::MAX {
                    component[p.index()] = id;
                    stack.push(p.0);
                }
            }
        }
    }
    (component, count)
}

/// Boolean mask of the nodes belonging to the largest strongly
/// connected component of `g`.
pub fn largest_scc_mask(g: &RoadGraph) -> Vec<bool> {
    let (comp, count) = strongly_connected_components(g);
    if count == 0 {
        return vec![];
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("non-empty");
    comp.iter().map(|&c| c == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadClass, RoadGraphBuilder};
    use xar_geo::GeoPoint;

    fn pt(i: usize) -> GeoPoint {
        GeoPoint::new(40.70 + 0.001 * i as f64, -74.00)
    }

    #[test]
    fn single_cycle_is_one_component() {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| b.add_node(pt(i))).collect();
        for i in 0..5 {
            b.add_edge(ids[i], ids[(i + 1) % 5], RoadClass::Street, Some(10.0));
        }
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn chain_is_all_singletons() {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..4).map(|i| b.add_node(pt(i))).collect();
        for i in 0..3 {
            b.add_edge(ids[i], ids[i + 1], RoadClass::Street, Some(10.0));
        }
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // cycle {0,1,2}, cycle {3,4}, one-way bridge 2 -> 3.
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| b.add_node(pt(i))).collect();
        b.add_edge(ids[0], ids[1], RoadClass::Street, Some(10.0));
        b.add_edge(ids[1], ids[2], RoadClass::Street, Some(10.0));
        b.add_edge(ids[2], ids[0], RoadClass::Street, Some(10.0));
        b.add_edge(ids[3], ids[4], RoadClass::Street, Some(10.0));
        b.add_edge(ids[4], ids[3], RoadClass::Street, Some(10.0));
        b.add_edge(ids[2], ids[3], RoadClass::Street, Some(10.0));
        let g = b.build();
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        // Largest is the 3-cycle.
        let mask = largest_scc_mask(&g);
        assert_eq!(mask, vec![true, true, true, false, false]);
    }

    #[test]
    fn empty_graph() {
        let g = RoadGraphBuilder::new().build();
        let (comp, count) = strongly_connected_components(&g);
        assert!(comp.is_empty());
        assert_eq!(count, 0);
        assert!(largest_scc_mask(&g).is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node path; recursion would blow the stack, iteration must not.
        let mut b = RoadGraphBuilder::new();
        let n = 100_000;
        let mut prev = b.add_node(GeoPoint::new(40.0, -74.0));
        for i in 1..n {
            let cur = b.add_node(GeoPoint::new(40.0 + 1e-6 * i as f64, -74.0));
            b.add_edge(prev, cur, RoadClass::Street, Some(1.0));
            prev = cur;
        }
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, n);
    }
}
