//! GeoJSON export of networks and routes.
//!
//! Not used by the algorithms — provided so that a deployment (or a
//! curious reader) can drop a generated city, a ride's route, or a set
//! of landmarks onto any GeoJSON viewer and *see* what the system is
//! doing. Output follows RFC 7946 (`[lon, lat]` coordinate order).

use std::fmt::Write as _;

use xar_geo::GeoPoint;

use crate::graph::{RoadClass, RoadGraph};
use crate::route::Route;

fn class_name(c: RoadClass) -> &'static str {
    match c {
        RoadClass::Highway => "highway",
        RoadClass::Avenue => "avenue",
        RoadClass::Street => "street",
        RoadClass::Lane => "lane",
    }
}

fn write_coord(out: &mut String, p: &GeoPoint) {
    // Six decimals ≈ 0.1 m — plenty for 100 m grids, keeps files small.
    let _ = write!(out, "[{:.6},{:.6}]", p.lon, p.lat);
}

/// Render the whole road network as a `FeatureCollection` of
/// `LineString` features (one per directed edge) with `class` and
/// `len_m` properties.
pub fn graph_to_geojson(graph: &RoadGraph) -> String {
    let mut out = String::with_capacity(graph.edge_count() * 96);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    let mut first = true;
    for e in graph.edges() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[");
        write_coord(&mut out, &graph.point(e.from));
        out.push(',');
        write_coord(&mut out, &graph.point(e.to));
        let _ = write!(
            out,
            "]}},\"properties\":{{\"class\":\"{}\",\"len_m\":{:.1}}}}}",
            class_name(e.class),
            e.len_m
        );
    }
    out.push_str("]}");
    out
}

/// Render a route as a single `LineString` feature with distance and
/// duration properties.
pub fn route_to_geojson(graph: &RoadGraph, route: &Route) -> String {
    let mut out = String::with_capacity(route.len() * 24 + 128);
    out.push_str("{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[");
    for (i, &n) in route.nodes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_coord(&mut out, &graph.point(n));
    }
    let _ = write!(
        out,
        "]}},\"properties\":{{\"dist_m\":{:.1},\"duration_s\":{:.1}}}}}",
        route.dist_m(),
        route.duration_s()
    );
    out
}

/// Render labelled points (landmarks, stops, pick-ups …) as a
/// `FeatureCollection` of `Point` features. Labels are written as a
/// JSON string property and must not contain `"` or `\` (they come
/// from this codebase, not from users); offending characters are
/// replaced with `_` defensively.
pub fn points_to_geojson<'a, I>(points: I) -> String
where
    I: IntoIterator<Item = (GeoPoint, &'a str)>,
{
    let mut out = String::from("{\"type\":\"FeatureCollection\",\"features\":[");
    let mut first = true;
    for (p, label) in points {
        if !first {
            out.push(',');
        }
        first = false;
        let safe: String =
            label.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect();
        out.push_str("{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\",\"coordinates\":");
        write_coord(&mut out, &p);
        let _ = write!(out, "}},\"properties\":{{\"label\":\"{safe}\"}}}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::CityConfig;
    use crate::shortest_path::ShortestPaths;
    use crate::NodeId;

    /// Minimal structural JSON check: balanced braces/brackets and no
    /// trailing commas before closers.
    fn assert_structurally_valid(s: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut prev = ' ';
        let mut in_str = false;
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' => depth_obj += 1,
                    '}' => {
                        assert_ne!(prev, ',', "trailing comma before }}");
                        depth_obj -= 1;
                    }
                    '[' => depth_arr += 1,
                    ']' => {
                        assert_ne!(prev, ',', "trailing comma before ]");
                        depth_arr -= 1;
                    }
                    _ => {}
                }
                assert!(depth_obj >= 0 && depth_arr >= 0, "closer before opener");
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn graph_export_is_valid_and_complete() {
        let g = CityConfig::manhattan(5, 5, 1).generate();
        let js = graph_to_geojson(&g);
        assert_structurally_valid(&js);
        assert_eq!(js.matches("\"LineString\"").count(), g.edge_count());
        assert!(js.contains("\"class\":\"avenue\"") || js.contains("\"class\":\"street\""));
    }

    #[test]
    fn route_export_covers_all_waypoints() {
        let g = CityConfig::test_city(5).generate();
        let sp = ShortestPaths::driving(&g);
        let n = g.node_count() as u32;
        let route =
            Route::from_path_result(&g, &sp.path(NodeId(0), NodeId(n - 1)).unwrap()).unwrap();
        let js = route_to_geojson(&g, &route);
        assert_structurally_valid(&js);
        // One coordinate pair per way-point.
        assert_eq!(js.matches("],[").count() + 1, route.len());
        assert!(js.contains("\"dist_m\""));
    }

    #[test]
    fn points_export_escapes_labels() {
        let p = GeoPoint::new(40.7, -74.0);
        let js = points_to_geojson([(p, "a\"b\\c")]);
        assert_structurally_valid(&js);
        assert!(js.contains("a_b_c"));
    }

    #[test]
    fn empty_points_export() {
        let js = points_to_geojson(std::iter::empty::<(GeoPoint, &str)>());
        assert_structurally_valid(&js);
        assert!(js.contains("\"features\":[]"));
    }
}
