//! Shortest-path engines over the road graph.
//!
//! XAR deliberately performs **no** shortest-path computation during
//! ride search (§VII); shortest paths are needed only (a) at
//! pre-processing time to build the discretization and the
//! inter-landmark distance tables, (b) when a ride offer is created, and
//! (c) when a booking is confirmed (at most 4 computations, §VIII.B).
//! The T-Share baseline, by contrast, calls these engines on its search
//! path — which is exactly the contrast the paper's Figure 4 measures.
//!
//! Three traversal directions are supported:
//!
//! * [`Direction::Forward`] — driving, respecting one-way streets;
//! * [`Direction::Reverse`] — driving *towards* a target (used for
//!   "distance of a grid *from* a landmark" style queries);
//! * [`Direction::Undirected`] — walking, which ignores one-way
//!   restrictions. This is why "the two \[driving and walking
//!   distances\] can sometimes be very different, especially in regions
//!   with narrow streets, or one-way etc." (§IV).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Edge, NodeId, RoadGraph};

/// Cached handles into the process-wide metric registry
/// ([`xar_obs::global`]): one latency histogram per traversal entry
/// point. `ShortestPaths` is a short-lived borrowed view constructed
/// ad hoc all over the workspace, so there is no natural owner to hang
/// a registry off — the global registry is the right home, and the
/// `OnceLock` caching keeps the per-call cost to an `Arc` clone.
mod sp_metrics {
    use std::sync::{Arc, OnceLock};
    use xar_obs::Histogram;

    macro_rules! cached {
        ($fn_name:ident, $metric:literal) => {
            pub(super) fn $fn_name() -> Arc<Histogram> {
                static H: OnceLock<Arc<Histogram>> = OnceLock::new();
                Arc::clone(H.get_or_init(|| xar_obs::global().histogram($metric)))
            }
        };
    }

    cached!(path_ns, "roadnet.sp_path_ns");
    cached!(astar_ns, "roadnet.sp_astar_ns");
    cached!(bounded_ns, "roadnet.sp_bounded_ns");
    cached!(targets_ns, "roadnet.sp_targets_ns");
    cached!(one_to_all_ns, "roadnet.sp_one_to_all_ns");
}

/// Pedestrian speed used to convert walking distances to times: 1.4 m/s
/// (~5 km/h).
pub const WALK_SPEED_MPS: f64 = 1.4;

/// Which quantity edge traversal accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMetric {
    /// Metres along the road.
    Distance,
    /// Seconds at free-flow speed.
    Time,
}

/// Which adjacency a traversal follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges tail → head (driving away from the source).
    Forward,
    /// Follow edges head → tail (driving towards the source).
    Reverse,
    /// Follow edges both ways (walking).
    Undirected,
}

/// A resolved shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Total length in metres.
    pub dist_m: f64,
    /// Total free-flow driving time in seconds.
    pub time_s: f64,
}

/// Min-heap entry ordered by `cost` (then node id, for determinism).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    cost: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A shortest-path engine bound to a graph, a cost metric, and a
/// traversal direction.
#[derive(Debug, Clone, Copy)]
pub struct ShortestPaths<'g> {
    graph: &'g RoadGraph,
    metric: CostMetric,
    direction: Direction,
}

impl<'g> ShortestPaths<'g> {
    /// Create an engine.
    pub fn new(graph: &'g RoadGraph, metric: CostMetric, direction: Direction) -> Self {
        Self { graph, metric, direction }
    }

    /// Convenience: driving distance engine (forward, metres).
    pub fn driving(graph: &'g RoadGraph) -> Self {
        Self::new(graph, CostMetric::Distance, Direction::Forward)
    }

    /// Convenience: driving time engine (forward, seconds).
    pub fn driving_time(graph: &'g RoadGraph) -> Self {
        Self::new(graph, CostMetric::Time, Direction::Forward)
    }

    /// Convenience: walking distance engine (undirected, metres).
    pub fn walking(graph: &'g RoadGraph) -> Self {
        Self::new(graph, CostMetric::Distance, Direction::Undirected)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g RoadGraph {
        self.graph
    }

    #[inline]
    fn edge_cost(&self, e: &Edge) -> f64 {
        match self.metric {
            CostMetric::Distance => e.len_m,
            CostMetric::Time => e.travel_time_s(),
        }
    }

    /// Expand `node`, calling `visit(neighbor, edge_cost)` for each
    /// neighbour under the configured direction.
    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut visit: impl FnMut(NodeId, f64)) {
        match self.direction {
            Direction::Forward => {
                for e in self.graph.out_edges(node) {
                    visit(e.to, self.edge_cost(e));
                }
            }
            Direction::Reverse => {
                for e in self.graph.in_edges(node) {
                    visit(e.from, self.edge_cost(e));
                }
            }
            Direction::Undirected => {
                for e in self.graph.out_edges(node) {
                    visit(e.to, self.edge_cost(e));
                }
                for e in self.graph.in_edges(node) {
                    visit(e.from, self.edge_cost(e));
                }
            }
        }
    }

    /// Dijkstra from `src` to `dst` with early termination; `None` if
    /// unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<PathResult> {
        let _span = xar_obs::SpanTimer::new(sp_metrics::path_ns());
        let n = self.graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: src.0 });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if node == dst.0 {
                return Some(self.reconstruct(src, dst, &prev));
            }
            if cost > dist[node as usize] {
                continue;
            }
            self.for_each_neighbor(NodeId(node), |next, w| {
                let nd = cost + w;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    prev[next.index()] = node;
                    heap.push(HeapEntry { cost: nd, node: next.0 });
                }
            });
        }
        None
    }

    /// A* from `src` to `dst` using the great-circle lower bound as the
    /// heuristic (admissible for both metrics: road length ≥ crow-flies
    /// distance, travel time ≥ crow-flies distance / fastest speed).
    pub fn astar(&self, src: NodeId, dst: NodeId) -> Option<PathResult> {
        let _span = xar_obs::SpanTimer::new(sp_metrics::astar_ns());
        let n = self.graph.node_count();
        let goal = self.graph.point(dst);
        // Fastest speed in the network bounds the time heuristic.
        let speed_bound = crate::graph::RoadClass::Highway.speed_mps();
        let h = |node: NodeId| -> f64 {
            let d = self.graph.point(node).haversine_m(&goal);
            match self.metric {
                CostMetric::Distance => d,
                CostMetric::Time => d / speed_bound,
            }
        };
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: h(src), node: src.0 });
        while let Some(HeapEntry { cost: f, node }) = heap.pop() {
            if node == dst.0 {
                return Some(self.reconstruct(src, dst, &prev));
            }
            let g_node = dist[node as usize];
            if f > g_node + h(NodeId(node)) + 1e-9 {
                continue; // stale entry
            }
            self.for_each_neighbor(NodeId(node), |next, w| {
                let nd = g_node + w;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    prev[next.index()] = node;
                    heap.push(HeapEntry { cost: nd + h(next), node: next.0 });
                }
            });
        }
        None
    }

    /// Cost (in the configured metric) from `src` to `dst`; `None` if
    /// unreachable.
    pub fn cost(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.path(src, dst).map(|p| match self.metric {
            CostMetric::Distance => p.dist_m,
            CostMetric::Time => p.time_s,
        })
    }

    /// All nodes within `max_cost` of `src`, as `(node, cost)` pairs in
    /// non-decreasing cost order. The source itself is included with
    /// cost 0.
    pub fn bounded_from(&self, src: NodeId, max_cost: f64) -> Vec<(NodeId, f64)> {
        let _span = xar_obs::SpanTimer::new(sp_metrics::bounded_ns());
        let n = self.graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        let mut out = Vec::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: src.0 });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node as usize] {
                continue;
            }
            out.push((NodeId(node), cost));
            self.for_each_neighbor(NodeId(node), |next, w| {
                let nd = cost + w;
                if nd <= max_cost && nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    heap.push(HeapEntry { cost: nd, node: next.0 });
                }
            });
        }
        out
    }

    /// Costs from `src` to each of `targets`, stopping as soon as every
    /// target is settled or `max_cost` is exceeded. Unreachable (or
    /// beyond-bound) targets yield `None`.
    pub fn to_targets(
        &self,
        src: NodeId,
        targets: &[NodeId],
        max_cost: f64,
    ) -> Vec<Option<f64>> {
        let _span = xar_obs::SpanTimer::new(sp_metrics::targets_ns());
        let n = self.graph.node_count();
        let mut want = vec![false; n];
        let mut remaining = 0usize;
        for t in targets {
            if !want[t.index()] {
                want[t.index()] = true;
                remaining += 1;
            }
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: src.0 });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node as usize] {
                continue;
            }
            if want[node as usize] {
                want[node as usize] = false;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            self.for_each_neighbor(NodeId(node), |next, w| {
                let nd = cost + w;
                if nd <= max_cost && nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    heap.push(HeapEntry { cost: nd, node: next.0 });
                }
            });
        }
        targets
            .iter()
            .map(|t| {
                let d = dist[t.index()];
                (d <= max_cost).then_some(d)
            })
            .collect()
    }

    /// Full single-source Dijkstra: cost to every node (`INFINITY` when
    /// unreachable).
    pub fn one_to_all(&self, src: NodeId) -> Vec<f64> {
        let _span = xar_obs::SpanTimer::new(sp_metrics::one_to_all_ns());
        let n = self.graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: src.0 });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node as usize] {
                continue;
            }
            self.for_each_neighbor(NodeId(node), |next, w| {
                let nd = cost + w;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    heap.push(HeapEntry { cost: nd, node: next.0 });
                }
            });
        }
        dist
    }

    /// Rebuild the node path from the predecessor array, accumulating
    /// both distance and time.
    fn reconstruct(&self, src: NodeId, dst: NodeId, prev: &[u32]) -> PathResult {
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != src {
            let p = NodeId(prev[cur.index()]);
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        let (mut dist_m, mut time_s) = (0.0, 0.0);
        for w in nodes.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Find the cheapest connecting edge under the traversal
            // direction (paths from Undirected traversal may use an edge
            // in either orientation).
            let mut best: Option<&Edge> = None;
            let mut consider = |e: &'g Edge| {
                if best.is_none_or(|b| self.edge_cost(e) < self.edge_cost(b)) {
                    best = Some(e);
                }
            };
            match self.direction {
                Direction::Forward => {
                    for e in self.graph.out_edges(a) {
                        if e.to == b {
                            consider(e);
                        }
                    }
                }
                Direction::Reverse => {
                    for e in self.graph.in_edges(a) {
                        if e.from == b {
                            consider(e);
                        }
                    }
                }
                Direction::Undirected => {
                    for e in self.graph.out_edges(a) {
                        if e.to == b {
                            consider(e);
                        }
                    }
                    for e in self.graph.in_edges(a) {
                        if e.from == b {
                            consider(e);
                        }
                    }
                }
            }
            let e = best.expect("reconstructed path uses a real edge");
            dist_m += e.len_m;
            time_s += e.travel_time_s();
        }
        PathResult { nodes, dist_m, time_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadClass, RoadGraphBuilder};
    use xar_geo::GeoPoint;

    /// A 1 km-spaced 4x4 lattice, all two-way streets, except one
    /// one-way "avenue" shortcut.
    fn lattice() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let mut ids = vec![];
        for r in 0..4 {
            for c in 0..4 {
                ids.push(b.add_node(GeoPoint::new(40.70 + 0.009 * r as f64, -74.00 + 0.012 * c as f64)));
            }
        }
        let at = |r: usize, c: usize| ids[r * 4 + c];
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    b.add_two_way(at(r, c), at(r, c + 1), RoadClass::Street, Some(1000.0));
                }
                if r + 1 < 4 {
                    b.add_two_way(at(r, c), at(r + 1, c), RoadClass::Street, Some(1000.0));
                }
            }
        }
        // One-way diagonal-ish shortcut 0 -> 5 (shorter than the 2km grid path).
        b.add_edge(at(0, 0), at(1, 1), RoadClass::Avenue, Some(1400.0));
        b.build()
    }

    #[test]
    fn straight_line_path() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let p = sp.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.dist_m, 3000.0);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn one_way_shortcut_used_forward_only() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        // 0 -> 5: shortcut 1400 beats grid 2000.
        assert_eq!(sp.cost(NodeId(0), NodeId(5)).unwrap(), 1400.0);
        // 5 -> 0: shortcut unusable, grid path 2000.
        assert_eq!(sp.cost(NodeId(5), NodeId(0)).unwrap(), 2000.0);
    }

    #[test]
    fn walking_ignores_one_way() {
        let g = lattice();
        let sp = ShortestPaths::walking(&g);
        assert_eq!(sp.cost(NodeId(5), NodeId(0)).unwrap(), 1400.0);
    }

    #[test]
    fn reverse_direction_swaps_endpoints() {
        let g = lattice();
        let fwd = ShortestPaths::driving(&g);
        let rev = ShortestPaths::new(&g, CostMetric::Distance, Direction::Reverse);
        assert_eq!(rev.cost(NodeId(5), NodeId(0)), fwd.cost(NodeId(0), NodeId(5)));
    }

    #[test]
    fn time_metric_prefers_fast_roads() {
        let g = lattice();
        let sp = ShortestPaths::driving_time(&g);
        let p = sp.path(NodeId(0), NodeId(5)).unwrap();
        // Avenue shortcut: 1400m at 11 m/s ≈ 127 s; grid: 2000m at 8 m/s = 250 s.
        assert!((p.time_s - 1400.0 / 11.0).abs() < 1e-9);
        assert_eq!(p.dist_m, 1400.0);
    }

    #[test]
    fn astar_agrees_with_dijkstra() {
        let g = lattice();
        for metric in [CostMetric::Distance, CostMetric::Time] {
            let sp = ShortestPaths::new(&g, metric, Direction::Forward);
            for src in 0..16u32 {
                for dst in 0..16u32 {
                    let d = sp.path(NodeId(src), NodeId(dst)).map(|p| p.dist_m);
                    let a = sp.astar(NodeId(src), NodeId(dst)).map(|p| p.dist_m);
                    match (d, a) {
                        (Some(d), Some(a)) => assert!((d - a).abs() < 1e-6, "{src}->{dst}: {d} vs {a}"),
                        (None, None) => {}
                        other => panic!("{src}->{dst}: disagreement {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(GeoPoint::new(40.70, -74.00));
        let c = b.add_node(GeoPoint::new(40.71, -74.00));
        b.add_edge(a, c, RoadClass::Street, Some(10.0));
        let g = b.build();
        let sp = ShortestPaths::driving(&g);
        assert!(sp.path(c, a).is_none());
        assert!(sp.cost(c, a).is_none());
    }

    #[test]
    fn trivial_path_to_self() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let p = sp.path(NodeId(7), NodeId(7)).unwrap();
        assert_eq!(p.dist_m, 0.0);
        assert_eq!(p.nodes, vec![NodeId(7)]);
    }

    #[test]
    fn bounded_from_respects_radius_and_order() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let within = sp.bounded_from(NodeId(0), 2000.0);
        // Costs must be sorted non-decreasing and within bound.
        for w in within.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(within.iter().all(|&(_, c)| c <= 2000.0));
        assert!(within.iter().any(|&(n, _)| n == NodeId(0)));
        // Node 3 is 3000m away: excluded.
        assert!(!within.iter().any(|&(n, _)| n == NodeId(3)));
        // Node 5 via shortcut at 1400: included.
        assert!(within.iter().any(|&(n, c)| n == NodeId(5) && c == 1400.0));
    }

    #[test]
    fn to_targets_matches_individual_paths() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let targets = [NodeId(3), NodeId(15), NodeId(5)];
        let got = sp.to_targets(NodeId(0), &targets, f64::INFINITY);
        for (t, g2) in targets.iter().zip(&got) {
            assert_eq!(*g2, sp.cost(NodeId(0), *t));
        }
    }

    #[test]
    fn to_targets_bound_excludes_far_nodes() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let got = sp.to_targets(NodeId(0), &[NodeId(15)], 1000.0);
        assert_eq!(got, vec![None]);
    }

    #[test]
    fn to_targets_handles_duplicates() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let got = sp.to_targets(NodeId(0), &[NodeId(1), NodeId(1)], f64::INFINITY);
        assert_eq!(got, vec![Some(1000.0), Some(1000.0)]);
    }

    #[test]
    fn one_to_all_agrees_with_path() {
        let g = lattice();
        let sp = ShortestPaths::driving(&g);
        let all = sp.one_to_all(NodeId(0));
        for dst in 0..16u32 {
            assert_eq!(Some(all[dst as usize]), sp.cost(NodeId(0), NodeId(dst)));
        }
    }
}
