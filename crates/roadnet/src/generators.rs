//! Synthetic city generators.
//!
//! The paper evaluates on the New York City OSM extract. These
//! generators produce road networks with the structural properties XAR's
//! data structures are sensitive to:
//!
//! * a **Manhattan lattice** with fast avenues, slower cross streets,
//!   alternating one-way directions (as in the real Manhattan), random
//!   missing links, and coordinate jitter — driving distance and walking
//!   distance genuinely diverge, detours are realistic;
//! * a **radial** city (ring roads + spokes) for topology-sensitivity
//!   tests;
//! * a **random geometric** network (k-nearest-neighbour connections)
//!   as an adversarial irregular topology.
//!
//! Every generator is fully deterministic in its seed, and restricts the
//! result to its largest strongly connected component so that all
//! pairwise driving routes exist.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xar_geo::GeoPoint;

use crate::graph::{NodeId, RoadClass, RoadGraph, RoadGraphBuilder};
use crate::scc::largest_scc_mask;

/// Which synthetic topology to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityKind {
    /// Rectangular lattice with avenues/streets and one-ways (NYC-like).
    Manhattan,
    /// Concentric rings connected by radial spokes.
    Radial,
    /// Uniform random points connected to their k nearest neighbours.
    RandomGeometric,
}

/// Configuration of a synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Topology family.
    pub kind: CityKind,
    /// Grid rows (Manhattan), rings (Radial), or `rows * cols` node
    /// budget (RandomGeometric).
    pub rows: usize,
    /// Grid columns (Manhattan), spokes (Radial).
    pub cols: usize,
    /// Base block edge length in metres.
    pub block_m: f64,
    /// Every `avenue_every`-th column is a fast two-way avenue
    /// (Manhattan only; 0 disables avenues).
    pub avenue_every: usize,
    /// Fraction of street edges removed at random (roadworks, gaps).
    pub missing_edge_fraction: f64,
    /// Standard deviation of node coordinate jitter, metres.
    pub jitter_m: f64,
    /// Fraction of streets that are one-way (alternating direction).
    /// Avenues are always present in both directions every
    /// `avenue_every` columns but individually one-way in between.
    pub one_way_fraction: f64,
    /// South-west anchor of the city.
    pub origin: GeoPoint,
    /// RNG seed; equal seeds give identical cities.
    pub seed: u64,
}

impl CityConfig {
    /// A Manhattan-style city of `rows x cols` intersections with 100 m
    /// blocks.
    pub fn manhattan(rows: usize, cols: usize, seed: u64) -> Self {
        Self {
            kind: CityKind::Manhattan,
            rows,
            cols,
            block_m: 100.0,
            avenue_every: 5,
            missing_edge_fraction: 0.03,
            jitter_m: 8.0,
            one_way_fraction: 0.5,
            origin: GeoPoint::new(40.70, -74.02),
            seed,
        }
    }

    /// A small, fast-to-build city for unit tests (≈ 400 intersections,
    /// ~2 km on a side).
    pub fn test_city(seed: u64) -> Self {
        Self::manhattan(20, 20, seed)
    }

    /// A medium benchmark city (≈ 10k intersections, ~10 km x 10 km —
    /// the XAR data structures see Manhattan-scale geometry).
    pub fn bench_city(seed: u64) -> Self {
        Self::manhattan(100, 100, seed)
    }

    /// Radial city with `rings` rings and `spokes` spokes.
    pub fn radial(rings: usize, spokes: usize, seed: u64) -> Self {
        Self {
            kind: CityKind::Radial,
            rows: rings,
            cols: spokes,
            block_m: 300.0,
            avenue_every: 0,
            missing_edge_fraction: 0.0,
            jitter_m: 5.0,
            one_way_fraction: 0.0,
            origin: GeoPoint::new(40.75, -73.98),
            seed,
        }
    }

    /// Random geometric city with `n` nodes over a ~6 km square.
    pub fn random_geometric(n: usize, seed: u64) -> Self {
        Self {
            kind: CityKind::RandomGeometric,
            rows: n,
            cols: 1,
            block_m: 6000.0, // interpreted as the square side
            avenue_every: 0,
            missing_edge_fraction: 0.0,
            jitter_m: 0.0,
            one_way_fraction: 0.2,
            origin: GeoPoint::new(40.72, -74.00),
            seed,
        }
    }

    /// Generate the road network.
    pub fn generate(&self) -> RoadGraph {
        let raw = match self.kind {
            CityKind::Manhattan => generate_manhattan(self),
            CityKind::Radial => generate_radial(self),
            CityKind::RandomGeometric => generate_random_geometric(self),
        };
        // Restrict to the largest SCC so every driving route exists.
        let mask = largest_scc_mask(&raw);
        let (g, _) = raw.subgraph(&mask);
        g
    }
}

/// Gaussian-ish jitter from two uniforms (Irwin–Hall with n=2, scaled);
/// avoids pulling in a normal-distribution dependency.
fn jitter(rng: &mut StdRng, sigma_m: f64) -> f64 {
    if sigma_m <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.random::<f64>() + rng.random::<f64>() - 1.0; // mean 0, in [-1,1]
    u * sigma_m * 1.7 // roughly unit variance before scaling
}

fn generate_manhattan(cfg: &CityConfig) -> RoadGraph {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "need at least a 2x2 lattice");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let proj = xar_geo::LocalProjection::new(cfg.origin);
    let mut b = RoadGraphBuilder::with_capacity(cfg.rows * cfg.cols, 4 * cfg.rows * cfg.cols);
    let mut ids = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let x = c as f64 * cfg.block_m + jitter(&mut rng, cfg.jitter_m);
            let y = r as f64 * cfg.block_m + jitter(&mut rng, cfg.jitter_m);
            ids.push(b.add_node(proj.from_xy(x, y)));
        }
    }
    let at = |r: usize, c: usize| ids[r * cfg.cols + c];
    let is_avenue = |c: usize| cfg.avenue_every > 0 && c.is_multiple_of(cfg.avenue_every);

    // North-south links (along columns).
    for c in 0..cfg.cols {
        let class = if is_avenue(c) { RoadClass::Avenue } else { RoadClass::Street };
        for r in 0..cfg.rows - 1 {
            if rng.random::<f64>() < cfg.missing_edge_fraction {
                continue;
            }
            let (lo, hi) = (at(r, c), at(r + 1, c));
            let one_way = rng.random::<f64>() < cfg.one_way_fraction;
            if one_way {
                // Alternate direction by column (like real avenues).
                if c % 2 == 0 {
                    b.add_edge(lo, hi, class, None);
                } else {
                    b.add_edge(hi, lo, class, None);
                }
            } else {
                b.add_two_way(lo, hi, class, None);
            }
        }
    }
    // East-west links (along rows) — always streets.
    for r in 0..cfg.rows {
        for c in 0..cfg.cols - 1 {
            if rng.random::<f64>() < cfg.missing_edge_fraction {
                continue;
            }
            let (lo, hi) = (at(r, c), at(r, c + 1));
            let one_way = rng.random::<f64>() < cfg.one_way_fraction;
            if one_way {
                if r % 2 == 0 {
                    b.add_edge(lo, hi, RoadClass::Street, None);
                } else {
                    b.add_edge(hi, lo, RoadClass::Street, None);
                }
            } else {
                b.add_two_way(lo, hi, RoadClass::Street, None);
            }
        }
    }
    b.build()
}

fn generate_radial(cfg: &CityConfig) -> RoadGraph {
    assert!(cfg.rows >= 1 && cfg.cols >= 3, "need >= 1 ring and >= 3 spokes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let proj = xar_geo::LocalProjection::new(cfg.origin);
    let mut b = RoadGraphBuilder::new();
    let center = b.add_node(cfg.origin);
    let mut rings: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.rows);
    for ring in 1..=cfg.rows {
        let radius = ring as f64 * cfg.block_m;
        let mut nodes = Vec::with_capacity(cfg.cols);
        for s in 0..cfg.cols {
            let theta = 2.0 * std::f64::consts::PI * s as f64 / cfg.cols as f64;
            let x = radius * theta.cos() + jitter(&mut rng, cfg.jitter_m);
            let y = radius * theta.sin() + jitter(&mut rng, cfg.jitter_m);
            nodes.push(b.add_node(proj.from_xy(x, y)));
        }
        // Ring road (two-way street).
        for s in 0..cfg.cols {
            b.add_two_way(nodes[s], nodes[(s + 1) % cfg.cols], RoadClass::Street, None);
        }
        rings.push(nodes);
    }
    // Spokes (two-way avenues).
    #[allow(clippy::needless_range_loop)] // rings indexed by the same spoke id
    for s in 0..cfg.cols {
        b.add_two_way(center, rings[0][s], RoadClass::Avenue, None);
        for ring in 1..cfg.rows {
            b.add_two_way(rings[ring - 1][s], rings[ring][s], RoadClass::Avenue, None);
        }
    }
    b.build()
}

fn generate_random_geometric(cfg: &CityConfig) -> RoadGraph {
    let n = cfg.rows.max(4);
    let side = cfg.block_m;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let proj = xar_geo::LocalProjection::new(cfg.origin);
    let mut b = RoadGraphBuilder::new();
    let mut xy = Vec::with_capacity(n);
    for _ in 0..n {
        let x = rng.random::<f64>() * side;
        let y = rng.random::<f64>() * side;
        xy.push((x, y));
        b.add_node(proj.from_xy(x, y));
    }
    // Connect each node to its k = 4 nearest neighbours.
    let k = 4.min(n - 1);
    for i in 0..n {
        let mut near: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = xy[i].0 - xy[j].0;
                let dy = xy[i].1 - xy[j].1;
                (j, (dx * dx + dy * dy).sqrt())
            })
            .collect();
        near.sort_by(|a, b| a.1.total_cmp(&b.1));
        // Only the lower id materializes a pair, so k-NN asymmetry does
        // not create duplicate parallel roads; stranded nodes are
        // handled by the SCC-restriction pass in `generate`.
        for &(j, _) in near.iter().take(k) {
            if i < j {
                if rng.random::<f64>() < cfg.one_way_fraction {
                    b.add_edge(NodeId(i as u32), NodeId(j as u32), RoadClass::Street, None);
                } else {
                    b.add_two_way(NodeId(i as u32), NodeId(j as u32), RoadClass::Street, None);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::ShortestPaths;

    #[test]
    fn manhattan_is_deterministic() {
        let a = CityConfig::test_city(7).generate();
        let b = CityConfig::test_city(7).generate();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (n1, n2) in a.node_ids().zip(b.node_ids()) {
            assert_eq!(a.point(n1).lat, b.point(n2).lat);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityConfig::test_city(1).generate();
        let b = CityConfig::test_city(2).generate();
        // Jitter means coordinates differ even if counts coincide.
        let pa = a.point(NodeId(0));
        let pb = b.point(NodeId(0));
        assert!(pa.lat != pb.lat || pa.lon != pb.lon);
    }

    #[test]
    fn manhattan_is_strongly_connected() {
        let g = CityConfig::test_city(42).generate();
        assert!(g.node_count() > 300, "SCC restriction dropped too much: {}", g.node_count());
        let (_, count) = crate::scc::strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn manhattan_all_pairs_sample_reachable() {
        let g = CityConfig::test_city(3).generate();
        let sp = ShortestPaths::driving(&g);
        let n = g.node_count() as u32;
        for i in 0..5 {
            let src = NodeId((i * 37) % n);
            let dst = NodeId((i * 91 + 13) % n);
            assert!(sp.cost(src, dst).is_some(), "{src:?} -> {dst:?} unreachable");
        }
    }

    #[test]
    fn manhattan_has_one_ways() {
        let g = CityConfig::test_city(5).generate();
        let mut one_way = 0;
        let mut checked = 0;
        for e in g.edges().take(500) {
            checked += 1;
            if g.find_edge(e.to, e.from).is_none() {
                one_way += 1;
            }
        }
        assert!(one_way > checked / 10, "expected a sizeable one-way fraction, got {one_way}/{checked}");
    }

    #[test]
    fn manhattan_has_avenues_and_streets() {
        let g = CityConfig::test_city(5).generate();
        let has_avenue = g.edges().any(|e| e.class == RoadClass::Avenue);
        let has_street = g.edges().any(|e| e.class == RoadClass::Street);
        assert!(has_avenue && has_street);
    }

    #[test]
    fn radial_is_strongly_connected() {
        let g = CityConfig::radial(5, 8, 11).generate();
        assert_eq!(g.node_count(), 1 + 5 * 8);
        let (_, count) = crate::scc::strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn random_geometric_scc_restricted() {
        let g = CityConfig::random_geometric(300, 9).generate();
        assert!(g.node_count() >= 150, "kept {}", g.node_count());
        let (_, count) = crate::scc::strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn walking_vs_driving_distances_diverge_somewhere() {
        // The one-way structure must make driving distance exceed
        // walking distance for some pair — the property the paper's
        // walkable-cluster machinery exists for.
        let g = CityConfig::test_city(13).generate();
        let drive = ShortestPaths::driving(&g);
        let walk = ShortestPaths::walking(&g);
        let n = g.node_count() as u32;
        let mut diverged = false;
        for i in 0..40 {
            let src = NodeId((i * 53) % n);
            let dst = NodeId((i * 101 + 7) % n);
            if let (Some(d), Some(w)) = (drive.cost(src, dst), walk.cost(src, dst)) {
                if d > w + 50.0 {
                    diverged = true;
                    break;
                }
            }
        }
        assert!(diverged, "driving never exceeded walking distance");
    }

    #[test]
    fn block_length_is_respected() {
        let g = CityConfig::manhattan(5, 5, 1).generate();
        // Average edge length should be near the 100 m block size
        // (jitter adds a little).
        let avg = g.total_edge_length_m() / g.edge_count() as f64;
        assert!((80.0..140.0).contains(&avg), "avg edge {avg}");
    }
}
