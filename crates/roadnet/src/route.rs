//! Concrete routes over the road graph.
//!
//! A [`Route`] is "the shortest route between the source and the
//! destination unless the user has explicitly specified an alternate
//! route" (§VI, ride entity 5): a way-point sequence with cumulative
//! distance and free-flow travel time, supporting the position-at-time
//! queries used by ride tracking and the splicing used by booking (new
//! via-points replace a segment of the old route with freshly computed
//! shortest paths, §VIII.B).

use xar_geo::GeoPoint;

use crate::graph::{NodeId, RoadGraph};
use crate::shortest_path::PathResult;

/// A route: a node path annotated with cumulative distance and time.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    nodes: Vec<NodeId>,
    /// `cum_dist_m[i]` = metres from the start to `nodes[i]`.
    cum_dist_m: Vec<f64>,
    /// `cum_time_s[i]` = free-flow seconds from the start to `nodes[i]`.
    cum_time_s: Vec<f64>,
}

impl Route {
    /// Build a route from a node path, looking up each consecutive edge
    /// in `graph` (choosing the shortest parallel edge when several
    /// exist). Returns `None` if some consecutive pair is not connected
    /// by a forward edge, or the path is empty.
    pub fn from_path(graph: &RoadGraph, nodes: Vec<NodeId>) -> Option<Route> {
        if nodes.is_empty() {
            return None;
        }
        let mut cum_dist_m = Vec::with_capacity(nodes.len());
        let mut cum_time_s = Vec::with_capacity(nodes.len());
        cum_dist_m.push(0.0);
        cum_time_s.push(0.0);
        for w in nodes.windows(2) {
            let mut best: Option<(f64, f64)> = None;
            for e in graph.out_edges(w[0]) {
                if e.to == w[1] && best.is_none_or(|(d, _)| e.len_m < d) {
                    best = Some((e.len_m, e.travel_time_s()));
                }
            }
            let (d, t) = best?;
            cum_dist_m.push(cum_dist_m.last().unwrap() + d);
            cum_time_s.push(cum_time_s.last().unwrap() + t);
        }
        Some(Route { nodes, cum_dist_m, cum_time_s })
    }

    /// Build a route from a [`PathResult`] produced by a forward
    /// shortest-path query.
    pub fn from_path_result(graph: &RoadGraph, p: &PathResult) -> Option<Route> {
        Self::from_path(graph, p.nodes.clone())
    }

    /// The way-point sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of way-points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the route has no way-points (never true for a
    /// successfully constructed route).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total length in metres.
    #[inline]
    pub fn dist_m(&self) -> f64 {
        *self.cum_dist_m.last().expect("route is non-empty")
    }

    /// Total free-flow duration in seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        *self.cum_time_s.last().expect("route is non-empty")
    }

    /// Metres from the start to way-point `i`.
    #[inline]
    pub fn dist_at(&self, i: usize) -> f64 {
        self.cum_dist_m[i]
    }

    /// Seconds from the start to way-point `i`.
    #[inline]
    pub fn time_at(&self, i: usize) -> f64 {
        self.cum_time_s[i]
    }

    /// Distance in metres between way-points `i <= j`.
    pub fn dist_between(&self, i: usize, j: usize) -> f64 {
        assert!(i <= j, "dist_between requires i <= j, got {i} > {j}");
        self.cum_dist_m[j] - self.cum_dist_m[i]
    }

    /// Index of the last way-point reached at `elapsed_s` seconds after
    /// departure (clamped to the final way-point).
    pub fn index_at_time(&self, elapsed_s: f64) -> usize {
        if elapsed_s <= 0.0 {
            return 0;
        }
        // partition_point: first index with cum_time > elapsed.
        let idx = self.cum_time_s.partition_point(|&t| t <= elapsed_s);
        idx.saturating_sub(1)
    }

    /// Interpolated geographic position `elapsed_s` seconds after
    /// departure (clamped to the endpoints).
    pub fn position_at_time(&self, graph: &RoadGraph, elapsed_s: f64) -> GeoPoint {
        let i = self.index_at_time(elapsed_s);
        if i + 1 >= self.nodes.len() {
            return graph.point(*self.nodes.last().expect("non-empty"));
        }
        let t0 = self.cum_time_s[i];
        let t1 = self.cum_time_s[i + 1];
        let frac = if t1 > t0 { ((elapsed_s - t0) / (t1 - t0)).clamp(0.0, 1.0) } else { 0.0 };
        graph.point(self.nodes[i]).lerp(&graph.point(self.nodes[i + 1]), frac)
    }

    /// First index at which `node` appears, if any.
    pub fn position_of(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Replace the sub-route between way-point indices `from_idx` and
    /// `to_idx` (inclusive endpoints) with `replacement`, whose first and
    /// last way-points must equal `nodes[from_idx]` and `nodes[to_idx]`.
    ///
    /// This is the route-update primitive of booking (§VIII.B): the
    /// freshly computed shortest paths through the new via-points are
    /// joined into one replacement and spliced over the old segment.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range/order or the replacement
    /// endpoints do not match.
    pub fn splice(&self, from_idx: usize, to_idx: usize, replacement: &Route) -> Route {
        assert!(from_idx <= to_idx && to_idx < self.nodes.len(), "splice indices out of range");
        assert_eq!(
            replacement.nodes.first(),
            Some(&self.nodes[from_idx]),
            "replacement must start at nodes[{from_idx}]"
        );
        assert_eq!(
            replacement.nodes.last(),
            Some(&self.nodes[to_idx]),
            "replacement must end at nodes[{to_idx}]"
        );
        let mut nodes = Vec::with_capacity(from_idx + replacement.len() + (self.nodes.len() - to_idx));
        let mut cum_d = Vec::with_capacity(nodes.capacity());
        let mut cum_t = Vec::with_capacity(nodes.capacity());
        // Prefix up to (and including) from_idx.
        nodes.extend_from_slice(&self.nodes[..=from_idx]);
        cum_d.extend_from_slice(&self.cum_dist_m[..=from_idx]);
        cum_t.extend_from_slice(&self.cum_time_s[..=from_idx]);
        // Replacement (skip its first point, already present).
        let d0 = self.cum_dist_m[from_idx];
        let t0 = self.cum_time_s[from_idx];
        for k in 1..replacement.len() {
            nodes.push(replacement.nodes[k]);
            cum_d.push(d0 + replacement.cum_dist_m[k]);
            cum_t.push(t0 + replacement.cum_time_s[k]);
        }
        // Suffix after to_idx, shifted by the length change.
        let new_d_at_to = d0 + replacement.dist_m();
        let new_t_at_to = t0 + replacement.duration_s();
        let dd = new_d_at_to - self.cum_dist_m[to_idx];
        let dt = new_t_at_to - self.cum_time_s[to_idx];
        for k in (to_idx + 1)..self.nodes.len() {
            nodes.push(self.nodes[k]);
            cum_d.push(self.cum_dist_m[k] + dd);
            cum_t.push(self.cum_time_s[k] + dt);
        }
        Route { nodes, cum_dist_m: cum_d, cum_time_s: cum_t }
    }

    /// Join two routes where `self` ends at the node `other` starts at.
    ///
    /// # Panics
    ///
    /// Panics if the junction nodes differ.
    pub fn concat(&self, other: &Route) -> Route {
        assert_eq!(
            self.nodes.last(),
            other.nodes.first(),
            "concat requires matching junction way-point"
        );
        let d0 = self.dist_m();
        let t0 = self.duration_s();
        let mut nodes = self.nodes.clone();
        let mut cum_d = self.cum_dist_m.clone();
        let mut cum_t = self.cum_time_s.clone();
        for k in 1..other.len() {
            nodes.push(other.nodes[k]);
            cum_d.push(d0 + other.cum_dist_m[k]);
            cum_t.push(t0 + other.cum_time_s[k]);
        }
        Route { nodes, cum_dist_m: cum_d, cum_time_s: cum_t }
    }

    /// Heap bytes held by this route (for index-size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.cum_dist_m.capacity() * std::mem::size_of::<f64>()
            + self.cum_time_s.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RoadClass, RoadGraphBuilder};
    use crate::shortest_path::ShortestPaths;

    /// Line graph 0-1-2-3-4 with 1 km street edges (two-way).
    fn line() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|i| b.add_node(GeoPoint::new(40.70, -74.00 + 0.012 * i as f64)))
            .collect();
        for i in 1..5 {
            b.add_two_way(ids[i - 1], ids[i], RoadClass::Street, Some(1000.0));
        }
        b.build()
    }

    fn route(g: &RoadGraph, ids: &[u32]) -> Route {
        Route::from_path(g, ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    #[test]
    fn cumulative_arrays() {
        let g = line();
        let r = route(&g, &[0, 1, 2, 3]);
        assert_eq!(r.dist_m(), 3000.0);
        assert_eq!(r.dist_at(2), 2000.0);
        assert_eq!(r.dist_between(1, 3), 2000.0);
        let t_edge = 1000.0 / RoadClass::Street.speed_mps();
        assert!((r.duration_s() - 3.0 * t_edge).abs() < 1e-9);
    }

    #[test]
    fn from_path_rejects_disconnected() {
        let g = line();
        assert!(Route::from_path(&g, vec![NodeId(0), NodeId(2)]).is_none());
        assert!(Route::from_path(&g, vec![]).is_none());
    }

    #[test]
    fn singleton_route() {
        let g = line();
        let r = route(&g, &[2]);
        assert_eq!(r.dist_m(), 0.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.position_at_time(&g, 100.0), g.point(NodeId(2)));
    }

    #[test]
    fn index_at_time_progresses() {
        let g = line();
        let r = route(&g, &[0, 1, 2, 3, 4]);
        let t_edge = 1000.0 / RoadClass::Street.speed_mps();
        assert_eq!(r.index_at_time(-5.0), 0);
        assert_eq!(r.index_at_time(0.0), 0);
        assert_eq!(r.index_at_time(t_edge * 0.5), 0);
        assert_eq!(r.index_at_time(t_edge * 1.5), 1);
        assert_eq!(r.index_at_time(t_edge * 4.0), 4);
        assert_eq!(r.index_at_time(t_edge * 100.0), 4);
    }

    #[test]
    fn position_at_time_interpolates() {
        let g = line();
        let r = route(&g, &[0, 1]);
        let half = r.duration_s() / 2.0;
        let p = r.position_at_time(&g, half);
        let expect = g.point(NodeId(0)).lerp(&g.point(NodeId(1)), 0.5);
        assert!(p.haversine_m(&expect) < 1.0);
    }

    #[test]
    fn splice_inserts_detour() {
        let g = line();
        let r = route(&g, &[0, 1, 2]);
        // Replace segment 1..2 with the detour 1 -> 0 -> 1 -> 2.
        let detour = route(&g, &[1, 0, 1, 2]);
        let s = r.splice(1, 2, &detour);
        assert_eq!(
            s.nodes(),
            &[NodeId(0), NodeId(1), NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(s.dist_m(), 4000.0);
        // Cumulative arrays must stay consistent.
        assert_eq!(s.dist_at(4) - s.dist_at(3), 1000.0);
    }

    #[test]
    fn splice_identity() {
        let g = line();
        let r = route(&g, &[0, 1, 2, 3]);
        let seg = route(&g, &[1, 2]);
        let s = r.splice(1, 2, &seg);
        assert_eq!(s, r);
    }

    #[test]
    #[should_panic(expected = "replacement must start")]
    fn splice_mismatched_endpoint_panics() {
        let g = line();
        let r = route(&g, &[0, 1, 2]);
        let bad = route(&g, &[0, 1]);
        let _ = r.splice(1, 2, &bad);
    }

    #[test]
    fn concat_joins() {
        let g = line();
        let a = route(&g, &[0, 1, 2]);
        let b = route(&g, &[2, 3, 4]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.dist_m(), 4000.0);
    }

    #[test]
    fn route_from_shortest_path() {
        let g = line();
        let sp = ShortestPaths::driving(&g);
        let p = sp.path(NodeId(0), NodeId(4)).unwrap();
        let r = Route::from_path_result(&g, &p).unwrap();
        assert_eq!(r.dist_m(), p.dist_m);
        assert!((r.duration_s() - p.time_s).abs() < 1e-9);
    }
}
