//! Property-based tests of the road-network substrate.

use proptest::prelude::*;
use xar_roadnet::{CityConfig, CostMetric, Direction, NodeId, RoadGraph, Route, ShortestPaths};

fn graph() -> &'static RoadGraph {
    use std::sync::OnceLock;
    static G: OnceLock<RoadGraph> = OnceLock::new();
    G.get_or_init(|| CityConfig::test_city(2718).generate())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Driving distance is a quasi-metric: non-negative, zero iff the
    /// endpoints coincide (on a strongly connected city), and satisfies
    /// the directed triangle inequality.
    #[test]
    fn driving_distance_is_a_quasi_metric(a in 0u32..380, b in 0u32..380, c in 0u32..380) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        let sp = ShortestPaths::driving(g);
        let dab = sp.cost(a, b).expect("strongly connected");
        let dbc = sp.cost(b, c).expect("strongly connected");
        let dac = sp.cost(a, c).expect("strongly connected");
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(dab == 0.0, a == b);
        prop_assert!(dac <= dab + dbc + 1e-6, "triangle violated: {} > {} + {}", dac, dab, dbc);
    }

    /// Walking (undirected) distance is symmetric and never exceeds the
    /// driving distance.
    #[test]
    fn walking_le_driving_and_symmetric(a in 0u32..380, b in 0u32..380) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let walk = ShortestPaths::walking(g);
        let drive = ShortestPaths::driving(g);
        let wab = walk.cost(a, b).expect("connected");
        let wba = walk.cost(b, a).expect("connected");
        prop_assert!((wab - wba).abs() < 1e-6, "walking asymmetric: {} vs {}", wab, wba);
        let dab = drive.cost(a, b).expect("connected");
        prop_assert!(wab <= dab + 1e-6, "walking {} beats driving {}", wab, dab);
    }

    /// Any shortest-path distance dominates the crow-flies distance.
    #[test]
    fn road_distance_dominates_haversine(a in 0u32..380, b in 0u32..380) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let sp = ShortestPaths::driving(g);
        let d = sp.cost(a, b).expect("connected");
        let crow = g.point(a).haversine_m(&g.point(b));
        prop_assert!(d >= crow - 1.0, "road {} < crow {}", d, crow);
    }

    /// `bounded_from` agrees exactly with full Dijkstra inside the
    /// bound and never reports nodes beyond it.
    #[test]
    fn bounded_matches_one_to_all(src in 0u32..380, bound in 100.0f64..2_500.0) {
        let g = graph();
        let n = g.node_count() as u32;
        let src = NodeId(src % n);
        let sp = ShortestPaths::driving(g);
        let all = sp.one_to_all(src);
        let bounded = sp.bounded_from(src, bound);
        let map: std::collections::HashMap<u32, f64> =
            bounded.iter().map(|&(n, d)| (n.0, d)).collect();
        for (node, &d) in all.iter().enumerate() {
            if d <= bound {
                let got = map.get(&(node as u32)).copied();
                prop_assert_eq!(got, Some(d), "node {} missing or wrong in bounded", node);
            } else {
                prop_assert!(!map.contains_key(&(node as u32)));
            }
        }
    }

    /// A* equals Dijkstra on random pairs for both metrics.
    #[test]
    fn astar_equals_dijkstra(a in 0u32..380, b in 0u32..380, time_metric in any::<bool>()) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let metric = if time_metric { CostMetric::Time } else { CostMetric::Distance };
        let sp = ShortestPaths::new(g, metric, Direction::Forward);
        let d = sp.path(a, b).map(|p| if time_metric { p.time_s } else { p.dist_m });
        let astar = sp.astar(a, b).map(|p| if time_metric { p.time_s } else { p.dist_m });
        match (d, astar) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y),
            (None, None) => {}
            other => prop_assert!(false, "disagreement: {:?}", other),
        }
    }

    /// Splicing a route with the exact segment it already contains is
    /// the identity; splicing with a detour adds exactly the detour's
    /// extra length.
    #[test]
    fn splice_length_accounting(a in 0u32..380, b in 0u32..380, via in 0u32..380) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b, via) = (NodeId(a % n), NodeId(b % n), NodeId(via % n));
        prop_assume!(a != b);
        let sp = ShortestPaths::driving(g);
        let base = Route::from_path_result(g, &sp.path(a, b).expect("connected")).unwrap();
        let last = base.len() - 1;

        // Identity splice over the full span.
        let same = base.splice(0, last, &base);
        prop_assert_eq!(&same, &base);

        // Detour splice: a -> via -> b over the full span.
        let leg1 = Route::from_path_result(g, &sp.path(a, via).expect("connected")).unwrap();
        let leg2 = Route::from_path_result(g, &sp.path(via, b).expect("connected")).unwrap();
        let detour = leg1.concat(&leg2);
        let spliced = base.splice(0, last, &detour);
        prop_assert!((spliced.dist_m() - detour.dist_m()).abs() < 1e-6);
        prop_assert!(spliced.dist_m() >= base.dist_m() - 1e-6, "splice shortened a shortest path");
        // Cumulative arrays stay monotone.
        for i in 1..spliced.len() {
            prop_assert!(spliced.dist_at(i) >= spliced.dist_at(i - 1));
            prop_assert!(spliced.time_at(i) >= spliced.time_at(i - 1));
        }
    }

    /// position_at_time is monotone along the route (points advance).
    #[test]
    fn route_position_monotone(a in 0u32..380, b in 0u32..380) {
        let g = graph();
        let n = g.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        prop_assume!(a != b);
        let sp = ShortestPaths::driving_time(g);
        let route = Route::from_path_result(g, &sp.path(a, b).expect("connected")).unwrap();
        let total = route.duration_s();
        let mut prev_idx = 0usize;
        for step in 0..=10 {
            let t = total * step as f64 / 10.0;
            let idx = route.index_at_time(t);
            prop_assert!(idx >= prev_idx, "index went backwards");
            prev_idx = idx;
        }
        prop_assert_eq!(route.index_at_time(total + 1.0), route.len() - 1);
    }
}
