//! Hand-constructed network exercising the router's transfer machinery
//! precisely: two lines crossing at a known interchange, with known
//! headways — so the expected plan (and its wait times) is computable
//! by hand.

use xar_geo::GeoPoint;
use xar_roadnet::{CityConfig, NodeLocator, RoadGraph};
use xar_transit::{Leg, Line, LineId, LineKind, Stop, StopId, TransitNetwork, TransitRouter, WalkParams};

/// Build a cross: a west→east line and a south→north line meeting at
/// the city centre. Stops snap to real road nodes of a test city.
fn cross_network(g: &RoadGraph) -> (TransitNetwork, GeoPoint, GeoPoint) {
    let locator = NodeLocator::new(g, 250.0);
    let bbox = xar_geo::BoundingBox::from_points(g.node_ids().map(|n| g.point(n))).unwrap();
    let c = bbox.center();
    let west = GeoPoint::new(c.lat, bbox.min.lon);
    let east = GeoPoint::new(c.lat, bbox.max.lon);
    let south = GeoPoint::new(bbox.min.lat, c.lon);
    let north = GeoPoint::new(bbox.max.lat, c.lon);

    let mut stops = Vec::new();
    let mut add_stop = |p: GeoPoint| {
        let (node, _) = locator.nearest(g, &p);
        let id = StopId(stops.len() as u32);
        stops.push(Stop { id, point: g.point(node), node });
        id
    };
    let s_west = add_stop(west);
    let s_center_ew = add_stop(c);
    let s_east = add_stop(east);
    let s_south = add_stop(south);
    let s_north = add_stop(north);
    // The interchange: the EW line and the NS line share the centre
    // node, but are distinct Stop entries in a real feed; here the NS
    // line gets its own centre stop at the same node so the transfer
    // goes through the footpath machinery.
    let s_center_ns = {
        let node = stops[s_center_ew.index()].node;
        let id = StopId(stops.len() as u32);
        stops.push(Stop { id, point: g.point(node), node });
        id
    };

    let ew = Line::with_headway(
        LineId(0),
        LineKind::Bus,
        vec![s_west, s_center_ew, s_east],
        vec![400.0, 400.0],
        20.0,
        600.0,
        6.0 * 3600.0,
        22.0 * 3600.0,
    );
    let ns = Line::with_headway(
        LineId(1),
        LineKind::Bus,
        vec![s_south, s_center_ns, s_north],
        vec![400.0, 400.0],
        20.0,
        600.0,
        6.0 * 3600.0 + 120.0, // phase offset
        22.0 * 3600.0,
    );
    (TransitNetwork::new(stops, vec![ew, ns]), west, north)
}

#[test]
fn transfer_at_the_interchange() {
    let g = CityConfig::manhattan(30, 30, 321).generate();
    let (net, west, north) = cross_network(&g);
    let router = TransitRouter::new(&g, &net, WalkParams::default());
    // West edge -> north edge: must ride EW to the centre, transfer to
    // NS northbound (walking the whole way would be ~3 km, over the
    // direct-walk cap for comfort but check the plan regardless).
    let plan = router.plan(&west, &north, 8.0 * 3600.0).expect("plan exists");
    let transit_legs: Vec<_> = plan
        .legs
        .iter()
        .filter_map(|l| match l {
            Leg::Transit { line, from, to, board_s, alight_s } => {
                Some((*line, *from, *to, *board_s, *alight_s))
            }
            _ => None,
        })
        .collect();
    assert_eq!(transit_legs.len(), 2, "expected EW ride + NS ride: {plan:#?}");
    let (l1, _, _, _, alight1) = transit_legs[0];
    let (l2, _, _, board2, _) = transit_legs[1];
    assert_eq!(l1, LineId(0));
    assert_eq!(l2, LineId(1));
    assert!(board2 >= alight1, "boarded the connection before arriving");
    // Connection wait bounded by one NS headway (plus dwell slack).
    assert!(board2 - alight1 <= 600.0 + 60.0, "waited {}s", board2 - alight1);
    assert!(plan.hops() == 1);
    assert!(plan.is_consistent());
}

#[test]
fn no_transfer_needed_along_one_line() {
    let g = CityConfig::manhattan(30, 30, 321).generate();
    let (net, west, _) = cross_network(&g);
    let router = TransitRouter::new(&g, &net, WalkParams::default());
    let bbox = xar_geo::BoundingBox::from_points(g.node_ids().map(|n| g.point(n))).unwrap();
    let east = xar_geo::GeoPoint::new(bbox.center().lat, bbox.max.lon);
    let plan = router.plan(&west, &east, 9.0 * 3600.0).expect("plan exists");
    let rides = plan
        .legs
        .iter()
        .filter(|l| matches!(l, Leg::Transit { .. }))
        .count();
    assert_eq!(rides, 1, "straight EW trip needs exactly one ride: {plan:#?}");
    assert_eq!(plan.hops(), 0);
}

#[test]
fn waits_respect_the_phase_offset() {
    let g = CityConfig::manhattan(30, 30, 321).generate();
    let (net, west, _) = cross_network(&g);
    let router = TransitRouter::new(&g, &net, WalkParams::default());
    let bbox = xar_geo::BoundingBox::from_points(g.node_ids().map(|n| g.point(n))).unwrap();
    let east = xar_geo::GeoPoint::new(bbox.center().lat, bbox.max.lon);
    // Arrive at the west stop just after a departure: wait ≈ full
    // headway. Departures at 6:00, 6:10, ... Board stop is the first
    // stop (offset 0).
    let plan = router.plan(&west, &east, 6.0 * 3600.0 + 30.0).expect("plan");
    let wait: f64 = plan
        .legs
        .iter()
        .filter_map(|l| match l {
            Leg::Wait { duration_s, .. } => Some(*duration_s),
            _ => None,
        })
        .sum();
    // Walking to the stop consumes some of the 570 s to the next
    // departure; the wait is the remainder and never exceeds a headway.
    assert!(wait <= 600.0, "wait {wait}");
}
