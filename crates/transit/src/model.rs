//! Transit network model: stops and headway-scheduled lines.

use xar_geo::GeoPoint;
use xar_roadnet::NodeId;

/// Identifier of a transit stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StopId(pub u32);

impl StopId {
    /// Index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a transit line (a GTFS route with a single stop
/// pattern, scheduled by headway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u32);

impl LineId {
    /// Index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Mode of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    /// Heavy rail: fast, frequent, few stops.
    Subway,
    /// Bus: slower, denser stops.
    Bus,
}

impl LineKind {
    /// In-vehicle cruising speed, m/s.
    pub fn speed_mps(self) -> f64 {
        match self {
            LineKind::Subway => 14.0, // ~50 km/h including stops spacing
            LineKind::Bus => 6.0,     // ~22 km/h in traffic
        }
    }
}

/// A transit stop, snapped to the road network for walking access.
#[derive(Debug, Clone, Copy)]
pub struct Stop {
    /// Dense id.
    pub id: StopId,
    /// Location.
    pub point: GeoPoint,
    /// Nearest road way-point (walk legs are routed on the road graph).
    pub node: NodeId,
}

/// How vehicles of a line are dispatched from its first stop — the two
/// scheduling styles of a GTFS feed: `frequencies.txt` (headways) and
/// `stop_times.txt` (an explicit timetable).
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Vehicles depart every `headway_s` seconds from
    /// `first_departure_s` through `last_departure_s`.
    Headway {
        /// Seconds between consecutive vehicles.
        headway_s: f64,
        /// First departure, absolute seconds.
        first_departure_s: f64,
        /// Last departure, absolute seconds.
        last_departure_s: f64,
    },
    /// Explicit departure times from the first stop, sorted ascending.
    Timetable {
        /// Absolute departure seconds, sorted.
        departures_s: Vec<f64>,
    },
}

impl Schedule {
    /// The earliest departure `>= earliest_s`, if any service remains.
    pub fn next_departure(&self, earliest_s: f64) -> Option<f64> {
        match self {
            Schedule::Headway { headway_s, first_departure_s, last_departure_s } => {
                let dep = if earliest_s <= *first_departure_s {
                    *first_departure_s
                } else {
                    let k = ((earliest_s - first_departure_s) / headway_s).ceil();
                    first_departure_s + k * headway_s
                };
                (dep <= *last_departure_s + 1e-9).then_some(dep)
            }
            Schedule::Timetable { departures_s } => {
                let idx = departures_s.partition_point(|&d| d < earliest_s - 1e-9);
                departures_s.get(idx).copied()
            }
        }
    }
}

/// A one-directional transit line with a schedule anchored at its
/// first stop.
#[derive(Debug, Clone)]
pub struct Line {
    /// Dense id.
    pub id: LineId,
    /// Mode.
    pub kind: LineKind,
    /// Visited stops in order (at least 2).
    pub stops: Vec<StopId>,
    /// Travel time between consecutive stops, seconds
    /// (`len == stops.len() - 1`).
    pub leg_times_s: Vec<f64>,
    /// Dwell time at each intermediate stop, seconds.
    pub dwell_s: f64,
    /// Dispatch schedule at the first stop.
    pub schedule: Schedule,
}

impl Line {
    /// Convenience constructor for a headway-scheduled line.
    #[allow(clippy::too_many_arguments)]
    pub fn with_headway(
        id: LineId,
        kind: LineKind,
        stops: Vec<StopId>,
        leg_times_s: Vec<f64>,
        dwell_s: f64,
        headway_s: f64,
        first_departure_s: f64,
        last_departure_s: f64,
    ) -> Self {
        Self {
            id,
            kind,
            stops,
            leg_times_s,
            dwell_s,
            schedule: Schedule::Headway { headway_s, first_departure_s, last_departure_s },
        }
    }

    /// Offset from a vehicle's departure (at the first stop) to its
    /// arrival at `stop_pos` (index into `self.stops`).
    pub fn offset_to_stop_s(&self, stop_pos: usize) -> f64 {
        let mut t = 0.0;
        for i in 0..stop_pos {
            t += self.leg_times_s[i];
            if i + 1 < stop_pos {
                t += self.dwell_s;
            }
        }
        t
    }

    /// The next vehicle departure (measured at the *first* stop) whose
    /// arrival at `stop_pos` is at or after `earliest_s`. `None` if the
    /// service day is over.
    pub fn next_departure_for(&self, stop_pos: usize, earliest_s: f64) -> Option<f64> {
        let offset = self.offset_to_stop_s(stop_pos);
        self.schedule.next_departure(earliest_s - offset)
    }

    /// Arrival time at `stop_pos` for the vehicle departing the first
    /// stop at `departure_s`.
    pub fn arrival_at(&self, departure_s: f64, stop_pos: usize) -> f64 {
        departure_s + self.offset_to_stop_s(stop_pos)
    }
}

/// The full network: stops, lines, and the stop → lines inverted index.
#[derive(Debug, Clone)]
pub struct TransitNetwork {
    /// All stops, indexed by [`StopId`].
    pub stops: Vec<Stop>,
    /// All lines, indexed by [`LineId`].
    pub lines: Vec<Line>,
    /// For each stop: the `(line, position-on-line)` pairs serving it.
    pub lines_at_stop: Vec<Vec<(LineId, usize)>>,
}

impl TransitNetwork {
    /// Assemble a network, building the inverted index.
    ///
    /// # Panics
    ///
    /// Panics if a line references an unknown stop or has inconsistent
    /// leg times.
    pub fn new(stops: Vec<Stop>, lines: Vec<Line>) -> Self {
        let mut lines_at_stop = vec![Vec::new(); stops.len()];
        for line in &lines {
            assert!(line.stops.len() >= 2, "line {:?} has fewer than 2 stops", line.id);
            assert_eq!(
                line.leg_times_s.len(),
                line.stops.len() - 1,
                "line {:?} leg times inconsistent",
                line.id
            );
            for (pos, s) in line.stops.iter().enumerate() {
                assert!(s.index() < stops.len(), "line {:?} references unknown stop", line.id);
                lines_at_stop[s.index()].push((line.id, pos));
            }
        }
        Self { stops, lines, lines_at_stop }
    }

    /// Number of stops.
    pub fn stop_count(&self) -> usize {
        self.stops.len()
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Line {
        Line::with_headway(
            LineId(0),
            LineKind::Subway,
            vec![StopId(0), StopId(1), StopId(2)],
            vec![120.0, 180.0],
            30.0,
            600.0,
            6.0 * 3600.0,
            22.0 * 3600.0,
        )
    }

    #[test]
    fn timetable_schedule_next_departure() {
        let s = Schedule::Timetable { departures_s: vec![100.0, 400.0, 900.0] };
        assert_eq!(s.next_departure(0.0), Some(100.0));
        assert_eq!(s.next_departure(100.0), Some(100.0));
        assert_eq!(s.next_departure(100.1), Some(400.0));
        assert_eq!(s.next_departure(899.9), Some(900.0));
        assert_eq!(s.next_departure(901.0), None);
    }

    #[test]
    fn timetable_line_boards_exact_trips() {
        let mut l = line();
        l.schedule = Schedule::Timetable { departures_s: vec![7.0 * 3600.0, 7.5 * 3600.0] };
        // Board at stop 1 (offset 120 s) at 7:05: the 7:00 trip passed
        // (arrives 7:02), so the 7:30 one is next.
        assert_eq!(l.next_departure_for(1, 7.0 * 3600.0 + 300.0), Some(7.5 * 3600.0));
        assert_eq!(l.next_departure_for(1, 8.0 * 3600.0), None);
    }

    #[test]
    fn offsets_accumulate_leg_and_dwell() {
        let l = line();
        assert_eq!(l.offset_to_stop_s(0), 0.0);
        assert_eq!(l.offset_to_stop_s(1), 120.0);
        assert_eq!(l.offset_to_stop_s(2), 120.0 + 30.0 + 180.0);
    }

    #[test]
    fn next_departure_rounds_up_to_headway() {
        let l = line();
        // Want to board at stop 1 (offset 120 s) at 6:05:00 = 21900 s.
        // Candidate departures: 21600, 22200, ... ; dep + 120 >= 21900
        // ⇒ dep >= 21780 ⇒ 22200.
        let dep = l.next_departure_for(1, 6.0 * 3600.0 + 300.0).unwrap();
        assert_eq!(dep, 6.0 * 3600.0 + 600.0);
        // Before service start: first departure.
        assert_eq!(l.next_departure_for(0, 0.0).unwrap(), 6.0 * 3600.0);
    }

    #[test]
    fn service_day_ends() {
        let l = line();
        assert!(l.next_departure_for(0, 23.0 * 3600.0).is_none());
    }

    #[test]
    fn arrival_combines_departure_and_offset() {
        let l = line();
        let dep = 7.0 * 3600.0;
        assert_eq!(l.arrival_at(dep, 2), dep + 330.0);
    }

    #[test]
    fn network_builds_inverted_index() {
        let stops: Vec<Stop> = (0..3)
            .map(|i| Stop {
                id: StopId(i),
                point: GeoPoint::new(40.7 + 0.01 * i as f64, -74.0),
                node: NodeId(i),
            })
            .collect();
        let net = TransitNetwork::new(stops, vec![line()]);
        assert_eq!(net.lines_at_stop[1], vec![(LineId(0), 1)]);
        assert_eq!(net.stop_count(), 3);
        assert_eq!(net.line_count(), 1);
    }

    #[test]
    #[should_panic(expected = "leg times inconsistent")]
    fn bad_leg_times_panic() {
        let stops: Vec<Stop> = (0..3)
            .map(|i| Stop {
                id: StopId(i),
                point: GeoPoint::new(40.7 + 0.01 * i as f64, -74.0),
                node: NodeId(i),
            })
            .collect();
        let mut l = line();
        l.leg_times_s.pop();
        let _ = TransitNetwork::new(stops, vec![l]);
    }
}
