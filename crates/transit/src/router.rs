//! Earliest-arrival multi-modal router (walk + transit).
//!
//! Plays the role OpenTripPlanner plays in the paper: given an origin,
//! a destination and a departure time, produce a [`TripPlan`] whose
//! legs are walks, waits and transit rides. Walking is routed over the
//! road graph (undirected — pedestrians ignore one-ways); boarding uses
//! the headway schedules of the lines; transfers use precomputed
//! stop-to-stop footpaths.
//!
//! The algorithm is a time-dependent Dijkstra over stops: labels are
//! earliest arrival times, edges are (a) riding a line from a stop to
//! any later stop of the line, and (b) walking a footpath to a nearby
//! stop. Access and egress walks connect the origin and destination to
//! all stops within a configurable radius.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use xar_geo::GeoPoint;
use xar_roadnet::{CostMetric, Direction, NodeLocator, RoadGraph, ShortestPaths};

use crate::model::{LineId, StopId, TransitNetwork};
use crate::plan::{Leg, TripPlan};

/// Walking parameters of the router.
#[derive(Debug, Clone)]
pub struct WalkParams {
    /// Walking speed, m/s.
    pub speed_mps: f64,
    /// Maximum access/egress walk from origin/destination to a stop,
    /// metres.
    pub max_access_m: f64,
    /// Maximum transfer footpath between stops, metres.
    pub max_transfer_m: f64,
    /// Maximum length of an all-walk trip (fallback when transit loses
    /// or is unavailable), metres.
    pub max_direct_walk_m: f64,
}

impl Default for WalkParams {
    fn default() -> Self {
        Self { speed_mps: 1.4, max_access_m: 800.0, max_transfer_m: 300.0, max_direct_walk_m: 2_500.0 }
    }
}

/// How a stop label was reached (for plan reconstruction).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Parent {
    /// Walked from the origin.
    Access {
        walk_m: f64,
    },
    /// Rode a line from another stop.
    Ride {
        line: LineId,
        from: StopId,
        board_s: f64,
        alight_s: f64,
    },
    /// Walked a footpath from another stop.
    Transfer {
        from: StopId,
        walk_m: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct QItem {
    time: f64,
    stop: u32,
}
impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.stop == other.stop
    }
}
impl Eq for QItem {}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.stop.cmp(&self.stop))
    }
}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The multi-modal router, bound to a road graph and a transit network.
pub struct TransitRouter<'a> {
    graph: &'a RoadGraph,
    net: &'a TransitNetwork,
    params: WalkParams,
    locator: NodeLocator,
    /// Per stop: `(other stop, walking metres)` footpaths within
    /// `max_transfer_m`.
    footpaths: Vec<Vec<(StopId, f64)>>,
    /// node -> stops at that node (for access/egress mapping).
    stops_at_node: std::collections::HashMap<u32, Vec<StopId>>,
}

impl<'a> TransitRouter<'a> {
    /// Build the router (precomputes transfer footpaths).
    pub fn new(graph: &'a RoadGraph, net: &'a TransitNetwork, params: WalkParams) -> Self {
        let locator = NodeLocator::new(graph, 250.0);
        let walk = ShortestPaths::new(graph, CostMetric::Distance, Direction::Undirected);
        let mut stops_at_node: std::collections::HashMap<u32, Vec<StopId>> = Default::default();
        for s in &net.stops {
            stops_at_node.entry(s.node.0).or_default().push(s.id);
        }
        let mut footpaths = vec![Vec::new(); net.stops.len()];
        for s in &net.stops {
            for (node, d) in walk.bounded_from(s.node, params.max_transfer_m) {
                if let Some(others) = stops_at_node.get(&node.0) {
                    for &o in others {
                        if o != s.id {
                            footpaths[s.id.index()].push((o, d));
                        }
                    }
                }
            }
        }
        Self { graph, net, params, locator, footpaths, stops_at_node }
    }

    /// Walking distances from `p` to all stops within the access
    /// radius, as `(stop, metres)`.
    fn access_stops(&self, p: &GeoPoint) -> Vec<(StopId, f64)> {
        let (node, snap_d) = self.locator.nearest(self.graph, p);
        let walk = ShortestPaths::new(self.graph, CostMetric::Distance, Direction::Undirected);
        let mut out = Vec::new();
        for (n, d) in walk.bounded_from(node, self.params.max_access_m) {
            if let Some(stops) = self.stops_at_node.get(&n.0) {
                for &s in stops {
                    out.push((s, d + snap_d));
                }
            }
        }
        out
    }

    /// Walking distance from `a` to `b` over the road graph, bounded by
    /// `max_direct_walk_m`.
    fn direct_walk(&self, a: &GeoPoint, b: &GeoPoint) -> Option<f64> {
        let (na, da) = self.locator.nearest(self.graph, a);
        let (nb, db) = self.locator.nearest(self.graph, b);
        let walk = ShortestPaths::new(self.graph, CostMetric::Distance, Direction::Undirected);
        let targets = [nb];
        let d = walk.to_targets(na, &targets, self.params.max_direct_walk_m)[0]?;
        let total = d + da + db;
        (total <= self.params.max_direct_walk_m).then_some(total)
    }

    /// Plan a trip from `origin` to `destination` departing at
    /// `depart_s`. Returns `None` when neither transit nor a direct
    /// walk can make the trip.
    pub fn plan(&self, origin: &GeoPoint, destination: &GeoPoint, depart_s: f64) -> Option<TripPlan> {
        let n = self.net.stops.len();
        let mut arrival = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<Parent>> = vec![None; n];
        let mut heap = BinaryHeap::new();

        for (s, walk_m) in self.access_stops(origin) {
            let t = depart_s + walk_m / self.params.speed_mps;
            if t < arrival[s.index()] {
                arrival[s.index()] = t;
                parent[s.index()] = Some(Parent::Access { walk_m });
                heap.push(QItem { time: t, stop: s.0 });
            }
        }

        // Egress table.
        let egress = self.access_stops(destination);
        let mut egress_walk = vec![f64::INFINITY; n];
        for &(s, d) in &egress {
            egress_walk[s.index()] = egress_walk[s.index()].min(d);
        }

        while let Some(QItem { time, stop }) = heap.pop() {
            if time > arrival[stop as usize] {
                continue;
            }
            let u = StopId(stop);
            // Ride every line serving u to all downstream stops.
            for &(line_id, pos) in &self.net.lines_at_stop[u.index()] {
                let line = &self.net.lines[line_id.index()];
                let Some(dep) = line.next_departure_for(pos, time) else { continue };
                let board_s = line.arrival_at(dep, pos);
                for pos2 in (pos + 1)..line.stops.len() {
                    let v = line.stops[pos2];
                    let alight_s = line.arrival_at(dep, pos2);
                    if alight_s < arrival[v.index()] {
                        arrival[v.index()] = alight_s;
                        parent[v.index()] =
                            Some(Parent::Ride { line: line_id, from: u, board_s, alight_s });
                        heap.push(QItem { time: alight_s, stop: v.0 });
                    }
                }
            }
            // Transfer footpaths.
            for &(v, walk_m) in &self.footpaths[u.index()] {
                let t = time + walk_m / self.params.speed_mps;
                if t < arrival[v.index()] {
                    arrival[v.index()] = t;
                    parent[v.index()] = Some(Parent::Transfer { from: u, walk_m });
                    heap.push(QItem { time: t, stop: v.0 });
                }
            }
        }

        // Best transit plan: arrive at some stop, walk out. Require at
        // least one Ride leg — otherwise it is just a walk.
        let mut best: Option<(StopId, f64)> = None;
        for s in 0..n {
            if !arrival[s].is_finite() || !egress_walk[s].is_finite() {
                continue;
            }
            // Must have ridden something to count as a transit plan.
            let mut cur = s;
            let mut rode = false;
            while let Some(p) = parent[cur] {
                match p {
                    Parent::Ride { from, .. } => {
                        rode = true;
                        cur = from.index();
                    }
                    Parent::Transfer { from, .. } => cur = from.index(),
                    Parent::Access { .. } => break,
                }
            }
            if !rode {
                continue;
            }
            let total = arrival[s] + egress_walk[s] / self.params.speed_mps;
            if best.is_none_or(|(_, t)| total < t) {
                best = Some((StopId(s as u32), total));
            }
        }

        let walk_only = self.direct_walk(origin, destination).map(|d| {
            let dur = d / self.params.speed_mps;
            TripPlan {
                departure_s: depart_s,
                arrival_s: depart_s + dur,
                legs: vec![Leg::Walk {
                    from: *origin,
                    to: *destination,
                    dist_m: d,
                    duration_s: dur,
                }],
            }
        });

        let transit_plan = best.map(|(last_stop, total)| {
            self.reconstruct(origin, destination, depart_s, total, last_stop, &arrival, &parent, &egress_walk)
        });

        match (transit_plan, walk_only) {
            (Some(t), Some(w)) => Some(if w.arrival_s <= t.arrival_s { w } else { t }),
            (Some(t), None) => Some(t),
            (None, Some(w)) => Some(w),
            (None, None) => None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn reconstruct(
        &self,
        origin: &GeoPoint,
        destination: &GeoPoint,
        depart_s: f64,
        total_arrival_s: f64,
        last_stop: StopId,
        arrival: &[f64],
        parent: &[Option<Parent>],
        egress_walk: &[f64],
    ) -> TripPlan {
        // Walk back the parent chain.
        let mut chain: Vec<(StopId, Parent)> = Vec::new();
        let mut cur = last_stop;
        loop {
            let p = parent[cur.index()].expect("reached stop has a parent");
            chain.push((cur, p));
            match p {
                Parent::Access { .. } => break,
                Parent::Ride { from, .. } | Parent::Transfer { from, .. } => cur = from,
            }
        }
        chain.reverse();

        let mut legs: Vec<Leg> = Vec::new();
        let mut clock = depart_s;
        for (stop, p) in &chain {
            match *p {
                Parent::Access { walk_m } => {
                    let dur = walk_m / self.params.speed_mps;
                    legs.push(Leg::Walk {
                        from: *origin,
                        to: self.net.stops[stop.index()].point,
                        dist_m: walk_m,
                        duration_s: dur,
                    });
                    clock += dur;
                }
                Parent::Transfer { from, walk_m } => {
                    let dur = walk_m / self.params.speed_mps;
                    legs.push(Leg::Walk {
                        from: self.net.stops[from.index()].point,
                        to: self.net.stops[stop.index()].point,
                        dist_m: walk_m,
                        duration_s: dur,
                    });
                    clock += dur;
                }
                Parent::Ride { line, from, board_s, alight_s } => {
                    if board_s > clock + 1e-9 {
                        legs.push(Leg::Wait { stop: from, duration_s: board_s - clock });
                    }
                    legs.push(Leg::Transit { line, from, to: *stop, board_s, alight_s });
                    clock = alight_s;
                }
            }
        }
        debug_assert!((clock - arrival[last_stop.index()]).abs() < 1e-6);
        let out_walk = egress_walk[last_stop.index()];
        if out_walk > 0.0 {
            let dur = out_walk / self.params.speed_mps;
            legs.push(Leg::Walk {
                from: self.net.stops[last_stop.index()].point,
                to: *destination,
                dist_m: out_walk,
                duration_s: dur,
            });
            clock += dur;
        }
        debug_assert!((clock - total_arrival_s).abs() < 1e-6);
        TripPlan { departure_s: depart_s, arrival_s: clock, legs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_transit, TransitGenConfig};
    use xar_roadnet::CityConfig;

    fn setup() -> (RoadGraph, TransitNetwork) {
        let g = CityConfig::test_city(31).generate();
        let net = generate_transit(&g, &TransitGenConfig::default());
        (g, net)
    }

    #[test]
    fn plans_a_cross_city_trip() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(0));
        let b = g.point(xar_roadnet::NodeId(g.node_count() as u32 - 1));
        let plan = router.plan(&a, &b, 8.0 * 3600.0).expect("plan exists");
        assert!(plan.arrival_s > plan.departure_s);
        assert!(plan.is_consistent(), "legs don't sum to travel time: {plan:?}");
        assert!(!plan.legs.is_empty());
    }

    #[test]
    fn transit_plan_beats_walking_across_the_city_or_is_walk() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(0));
        let b = g.point(xar_roadnet::NodeId(g.node_count() as u32 - 1));
        let plan = router.plan(&a, &b, 8.0 * 3600.0).unwrap();
        // ~2.7 km diagonal: walking alone would be ≥ 1900 s. The plan
        // (whatever mix) must not be worse than walking the whole way.
        let crow = a.haversine_m(&b);
        let walk_time_bound = crow * 1.8 / 1.4;
        assert!(
            plan.travel_time_s() <= walk_time_bound + 600.0,
            "plan takes {}s vs naive walk bound {}s",
            plan.travel_time_s(),
            walk_time_bound
        );
    }

    #[test]
    fn short_trips_are_walked() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(0));
        let b = g.point(xar_roadnet::NodeId(1));
        let plan = router.plan(&a, &b, 8.0 * 3600.0).unwrap();
        assert_eq!(plan.vehicle_legs(), 0, "a one-block trip should be all walk: {plan:?}");
    }

    #[test]
    fn no_service_at_night_falls_back_to_walk_or_none() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(0));
        let b = g.point(xar_roadnet::NodeId(g.node_count() as u32 - 1));
        // 2 am: before first departures (5 am per config)... the router
        // may still board the 5 am service; the plan just waits. But at
        // 23:30 the service day is over.
        if let Some(plan) = router.plan(&a, &b, 23.5 * 3600.0) {
            assert_eq!(plan.vehicle_legs(), 0, "no transit after the service day");
        }
    }

    #[test]
    fn plan_times_are_monotone_in_legs() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(5));
        let b = g.point(xar_roadnet::NodeId(g.node_count() as u32 - 5));
        let plan = router.plan(&a, &b, 9.0 * 3600.0).unwrap();
        let mut clock = plan.departure_s;
        for leg in &plan.legs {
            if let Leg::Transit { board_s, alight_s, .. } = leg {
                assert!(*board_s >= clock - 1e-6, "board before arriving at stop");
                assert!(alight_s > board_s);
                clock = *alight_s;
            } else {
                clock += leg.duration_s();
            }
        }
        assert!((clock - plan.arrival_s).abs() < 1e-6);
    }

    #[test]
    fn waits_reflect_headway() {
        let (g, net) = setup();
        let router = TransitRouter::new(&g, &net, WalkParams::default());
        let a = g.point(xar_roadnet::NodeId(0));
        let b = g.point(xar_roadnet::NodeId(g.node_count() as u32 - 1));
        let plan = router.plan(&a, &b, 8.0 * 3600.0).unwrap();
        // No single wait should exceed the worst headway (720 s bus).
        for leg in &plan.legs {
            if let Leg::Wait { duration_s, .. } = leg {
                assert!(*duration_s <= 720.0 + 1e-6, "wait {duration_s}");
            }
        }
    }
}
