//! Synthetic GTFS-like feed generator.
//!
//! Stands in for the paper's New York GTFS data (obtained from the MTA
//! and "cleaned", §X.B.3). Subway lines run as long straight corridors
//! across the region with ~800 m stop spacing and short headways; bus
//! lines run along intermediate corridors with ~400 m spacing and
//! longer headways. Stops snap to the road network so walking legs are
//! routed on real streets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xar_geo::{BoundingBox, GeoPoint};
use xar_roadnet::{NodeLocator, RoadGraph};

use crate::model::{Line, LineId, LineKind, Stop, StopId, TransitNetwork};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TransitGenConfig {
    /// Number of north-south subway corridors.
    pub subway_lines: usize,
    /// Number of bus corridors (alternating orientations).
    pub bus_lines: usize,
    /// Subway stop spacing, metres.
    pub subway_stop_spacing_m: f64,
    /// Bus stop spacing, metres.
    pub bus_stop_spacing_m: f64,
    /// Subway headway, seconds.
    pub subway_headway_s: f64,
    /// Bus headway, seconds.
    pub bus_headway_s: f64,
    /// Service start (first departures), absolute seconds.
    pub service_start_s: f64,
    /// Service end (last departures), absolute seconds.
    pub service_end_s: f64,
    /// Emit subway lines with explicit GTFS-style timetables
    /// (`stop_times`) instead of headway frequencies. Semantics are
    /// identical when the timetable enumerates the same departures;
    /// this exercises the `Schedule::Timetable` path end-to-end.
    pub explicit_timetables: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransitGenConfig {
    fn default() -> Self {
        Self {
            subway_lines: 3,
            bus_lines: 6,
            subway_stop_spacing_m: 800.0,
            bus_stop_spacing_m: 400.0,
            subway_headway_s: 360.0,
            bus_headway_s: 720.0,
            service_start_s: 5.0 * 3600.0,
            service_end_s: 23.0 * 3600.0,
            explicit_timetables: false,
            seed: 0xBEEF,
        }
    }
}

/// Generate a transit network over `graph`. Every line is emitted in
/// both directions (as two one-directional [`Line`]s), like a GTFS feed
/// with two trips patterns per route.
pub fn generate_transit(graph: &RoadGraph, cfg: &TransitGenConfig) -> TransitNetwork {
    assert!(
        cfg.subway_headway_s > 0.0 && cfg.bus_headway_s > 0.0,
        "headways must be positive (got subway {}, bus {})",
        cfg.subway_headway_s,
        cfg.bus_headway_s
    );
    let bbox = BoundingBox::from_points(graph.node_ids().map(|n| graph.point(n)))
        .expect("non-empty graph");
    let locator = NodeLocator::new(graph, 250.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut stops: Vec<Stop> = Vec::new();
    let mut lines: Vec<Line> = Vec::new();
    // Deduplicate stops by snapped node.
    let mut stop_at_node: std::collections::HashMap<u32, StopId> = std::collections::HashMap::new();

    let corridor = |points: Vec<GeoPoint>,
                        kind: LineKind,
                        headway: f64,
                        stops_vec: &mut Vec<Stop>,
                        lines_vec: &mut Vec<Line>,
                        stop_at_node: &mut std::collections::HashMap<u32, StopId>,
                        phase: f64| {
        let mut ids: Vec<StopId> = Vec::with_capacity(points.len());
        for p in &points {
            let (node, _) = locator.nearest(graph, p);
            let id = *stop_at_node.entry(node.0).or_insert_with(|| {
                let id = StopId(stops_vec.len() as u32);
                stops_vec.push(Stop { id, point: graph.point(node), node });
                id
            });
            // A corridor may snap two consecutive planned stops to the
            // same node; skip duplicates.
            if ids.last() != Some(&id) {
                ids.push(id);
            }
        }
        if ids.len() < 2 {
            return;
        }
        let leg_times: Vec<f64> = ids
            .windows(2)
            .map(|w| {
                let a = stops_vec[w[0].index()].point;
                let b = stops_vec[w[1].index()].point;
                (a.haversine_m(&b) * 1.2 / kind.speed_mps()).max(30.0)
            })
            .collect();
        for dir in 0..2 {
            let (s, t) = if dir == 0 {
                (ids.clone(), leg_times.clone())
            } else {
                let mut s = ids.clone();
                s.reverse();
                let mut t = leg_times.clone();
                t.reverse();
                (s, t)
            };
            let mut line = Line::with_headway(
                LineId(lines_vec.len() as u32),
                kind,
                s,
                t,
                if kind == LineKind::Subway { 30.0 } else { 20.0 },
                headway,
                cfg.service_start_s + phase,
                cfg.service_end_s,
            );
            if cfg.explicit_timetables && kind == LineKind::Subway {
                // Materialize the same departures as an explicit
                // stop_times-style timetable.
                let mut departures = Vec::new();
                let mut dep = cfg.service_start_s + phase;
                while dep <= cfg.service_end_s + 1e-9 {
                    departures.push(dep);
                    dep += headway;
                }
                line.schedule = crate::model::Schedule::Timetable { departures_s: departures };
            }
            lines_vec.push(line);
        }
    };

    // Subway corridors: vertical (south→north) lines spread across the
    // width of the region.
    for i in 0..cfg.subway_lines {
        let frac = (i as f64 + 0.5) / cfg.subway_lines as f64;
        let lon = bbox.min.lon + frac * (bbox.max.lon - bbox.min.lon);
        let height = bbox.height_m();
        let n_stops = ((height / cfg.subway_stop_spacing_m) as usize).max(2);
        let pts: Vec<GeoPoint> = (0..=n_stops)
            .map(|k| {
                let lat = bbox.min.lat + (bbox.max.lat - bbox.min.lat) * k as f64 / n_stops as f64;
                GeoPoint::new(lat, lon)
            })
            .collect();
        let phase = rng.random::<f64>() * cfg.subway_headway_s;
        corridor(pts, LineKind::Subway, cfg.subway_headway_s, &mut stops, &mut lines, &mut stop_at_node, phase);
    }

    // Bus corridors: alternating horizontal / vertical.
    for i in 0..cfg.bus_lines {
        let frac = (i as f64 + 0.5) / cfg.bus_lines as f64;
        let phase = rng.random::<f64>() * cfg.bus_headway_s;
        let pts: Vec<GeoPoint> = if i % 2 == 0 {
            // East-west at a given latitude.
            let lat = bbox.min.lat + frac * (bbox.max.lat - bbox.min.lat);
            let width = bbox.width_m();
            let n = ((width / cfg.bus_stop_spacing_m) as usize).max(2);
            (0..=n)
                .map(|k| {
                    let lon = bbox.min.lon + (bbox.max.lon - bbox.min.lon) * k as f64 / n as f64;
                    GeoPoint::new(lat, lon)
                })
                .collect()
        } else {
            let lon = bbox.min.lon + frac * (bbox.max.lon - bbox.min.lon);
            let height = bbox.height_m();
            let n = ((height / cfg.bus_stop_spacing_m) as usize).max(2);
            (0..=n)
                .map(|k| {
                    let lat = bbox.min.lat + (bbox.max.lat - bbox.min.lat) * k as f64 / n as f64;
                    GeoPoint::new(lat, lon)
                })
                .collect()
        };
        corridor(pts, LineKind::Bus, cfg.bus_headway_s, &mut stops, &mut lines, &mut stop_at_node, phase);
    }

    TransitNetwork::new(stops, lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::CityConfig;

    #[test]
    fn generates_stops_and_lines() {
        let g = CityConfig::test_city(9).generate();
        let net = generate_transit(&g, &TransitGenConfig::default());
        assert!(net.stop_count() >= 10, "stops: {}", net.stop_count());
        // 3 subway + 6 bus corridors, both directions each.
        assert_eq!(net.line_count(), 2 * (3 + 6));
        for line in &net.lines {
            assert!(line.stops.len() >= 2);
            assert!(line.leg_times_s.iter().all(|&t| t >= 30.0));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = CityConfig::test_city(9).generate();
        let a = generate_transit(&g, &TransitGenConfig::default());
        let b = generate_transit(&g, &TransitGenConfig::default());
        assert_eq!(a.stop_count(), b.stop_count());
        for (la, lb) in a.lines.iter().zip(&b.lines) {
            assert_eq!(la.stops, lb.stops);
            assert_eq!(la.schedule, lb.schedule);
        }
    }

    #[test]
    fn stops_snap_to_road_nodes() {
        let g = CityConfig::test_city(9).generate();
        let net = generate_transit(&g, &TransitGenConfig::default());
        for s in &net.stops {
            assert!(s.node.index() < g.node_count());
            // Stop location == the snapped node's location.
            assert_eq!(s.point.lat, g.point(s.node).lat);
        }
    }

    #[test]
    fn explicit_timetables_plan_identically() {
        // A headway schedule and the timetable that enumerates the same
        // departures must produce identical plans.
        use crate::router::{TransitRouter, WalkParams};
        let g = CityConfig::test_city(9).generate();
        let freq = generate_transit(&g, &TransitGenConfig::default());
        let tt = generate_transit(
            &g,
            &TransitGenConfig { explicit_timetables: true, ..Default::default() },
        );
        assert!(tt
            .lines
            .iter()
            .any(|l| matches!(l.schedule, crate::model::Schedule::Timetable { .. })));
        let r1 = TransitRouter::new(&g, &freq, WalkParams::default());
        let r2 = TransitRouter::new(&g, &tt, WalkParams::default());
        let n = g.node_count() as u32;
        for i in 0..10u32 {
            let a = g.point(xar_roadnet::NodeId((i * 37) % n));
            let b = g.point(xar_roadnet::NodeId((i * 91 + n / 2) % n));
            let t = 7.0 * 3600.0 + f64::from(i) * 600.0;
            let p1 = r1.plan(&a, &b, t);
            let p2 = r2.plan(&a, &b, t);
            match (&p1, &p2) {
                (Some(x), Some(y)) => {
                    assert!((x.arrival_s - y.arrival_s).abs() < 1e-6, "plans diverge at trial {i}")
                }
                (None, None) => {}
                _ => panic!("plan existence diverges at trial {i}"),
            }
        }
    }

    #[test]
    fn both_directions_exist() {
        let g = CityConfig::test_city(9).generate();
        let net = generate_transit(&g, &TransitGenConfig::default());
        // Line 0 and line 1 are opposite directions of the same corridor.
        let fwd = &net.lines[0];
        let bwd = &net.lines[1];
        let mut rev = bwd.stops.clone();
        rev.reverse();
        assert_eq!(fwd.stops, rev);
    }
}
