//! GTFS-like public-transport substrate and multi-modal router.
//!
//! The paper integrates XAR with OpenTripPlanner fed by the New York
//! GTFS feed (§X.B.3). This crate supplies both halves from scratch:
//!
//! * [`model`] — stops, lines (headway-based schedules, the common GTFS
//!   `frequencies.txt` pattern) and the transit network;
//! * [`generate`] — a synthetic feed generator: subway trunk corridors
//!   and a bus grid over any road network, with realistic stop spacing
//!   and headways;
//! * [`plan`] — multi-leg trip plans (walk / wait / transit legs) with
//!   the quality metrics Figure 6 reports: end-to-end travel time,
//!   walking time, waiting time, and hop count;
//! * [`router`] — an earliest-arrival multi-modal router (walk +
//!   transit with transfers), the role OpenTripPlanner plays for the
//!   paper.

#![warn(missing_docs)]

pub mod generate;
pub mod model;
pub mod plan;
pub mod router;

pub use generate::TransitGenConfig;
pub use model::{Line, LineId, LineKind, Schedule, Stop, StopId, TransitNetwork};
pub use plan::{Leg, TripPlan};
pub use router::{TransitRouter, WalkParams};
