//! GTFS-like public-transport substrate and multi-modal router.
//!
//! The paper integrates XAR with OpenTripPlanner fed by the New York
//! GTFS feed (§X.B.3). This crate supplies both halves from scratch:
//!
//! * [`model`] — stops, lines (headway-based schedules, the common GTFS
//!   `frequencies.txt` pattern) and the transit network;
//! * [`generate`] — a synthetic feed generator: subway trunk corridors
//!   and a bus grid over any road network, with realistic stop spacing
//!   and headways;
//! * [`plan`] — multi-leg trip plans (walk / wait / transit legs) with
//!   the quality metrics Figure 6 reports: end-to-end travel time,
//!   walking time, waiting time, and hop count;
//! * [`router`] — an earliest-arrival multi-modal router (walk +
//!   transit with transfers), the role OpenTripPlanner plays for the
//!   paper.
//!
//! ```
//! use xar_roadnet::{CityConfig, NodeId};
//! use xar_transit::generate::generate_transit;
//! use xar_transit::{TransitGenConfig, TransitRouter, WalkParams};
//!
//! let graph = CityConfig::test_city(11).generate();
//! let net = generate_transit(&graph, &TransitGenConfig::default());
//! assert!(net.stop_count() > 0);
//!
//! let router = TransitRouter::new(&graph, &net, WalkParams::default());
//! let n = graph.node_count() as u32;
//! let plan = router
//!     .plan(&graph.point(NodeId(0)), &graph.point(NodeId(n - 1)), 8.0 * 3600.0)
//!     .expect("connected city has a plan");
//! // A plan's quality metrics (Figure 6) are internally consistent.
//! assert!(plan.is_consistent());
//! assert!(plan.walk_time_s() + plan.wait_time_s() <= plan.travel_time_s() + 1e-9);
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod model;
pub mod plan;
pub mod router;

pub use generate::TransitGenConfig;
pub use model::{Line, LineId, LineKind, Schedule, Stop, StopId, TransitNetwork};
pub use plan::{Leg, TripPlan};
pub use router::{TransitRouter, WalkParams};
