//! Multi-leg trip plans and their quality metrics.
//!
//! The Figure 6 experiment compares transport modes on "end-to-end
//! travel time, walking time and waiting time"; the Enhancer mode
//! (§IX.B) additionally reasons about the number of intermediate hops.
//! Both consume the [`TripPlan`] representation defined here.

use xar_geo::GeoPoint;

use crate::model::{LineId, StopId};

/// One leg of a trip plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Leg {
    /// Walk between two points.
    Walk {
        /// Start point.
        from: GeoPoint,
        /// End point.
        to: GeoPoint,
        /// Walking distance, metres.
        dist_m: f64,
        /// Walking duration, seconds.
        duration_s: f64,
    },
    /// Wait at a stop for a vehicle.
    Wait {
        /// The stop waited at.
        stop: StopId,
        /// Waiting duration, seconds.
        duration_s: f64,
    },
    /// Wait at an arbitrary point (e.g. a landmark, for a shared-ride
    /// pick-up produced by the MMTP integration).
    WaitAt {
        /// Where the commuter waits.
        point: GeoPoint,
        /// Waiting duration, seconds.
        duration_s: f64,
    },
    /// Ride a transit line between two stops.
    Transit {
        /// The line ridden.
        line: LineId,
        /// Boarding stop.
        from: StopId,
        /// Alighting stop.
        to: StopId,
        /// Boarding time, absolute seconds.
        board_s: f64,
        /// Alighting time, absolute seconds.
        alight_s: f64,
    },
    /// Ride a shared ride (produced by the MMTP integration, not by the
    /// transit router itself).
    SharedRide {
        /// Pick-up point.
        from: GeoPoint,
        /// Drop-off point.
        to: GeoPoint,
        /// Pick-up time, absolute seconds.
        board_s: f64,
        /// Drop-off time, absolute seconds.
        alight_s: f64,
    },
}

impl Leg {
    /// Duration of the leg in seconds.
    pub fn duration_s(&self) -> f64 {
        match self {
            Leg::Walk { duration_s, .. }
            | Leg::Wait { duration_s, .. }
            | Leg::WaitAt { duration_s, .. } => *duration_s,
            Leg::Transit { board_s, alight_s, .. } | Leg::SharedRide { board_s, alight_s, .. } => {
                alight_s - board_s
            }
        }
    }
}

/// A complete trip plan from origin to destination.
#[derive(Debug, Clone, PartialEq)]
pub struct TripPlan {
    /// Departure time, absolute seconds.
    pub departure_s: f64,
    /// Arrival time, absolute seconds.
    pub arrival_s: f64,
    /// The legs, in order.
    pub legs: Vec<Leg>,
}

impl TripPlan {
    /// End-to-end travel time, seconds.
    pub fn travel_time_s(&self) -> f64 {
        self.arrival_s - self.departure_s
    }

    /// Total walking time, seconds.
    pub fn walk_time_s(&self) -> f64 {
        self.legs
            .iter()
            .filter(|l| matches!(l, Leg::Walk { .. }))
            .map(Leg::duration_s)
            .sum()
    }

    /// Total walking distance, metres.
    pub fn walk_dist_m(&self) -> f64 {
        self.legs
            .iter()
            .filter_map(|l| match l {
                Leg::Walk { dist_m, .. } => Some(*dist_m),
                _ => None,
            })
            .sum()
    }

    /// Total waiting time, seconds.
    pub fn wait_time_s(&self) -> f64 {
        self.legs
            .iter()
            .filter(|l| matches!(l, Leg::Wait { .. } | Leg::WaitAt { .. }))
            .map(Leg::duration_s)
            .sum()
    }

    /// Number of vehicle legs (transit + shared rides).
    pub fn vehicle_legs(&self) -> usize {
        self.legs
            .iter()
            .filter(|l| matches!(l, Leg::Transit { .. } | Leg::SharedRide { .. }))
            .count()
    }

    /// Number of intermediate hops (vehicle-to-vehicle transfers): the
    /// `k` of the Enhancer mode's `C(k+1, 2)` combination count.
    pub fn hops(&self) -> usize {
        self.vehicle_legs().saturating_sub(1)
    }

    /// Indices of legs that make the plan uncomfortable under the
    /// paper's Figure 6 thresholds: "segments with walking distance
    /// exceeding `max_walk_m` or waiting time exceeding `max_wait_s`
    /// for a single segment" are infeasible.
    pub fn infeasible_legs(&self, max_walk_m: f64, max_wait_s: f64) -> Vec<usize> {
        self.legs
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Leg::Walk { dist_m, .. } if *dist_m > max_walk_m => Some(i),
                Leg::Wait { duration_s, .. } | Leg::WaitAt { duration_s, .. }
                    if *duration_s > max_wait_s =>
                {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }

    /// Consistency check: legs are contiguous in time and the totals
    /// match the departure/arrival stamps (used by tests and debug
    /// assertions).
    pub fn is_consistent(&self) -> bool {
        let sum: f64 = self.legs.iter().map(Leg::duration_s).sum();
        (sum - self.travel_time_s()).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64) -> GeoPoint {
        GeoPoint::new(lat, -74.0)
    }

    fn sample() -> TripPlan {
        TripPlan {
            departure_s: 1000.0,
            arrival_s: 2500.0,
            legs: vec![
                Leg::Walk { from: p(40.70), to: p(40.701), dist_m: 140.0, duration_s: 100.0 },
                Leg::Wait { stop: StopId(3), duration_s: 200.0 },
                Leg::Transit { line: LineId(1), from: StopId(3), to: StopId(7), board_s: 1300.0, alight_s: 2100.0 },
                Leg::Wait { stop: StopId(7), duration_s: 100.0 },
                Leg::Transit { line: LineId(2), from: StopId(7), to: StopId(9), board_s: 2200.0, alight_s: 2400.0 },
                Leg::Walk { from: p(40.72), to: p(40.721), dist_m: 140.0, duration_s: 100.0 },
            ],
        }
    }

    #[test]
    fn metrics() {
        let t = sample();
        assert_eq!(t.travel_time_s(), 1500.0);
        assert_eq!(t.walk_time_s(), 200.0);
        assert_eq!(t.walk_dist_m(), 280.0);
        assert_eq!(t.wait_time_s(), 300.0);
        assert_eq!(t.vehicle_legs(), 2);
        assert_eq!(t.hops(), 1);
        assert!(t.is_consistent());
    }

    #[test]
    fn infeasible_legs_by_threshold() {
        let t = sample();
        assert!(t.infeasible_legs(1_000.0, 600.0).is_empty());
        assert_eq!(t.infeasible_legs(100.0, 600.0), vec![0, 5]);
        assert_eq!(t.infeasible_legs(1_000.0, 150.0), vec![1]);
    }

    #[test]
    fn empty_plan_degenerates() {
        let t = TripPlan { departure_s: 10.0, arrival_s: 10.0, legs: vec![] };
        assert_eq!(t.travel_time_s(), 0.0);
        assert_eq!(t.hops(), 0);
        assert!(t.is_consistent());
    }

    #[test]
    fn shared_ride_counts_as_vehicle_leg() {
        let t = TripPlan {
            departure_s: 0.0,
            arrival_s: 100.0,
            legs: vec![Leg::SharedRide { from: p(40.70), to: p(40.71), board_s: 0.0, alight_s: 100.0 }],
        };
        assert_eq!(t.vehicle_legs(), 1);
        assert_eq!(t.hops(), 0);
    }
}
