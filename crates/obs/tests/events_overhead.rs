//! Overhead guard for the wide-event sink (ISSUE 9 acceptance).
//!
//! The contract mirrors the flight recorder's: with the sink **off** —
//! the startup state — [`xar_obs::events::emit`] is one relaxed atomic
//! load plus a branch, so an emit-heavy loop performs **zero** heap
//! allocations and costs under 50 ns per event in release builds. With
//! the sink **on**, emits stay lock-free per event (thread-local
//! buffering) and the accounting stays conserved.
//!
//! Own integration binary: the `#[global_allocator]` must not leak
//! into other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

use xar_obs::events::{self, EventRecord};

thread_local! {
    /// Allocations made by *this* thread (the libtest main thread
    /// allocates concurrently; a process-global count is flaky).
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Tests share the process-global sink.
static GATE: Mutex<()> = Mutex::new(());

const ITERS: u64 = 1_000_000;

fn record(i: u64) -> EventRecord {
    EventRecord { outcome: "created", reason: "capacity_full", ..EventRecord::new(i) }
}

#[test]
fn disabled_emit_adds_zero_allocations_and_stays_cheap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Force the sink's lazy init before measuring, then assert the
    // startup state.
    assert!(!events::is_enabled(), "event sink must start disabled");

    // Baseline: empty black_box loop.
    let t0 = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let empty_ns = t0.elapsed().as_nanos().max(1) as u64;

    let before = thread_allocs();
    let t0 = Instant::now();
    for i in 0..ITERS {
        events::emit(black_box(record(i)));
    }
    let emit_ns = t0.elapsed().as_nanos().max(1) as u64;
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "disabled emit loop allocated {} times over {ITERS} events",
        after - before,
    );

    let per_emit = emit_ns / ITERS;
    // The 50 ns acceptance bound is a release-build property; debug
    // builds don't inline the disabled check, so there the guard is a
    // loose multiple of the empty loop (same shape as profile_overhead).
    if cfg!(debug_assertions) {
        assert!(
            emit_ns < empty_ns.saturating_mul(400),
            "disabled emit loop took {emit_ns} ns vs empty loop {empty_ns} ns (> 400x)",
        );
    } else {
        assert!(per_emit < 50, "disabled emit costs {per_emit} ns, acceptance bound is 50 ns");
    }
}

#[test]
fn enabled_emits_conserve_accounting_across_threads() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    events::configure(1024);
    events::set_enabled(true);
    let threads = 4u64;
    let per_thread = 1000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for i in 0..per_thread {
                    events::emit(record(t * per_thread + i));
                }
                events::flush_thread();
            });
        }
    });
    events::set_enabled(false);
    let snap = events::snapshot();
    assert_eq!(snap.emitted, threads * per_thread);
    assert_eq!(snap.kept() + snap.dropped, snap.emitted, "drop accounting must conserve");
    assert_eq!(snap.kept(), 1024, "ring holds exactly its capacity");
    events::configure(events::DEFAULT_CAPACITY);
}
