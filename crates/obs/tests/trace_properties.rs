//! Property tests for the flight recorder and its Chrome export.
//!
//! Three laws, each over randomized trace shapes:
//!
//! 1. **Conservation** — however small the ring and whatever the
//!    per-trace shapes, every published event is either still in the
//!    ring or counted in `dropped_events`. Wrap-around loses data by
//!    design, never accounting.
//! 2. **Per-thread monotonicity** — events that share a thread lane
//!    carry non-decreasing timestamps, so Chrome's per-tid `B`/`E`
//!    stack discipline can always be replayed.
//! 3. **Export round-trip** — `export_chrome` → `parse_chrome` →
//!    `Timeline::build` reconstructs exactly the nesting that was
//!    recorded: every `B` has its `E`, durations are non-negative, and
//!    children lie inside their parents.

use proptest::prelude::*;
use xar_obs::chrome::{export_chrome, parse_chrome, SpanNode, Timeline};
use xar_obs::trace::Recorder;
use xar_obs::TraceConfig;

/// Record one trace per shape entry: each `shape[i]` child spans, each
/// child with `shape[i] % 3` nested grandchildren.
fn record_traces(rec: &std::sync::Arc<Recorder>, shapes: &[Vec<usize>]) {
    for shape in shapes {
        let mut root = rec.start_root("request");
        root.attr("children", shape.len() as u64);
        for &grands in shape {
            let mut child = rec.child_span("child");
            child.attr("grands", grands as u64);
            for _ in 0..grands {
                let _g = rec.child_span("grand");
            }
        }
    }
}

/// Conceptual event count for a shape: root B/E + B/E per span.
fn conceptual_events(shapes: &[Vec<usize>]) -> usize {
    shapes
        .iter()
        .map(|s| 2 + s.iter().map(|&g| 2 + 2 * g).sum::<usize>())
        .sum()
}

proptest! {
    /// Law 1: ring contents + dropped counter account for every event
    /// ever published, for any ring size down to pathological ones.
    #[test]
    fn wraparound_conserves_event_accounting(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 0..6), 1..20),
        capacity in 8usize..200,
    ) {
        let rec = Recorder::new(TraceConfig {
            capacity_events: capacity,
            max_events_per_trace: 32,
            ..TraceConfig::keep_all()
        });
        record_traces(&rec, &shapes);
        let snap = rec.snapshot();
        let stats = rec.stats();
        let in_ring: usize = snap.traces.iter().map(|t| t.events.len()).sum();
        prop_assert_eq!(
            in_ring + stats.dropped_events as usize,
            conceptual_events(&shapes),
            "ring {} + dropped {} != published",
            in_ring,
            stats.dropped_events
        );
        prop_assert_eq!(stats.started_traces as usize, shapes.len());
        // Truncation must never unbalance a kept trace: whatever the
        // per-trace budget clipped, every Begin still has its End (a
        // B≠E trace is unreconstructable downstream).
        for t in &snap.traces {
            let b = t.events.iter().filter(|e| e.kind == xar_obs::trace::EventKind::Begin).count();
            let e = t.events.iter().filter(|e| e.kind == xar_obs::trace::EventKind::End).count();
            prop_assert_eq!(b, e, "unbalanced kept trace {}", t.trace);
        }
    }

    /// Law 2: within each thread lane, timestamps never go backwards.
    #[test]
    fn per_thread_timestamps_monotone(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 0..6), 1..10),
    ) {
        let rec = Recorder::new(TraceConfig::keep_all());
        record_traces(&rec, &shapes);
        let snap = rec.snapshot();
        for t in &snap.traces {
            let mut last: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for ev in &t.events {
                if let Some(prev) = last.insert(ev.tid, ev.ts_ns) {
                    prop_assert!(
                        ev.ts_ns >= prev,
                        "tid {} went backwards: {} after {}",
                        ev.tid, ev.ts_ns, prev
                    );
                }
            }
        }
    }

    /// Law 3: the Chrome export round-trips the recorded nesting.
    #[test]
    fn chrome_export_round_trips_nesting(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 0..6), 1..10),
    ) {
        let rec = Recorder::new(TraceConfig::keep_all());
        record_traces(&rec, &shapes);
        let json = export_chrome(&rec.snapshot());
        let parsed = parse_chrome(&json).expect("export must parse");
        prop_assert!(parsed.has_drop_counter);
        prop_assert_eq!(parsed.kept_traces as usize, shapes.len());

        // Every B has a matching E (same span id), pairwise.
        let mut open: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for ev in &parsed.events {
            match ev.ph.as_str() {
                "B" => *open.entry(ev.span).or_insert(0) += 1,
                "E" => {
                    let n = open.entry(ev.span).or_insert(0);
                    prop_assert!(*n > 0, "E without B for span {}", ev.span);
                    *n -= 1;
                }
                _ => {}
            }
        }
        prop_assert!(
            open.values().all(|&n| n == 0),
            "unclosed spans in export"
        );

        // Timelines reconstruct the exact generated tree.
        let timelines = Timeline::build(&parsed);
        prop_assert_eq!(timelines.len(), shapes.len());
        // Sort both sides by recording order (trace ids ascend).
        let mut tls: Vec<&Timeline> = timelines.iter().collect();
        tls.sort_by_key(|t| t.trace);
        for (tl, shape) in tls.iter().zip(shapes.iter()) {
            prop_assert_eq!(&tl.root.name, "request");
            prop_assert_eq!(tl.root.children.len(), shape.len());
            for (child, &grands) in tl.root.children.iter().zip(shape.iter()) {
                prop_assert_eq!(&child.name, "child");
                prop_assert_eq!(child.children.len(), grands);
            }
            check_durations(&tl.root)?;
        }
    }
}

/// Recursive duration sanity: non-negative, self ≤ total, children
/// inside the parent window.
fn check_durations(node: &SpanNode) -> Result<(), TestCaseError> {
    prop_assert!(node.dur_us >= 0.0, "negative duration on {}", node.name);
    prop_assert!(node.self_us >= 0.0, "negative self-time on {}", node.name);
    prop_assert!(node.self_us <= node.dur_us + 1e-6);
    for c in &node.children {
        // Timestamps are µs with sub-µs resolution loss; allow 1 µs.
        prop_assert!(c.start_us >= node.start_us - 1.0);
        prop_assert!(c.start_us + c.dur_us <= node.start_us + node.dur_us + 1.0);
        check_durations(c)?;
    }
    Ok(())
}
