//! Property tests for the histogram bucket scheme and registry, plus a
//! multi-writer hammer test for the lock-free record path.

use std::sync::Arc;

use proptest::prelude::*;
use xar_obs::hist::{bucket_bounds, bucket_index};
use xar_obs::{Histogram, Registry};

proptest! {
    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_contains_value(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {idx})");
    }

    /// Bucket index is monotone: larger values never map to earlier
    /// buckets.
    #[test]
    fn bucket_index_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Bucket relative width is bounded by 1/16 of the lower bound, so
    /// any percentile read from a bucket midpoint is within 6.25 % of
    /// the true sample.
    #[test]
    fn bucket_relative_error_bound(v in 1u64..u64::MAX / 2) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        let width = hi - lo;
        prop_assert!(
            width as f64 <= lo as f64 / 16.0 + 1.0,
            "bucket [{lo}, {hi}] too wide for {v}"
        );
    }

    /// Record → percentile round trip: recording one value and reading
    /// any percentile returns a value within the bucket error bound
    /// (6.25 % relative, ±1 absolute for small values).
    #[test]
    fn record_percentile_round_trip(v in 0u64..1 << 62) {
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.max, v);
        for got in [s.p50, s.p90, s.p99] {
            let err = got.abs_diff(v) as f64;
            prop_assert!(
                err <= v as f64 / 16.0 + 1.0,
                "percentile {} too far from recorded {}", got, v
            );
        }
    }

    /// Percentiles are monotone in rank and bounded by the exact max.
    #[test]
    fn percentiles_ordered_and_bounded(vals in proptest::collection::vec(0u64..1 << 40, 1..200)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        let true_max = vals.iter().copied().max().unwrap();
        prop_assert_eq!(s.count, vals.len() as u64);
        prop_assert_eq!(s.max, true_max);
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        let true_sum: u64 = vals.iter().sum();
        prop_assert_eq!(s.sum, true_sum);
    }

    /// Snapshot algebra conserves mass: for any split of a sample
    /// stream into "earlier" and "later", `later ∪ earlier` recorded
    /// into one histogram equals `snapshot.delta(earlier_snapshot)`
    /// merged back with the earlier snapshot — counts and sums add up
    /// exactly on both sides.
    #[test]
    fn delta_and_merge_conserve_count_and_sum(
        earlier in proptest::collection::vec(0u64..1 << 40, 0..100),
        later in proptest::collection::vec(0u64..1 << 40, 0..100),
    ) {
        let h = Histogram::new();
        for &v in &earlier {
            h.record(v);
        }
        let s_earlier = h.snapshot();
        for &v in &later {
            h.record(v);
        }
        let s_total = h.snapshot();

        let d = s_total.delta(&s_earlier);
        prop_assert_eq!(d.count, later.len() as u64, "delta isolates the interval");
        prop_assert_eq!(d.sum, later.iter().sum::<u64>());

        let merged = d.merge(&s_earlier);
        prop_assert_eq!(merged.count, s_total.count);
        prop_assert_eq!(merged.sum, s_total.sum);
        prop_assert_eq!(merged.p50, s_total.p50, "same cells ⇒ same percentiles");
        prop_assert_eq!(merged.p99, s_total.p99);
    }

    /// Delta and merge keep percentiles monotone and bounded: p50 ≤
    /// p90 ≤ p99 ≤ max holds for any interval delta and any merge.
    #[test]
    fn delta_and_merge_percentiles_stay_monotone(
        a in proptest::collection::vec(0u64..1 << 40, 1..80),
        b in proptest::collection::vec(0u64..1 << 40, 1..80),
    ) {
        let h = Histogram::new();
        for &v in &a {
            h.record(v);
        }
        let s_a = h.snapshot();
        for &v in &b {
            h.record(v);
        }
        let d = h.snapshot().delta(&s_a);
        for s in [&d, &d.merge(&s_a)] {
            prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max,
                "p50={} p90={} p99={} max={}", s.p50, s.p90, s.p99, s.max);
        }
        // The interval max is never above the cumulative max, and no
        // interval mass sits above its bucket's upper bound (frac_above
        // works on bucket midpoints, so compare at bucket resolution).
        prop_assert!(d.max <= h.snapshot().max);
        let (_, hi) = bucket_bounds(bucket_index(d.max));
        prop_assert_eq!(d.frac_above(hi), 0.0, "no mass above the interval max bucket");
    }
}

/// 8 concurrent writers, no lost increments: the wait-free record path
/// must account for every sample.
#[test]
fn hammer_no_lost_increments() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                // Distinct value streams per writer, spanning several
                // octaves, so writers collide on some buckets and not
                // on others.
                for i in 0..PER_WRITER {
                    h.record(i.wrapping_mul(2 * w as u64 + 1) % 1_000_000);
                }
            });
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count, (WRITERS as u64) * PER_WRITER, "lost increments");
    assert!(s.max < 1_000_000);
}

/// Same hammer against a registry: concurrent get-or-create of the same
/// named metrics plus concurrent recording.
#[test]
fn hammer_registry_concurrent_access() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 10_000;
    let reg = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let hist = reg.histogram("hammer.lat_ns");
                let ctr = reg.counter("hammer.ops");
                for i in 0..PER_WRITER {
                    hist.record(i);
                    ctr.inc();
                }
            });
        }
    });
    assert_eq!(reg.counter("hammer.ops").get(), (WRITERS as u64) * PER_WRITER);
    assert_eq!(reg.histogram("hammer.lat_ns").count(), (WRITERS as u64) * PER_WRITER);
}
