//! Overhead guard for the flight recorder's disabled path.
//!
//! The contract (DESIGN.md §5c): with the global recorder disabled —
//! its startup state — every `trace::span()` / `trace::root()` /
//! `trace::instant()` call is one relaxed atomic load plus a branch.
//! In particular it must never allocate, or the "free when off"
//! promise silently rots. A counting global allocator makes that
//! claim a hard test, and a coarse wall-clock bound keeps the cost
//! within a small multiple of an empty `black_box` loop.
//!
//! This lives in its own integration binary because the
//! `#[global_allocator]` would otherwise count every other test's
//! allocations, and because the global recorder must stay untouched
//! (unit tests elsewhere enable private recorders only).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Instant;

thread_local! {
    /// Allocations made by *this* thread. Per-thread because the
    /// libtest harness's main thread allocates concurrently with the
    /// test thread; a process-global count is flaky by construction.
    /// `Cell<u64>` is const-initialised with no destructor, so the
    /// hook never allocates or touches TLS teardown.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// System allocator with a per-thread allocation counter bolted on.
struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

const ITERS: u64 = 1_000_000;

#[test]
fn disabled_path_is_allocation_free_and_cheap() {
    // The global recorder starts disabled; this test never enables it.
    assert!(!xar_obs::trace::recorder().enabled());

    // Warm up: the first call initialises the recorder OnceLock and the
    // thread-locals, which may allocate once.
    {
        let _s = xar_obs::trace::span("warmup");
        xar_obs::trace::instant("warmup", xar_obs::AttrList::new());
    }

    // Baseline: empty black_box loop.
    let t0 = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let empty_ns = t0.elapsed().as_nanos().max(1) as u64;

    // 1M disabled spans + instants: zero allocations.
    let before = thread_allocs();
    let t0 = Instant::now();
    for i in 0..ITERS {
        let s = xar_obs::trace::span("bench");
        black_box(&s);
        black_box(i);
    }
    let span_ns = t0.elapsed().as_nanos().max(1) as u64;
    for _ in 0..ITERS {
        xar_obs::trace::instant("bench", xar_obs::AttrList::new());
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "disabled trace::span/instant allocated {} times over {} iterations",
        after - before,
        2 * ITERS,
    );

    // Timing guard, deliberately loose (CI machines are noisy; debug
    // builds do not inline the disabled check). The point is to catch a
    // regression that makes the disabled path do real work — a lock, a
    // syscall, a clock read — not to benchmark it; the criterion
    // harness (`cargo bench -p xar-bench --bench trace_overhead`) does
    // the precise measurement.
    let factor = if cfg!(debug_assertions) { 400 } else { 50 };
    assert!(
        span_ns < empty_ns.saturating_mul(factor),
        "disabled span loop took {span_ns} ns vs empty loop {empty_ns} ns (> {factor}x)",
    );

    // And nothing was recorded.
    let stats = xar_obs::trace::recorder().stats();
    assert_eq!(stats.started_traces, 0);
    assert_eq!(stats.kept_traces, 0);
}
