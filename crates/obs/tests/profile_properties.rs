//! Property tests for the profile export formats: any profile built
//! from arbitrary stack-path entries must round-trip **exactly**
//! through both its own serializers and its own parsers — collapsed
//! stacks (flamegraph.pl / inferno) and speedscope's sampled JSON.
//! (ISSUE 7 acceptance: both formats round-trip through our own
//! parsers, property-tested.)

use std::collections::BTreeMap;

use proptest::prelude::*;
use xar_obs::profile::{parse_collapsed, parse_speedscope, Profile};

/// Frame-name strategy: plain identifier-ish names (real span names are
/// `&'static str` literals like `search` / `snapshot.publish`), plus a
/// few with characters the collapsed format must sanitize.
fn frame_name() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
    let ident = (0usize..26, proptest::collection::vec(0usize..CHARS.len(), 0..12)).prop_map(
        |(first, rest)| {
            let mut s = String::new();
            s.push(CHARS[first] as char);
            for i in rest {
                s.push(CHARS[i] as char);
            }
            s
        },
    );
    prop_oneof![
        8 => ident,
        1 => Just("with space".to_string()),
        1 => Just("semi;colon".to_string()),
    ]
}

/// A set of weighted stack paths: depth 1..=6, weight ≥ 1 (zero-weight
/// paths are dropped by the exporter, so the canonical form excludes
/// them).
fn entries() -> impl Strategy<Value = Vec<(Vec<String>, u64)>> {
    proptest::collection::vec(
        (proptest::collection::vec(frame_name(), 1..6), 1u64..1 << 40),
        1..20,
    )
}

/// The canonical form both sides are compared in: summed weight per
/// *sanitized* path (duplicate generated paths merge in the profile,
/// and sanitization may alias `with space` with `with_space`).
fn canon(entries: &[(Vec<String>, u64)]) -> BTreeMap<Vec<String>, u64> {
    let mut m = BTreeMap::new();
    for (path, w) in entries {
        let path: Vec<String> = path
            .iter()
            .map(|f| f.replace([';', ' ', '\n', '\t', '\r'], "_"))
            .collect();
        *m.entry(path).or_insert(0) += w;
    }
    m
}

proptest! {
    /// collapsed: serialize → parse reproduces the exact per-path
    /// self-time multiset.
    #[test]
    fn collapsed_round_trips_exactly(entries in entries()) {
        let profile = Profile::from_entries(&entries);
        let text = profile.to_collapsed();
        let parsed = parse_collapsed(&text).expect("own exposition parses");
        prop_assert_eq!(canon(&parsed), canon(&entries));
    }

    /// speedscope: serialize → parse reproduces the exact per-path
    /// self-time multiset.
    #[test]
    fn speedscope_round_trips_exactly(entries in entries()) {
        let profile = Profile::from_entries(&entries);
        let json = profile.to_speedscope();
        let parsed = parse_speedscope(&json).expect("own speedscope parses");
        prop_assert_eq!(canon(&parsed), canon(&entries));
    }

    /// The two formats agree with each other: exporting the same
    /// profile both ways and re-importing yields identical profiles
    /// (total and per-path weights).
    #[test]
    fn formats_agree(entries in entries()) {
        let profile = Profile::from_entries(&entries);
        let via_collapsed =
            Profile::from_entries(&parse_collapsed(&profile.to_collapsed()).unwrap());
        let via_speedscope =
            Profile::from_entries(&parse_speedscope(&profile.to_speedscope()).unwrap());
        prop_assert_eq!(via_collapsed.total_ns(), via_speedscope.total_ns());
        prop_assert_eq!(profile.total_ns(), via_collapsed.total_ns());
        prop_assert_eq!(
            canon(&via_collapsed.collapsed_entries()),
            canon(&via_speedscope.collapsed_entries())
        );
    }

    /// Totals are conserved: the profile's total self-time equals the
    /// sum of the input weights (u64 arithmetic, no float drift).
    #[test]
    fn total_is_sum_of_weights(entries in entries()) {
        let profile = Profile::from_entries(&entries);
        let expected: u64 = entries.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(profile.total_ns(), expected);
    }
}
