//! Overhead guard for the allocation profiler (ISSUE 7 acceptance).
//!
//! The whole process runs under [`xar_obs::profile::ProfilingAlloc`]
//! (as the `xar` binary does), wrapped in a counting allocator. The
//! contract: with profiling **off** — the startup state — the hook is
//! one relaxed atomic load per allocation and a disabled `trace::span`
//! stays a relaxed load plus a branch, so a span-heavy loop performs
//! **zero** heap allocations and costs well under 50 ns per span in
//! release builds. With profiling **on**, attribution itself is
//! allocation-free (static atomic table + thread-local frame stack)
//! and lands bytes on the innermost open span.
//!
//! Own integration binary: the `#[global_allocator]` and the global
//! recorder state must not leak into other tests.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

use xar_obs::profile::ProfilingAlloc;

thread_local! {
    /// Allocations made by *this* thread. Per-thread because the
    /// libtest harness's main thread allocates concurrently with the
    /// test thread; a process-global count is flaky by construction.
    /// `Cell<u64>` is const-initialised with no destructor, so the
    /// hook never allocates or touches TLS teardown.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// The profiling allocator with a per-thread allocation counter bolted
/// on top, exactly as deployed in the `xar` binary (modulo the counter).
struct CountingProfilingAlloc {
    inner: ProfilingAlloc,
}

#[global_allocator]
static GLOBAL: CountingProfilingAlloc =
    CountingProfilingAlloc { inner: ProfilingAlloc::system() };

unsafe impl GlobalAlloc for CountingProfilingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { self.inner.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { self.inner.realloc(ptr, layout, new_size) }
    }
}

/// Tests share the process-global recorder and alloc table.
static GATE: Mutex<()> = Mutex::new(());

const ITERS: u64 = 1_000_000;

#[test]
fn disabled_path_adds_zero_allocations_and_stays_cheap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!xar_obs::trace::recorder().enabled(), "recorder must start disabled");
    assert!(!xar_obs::profile::alloc_profiling_enabled(), "profiling must start disabled");

    // Warm up once: thread-local init may allocate.
    {
        let _s = xar_obs::trace::span("warmup");
        black_box(Box::new(1u8));
    }

    // Baseline: empty black_box loop.
    let t0 = Instant::now();
    for i in 0..ITERS {
        black_box(i);
    }
    let empty_ns = t0.elapsed().as_nanos().max(1) as u64;

    let before = thread_allocs();
    let t0 = Instant::now();
    for i in 0..ITERS {
        let s = xar_obs::trace::span("bench");
        black_box(&s);
        black_box(i);
    }
    let span_ns = t0.elapsed().as_nanos().max(1) as u64;
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "disabled profiling span loop allocated {} times over {ITERS} spans",
        after - before,
    );

    let per_span = span_ns / ITERS;
    // The hard acceptance bound is a release-build property; debug
    // builds don't inline the disabled check, so there the guard is a
    // loose multiple of the empty loop (same shape as tests/overhead.rs).
    if cfg!(debug_assertions) {
        assert!(
            span_ns < empty_ns.saturating_mul(400),
            "disabled span loop took {span_ns} ns vs empty loop {empty_ns} ns (> 400x)",
        );
    } else {
        assert!(per_span < 50, "disabled span costs {per_span} ns, acceptance bound is 50 ns");
    }
}

#[test]
fn enabled_attribution_is_allocation_free_and_lands_on_innermost_span() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let rec = xar_obs::trace::recorder();
    rec.configure(xar_obs::TraceConfig::keep_all());
    rec.set_enabled(true);
    xar_obs::profile::reset_alloc_profile();
    xar_obs::profile::set_alloc_profiling(true);

    {
        let _root = xar_obs::trace::root("outer_phase");
        {
            let _inner = xar_obs::trace::span("inner_phase");
            // One clearly-attributable allocation inside the innermost
            // span. The *hook* must not allocate while recording it:
            // exactly one allocation total.
            let before = thread_allocs();
            black_box(vec![7u8; 4096]);
            let after = thread_allocs();
            assert_eq!(after - before, 1, "attribution hook itself allocated");
        }
    }

    xar_obs::profile::set_alloc_profiling(false);
    rec.set_enabled(false);
    let by_span = xar_obs::profile::alloc_profile();
    let inner = by_span
        .iter()
        .find(|a| a.name == "inner_phase")
        .expect("inner_phase attributed");
    assert!(inner.bytes >= 4096, "inner_phase got {} bytes", inner.bytes);
    assert!(inner.allocs >= 1);
    assert!(
        !by_span.iter().any(|a| a.name == "outer_phase" && a.bytes >= 4096),
        "the 4096-byte block must land on the innermost span, not the outer: {by_span:?}",
    );
    xar_obs::profile::reset_alloc_profile();
}
