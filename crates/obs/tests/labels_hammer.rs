//! Concurrency hammer for labeled-metric interning.
//!
//! The label contract (DESIGN.md §5d): interning is get-or-create
//! under the registry lock, but *recording* happens through `Arc`
//! handles that never touch the lock. So N threads racing to create
//! the same series must converge on one metric (counts conserved, one
//! series in the snapshot), distinct label sets must land in distinct
//! series, and recording must proceed while another thread is stuck
//! creating new series (i.e. holding the write lock).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xar_obs::{MetricSnapshot, Registry};

const THREADS: usize = 8;
const ROUNDS: usize = 2_000;

#[test]
fn same_label_set_from_many_threads_is_one_metric() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                for i in 0..ROUNDS {
                    // Alternate pair order: interning is order-insensitive.
                    let c = if (t + i) % 2 == 0 {
                        reg.counter_with("hammer.ops", &[("tier", "t1"), ("cluster", "b2")])
                    } else {
                        reg.counter_with("hammer.ops", &[("cluster", "b2"), ("tier", "t1")])
                    };
                    c.inc();
                }
            });
        }
    });
    let series: Vec<_> = reg.series().into_iter().filter(|s| s.name == "hammer.ops").collect();
    assert_eq!(series.len(), 1, "racing creators must intern to one series");
    assert_eq!(
        series[0].value,
        MetricSnapshot::Counter((THREADS * ROUNDS) as u64),
        "every increment must land on the single interned counter"
    );
}

#[test]
fn distinct_label_sets_get_distinct_metrics() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let tier = format!("t{t}");
                let c = reg.counter_with("hammer.sharded", &[("tier", &tier)]);
                for _ in 0..ROUNDS {
                    c.inc();
                }
            });
        }
    });
    let series: Vec<_> = reg.series().into_iter().filter(|s| s.name == "hammer.sharded").collect();
    assert_eq!(series.len(), THREADS);
    for s in &series {
        assert_eq!(s.value, MetricSnapshot::Counter(ROUNDS as u64), "{:?}", s.labels);
    }
}

#[test]
fn recording_needs_no_lock_while_creators_churn() {
    // One thread keeps creating brand-new series (hammering the write
    // lock); recorder threads holding pre-resolved handles must still
    // make progress and conserve counts. This deadlocks/fails if
    // recording ever went through the registry lock.
    let reg = Arc::new(Registry::new());
    let h = reg.histogram_with("hammer.lat_ns", &[("tier", "t2")]);
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = format!("v{}", i % 48);
                    reg.counter_with("hammer.churn", &[("i", &v)]).inc();
                    i += 1;
                }
            });
        }
        let mut recorders = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            recorders.push(s.spawn(move || {
                for v in 0..ROUNDS as u64 {
                    h.record(v);
                }
            }));
        }
        for r in recorders {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(h.count(), 4 * ROUNDS as u64);
    // Lookup-after-setup returns the same interned handle.
    assert!(Arc::ptr_eq(&h, &reg.histogram_with("hammer.lat_ns", &[("tier", "t2")])));
}
