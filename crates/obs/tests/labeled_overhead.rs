//! Overhead guard for labeled-metric lookup after setup.
//!
//! The label contract (DESIGN.md §5d): once a series exists, a
//! `histogram_with` / `counter_with` call with an equal label set is a
//! read-lock lookup that performs **zero allocations** — comparisons
//! run against the borrowed query pairs, and the returned handle is an
//! `Arc` clone. Recording through a held handle is the same wait-free
//! path as an unlabeled metric. A counting global allocator turns both
//! claims into hard tests (in its own integration binary so no other
//! test's allocations are counted).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

thread_local! {
    /// Allocations made by *this* thread. The counter must be
    /// per-thread: the libtest harness's main thread allocates
    /// concurrently with the test thread (timers, bookkeeping), so a
    /// process-global count is flaky by construction. `Cell<u64>` is
    /// const-initialised and has no destructor, so the hook itself
    /// never allocates or touches TLS teardown.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

const ITERS: u64 = 100_000;

#[test]
fn labeled_lookup_after_setup_is_allocation_free() {
    let reg = xar_obs::Registry::new();
    // Setup: creating the series allocates (interning, map entry).
    let handle = reg.histogram_with("ops.search_ns", &[("tier", "t2"), ("cluster", "b5")]);
    let counter = reg.counter_with("ops.requests", &[("outcome", "booked")]);
    handle.record(1);
    counter.inc();

    // Steady state: lookups with an equal label set (either pair
    // order) and recording through held handles never allocate.
    let before = thread_allocs();
    for i in 0..ITERS {
        let h = if i % 2 == 0 {
            reg.histogram_with("ops.search_ns", &[("tier", "t2"), ("cluster", "b5")])
        } else {
            reg.histogram_with("ops.search_ns", &[("cluster", "b5"), ("tier", "t2")])
        };
        h.record(i);
        black_box(&h);
        let c = reg.counter_with("ops.requests", &[("outcome", "booked")]);
        c.inc();
        black_box(&c);
    }
    for i in 0..ITERS {
        handle.record(i);
        counter.inc();
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "labeled lookup-after-setup allocated {} times over {} iterations",
        after - before,
        2 * ITERS,
    );
    assert_eq!(handle.count(), 1 + 2 * ITERS);
    assert_eq!(counter.get(), 1 + 2 * ITERS);
}
