//! Overhead guard for labeled-metric lookup after setup.
//!
//! The label contract (DESIGN.md §5d): once a series exists, a
//! `histogram_with` / `counter_with` call with an equal label set is a
//! read-lock lookup that performs **zero allocations** — comparisons
//! run against the borrowed query pairs, and the returned handle is an
//! `Arc` clone. Recording through a held handle is the same wait-free
//! path as an unlabeled metric. A counting global allocator turns both
//! claims into hard tests (in its own integration binary so no other
//! test's allocations are counted).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc {
    allocs: AtomicU64,
}

static ALLOCS: CountingAlloc = CountingAlloc { allocs: AtomicU64::new(0) };

#[global_allocator]
static GLOBAL: &CountingAlloc = &ALLOCS;

unsafe impl GlobalAlloc for &'static CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

const ITERS: u64 = 100_000;

#[test]
fn labeled_lookup_after_setup_is_allocation_free() {
    let reg = xar_obs::Registry::new();
    // Setup: creating the series allocates (interning, map entry).
    let handle = reg.histogram_with("ops.search_ns", &[("tier", "t2"), ("cluster", "b5")]);
    let counter = reg.counter_with("ops.requests", &[("outcome", "booked")]);
    handle.record(1);
    counter.inc();

    // Steady state: lookups with an equal label set (either pair
    // order) and recording through held handles never allocate.
    let before = ALLOCS.allocs.load(Ordering::Relaxed);
    for i in 0..ITERS {
        let h = if i % 2 == 0 {
            reg.histogram_with("ops.search_ns", &[("tier", "t2"), ("cluster", "b5")])
        } else {
            reg.histogram_with("ops.search_ns", &[("cluster", "b5"), ("tier", "t2")])
        };
        h.record(i);
        black_box(&h);
        let c = reg.counter_with("ops.requests", &[("outcome", "booked")]);
        c.inc();
        black_box(&c);
    }
    for i in 0..ITERS {
        handle.record(i);
        counter.inc();
    }
    let after = ALLOCS.allocs.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "labeled lookup-after-setup allocated {} times over {} iterations",
        after - before,
        2 * ITERS,
    );
    assert_eq!(handle.count(), 1 + 2 * ITERS);
    assert_eq!(counter.get(), 1 + 2 * ITERS);
}
