//! The named-metric registry.
//!
//! A [`Registry`] hands out `Arc` handles to counters, gauges and
//! histograms. Hot paths clone the handle once at setup and then
//! record through relaxed atomics — the registry lock is only touched
//! at registration and snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::JsonWriter;

/// A monotonically increasing relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add to the value (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram percentile summary.
    Histogram(HistogramSnapshot),
}

/// A named-metric table: counters, gauges and histograms keyed by a
/// dotted name (convention: `<subsystem>.<metric>_<unit>`, e.g.
/// `engine.search_ns`).
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.lock_read().len()).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.lock_read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.lock_read().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.lock_read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        self.lock_read()
            .iter()
            .map(|(name, m)| {
                let snap = match m {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Snapshot every metric as a deterministic JSON object.
    ///
    /// Schema: `{"<name>": <u64>}` for counters, `{"<name>": <i64>}`
    /// for gauges, and for histograms
    /// `{"<name>": {"count":u64,"sum":u64,"mean":f64,"p50":u64,
    /// "p90":u64,"p99":u64,"max":u64}}`.
    pub fn snapshot_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (name, snap) in self.snapshot() {
            w.key(&name);
            match snap {
                MetricSnapshot::Counter(v) => w.number_u64(v),
                MetricSnapshot::Gauge(v) => w.number_i64(v),
                MetricSnapshot::Histogram(h) => write_hist_json(&mut w, &h),
            }
        }
        w.end_object();
        w.finish()
    }
}

/// Write one histogram snapshot as a JSON object (shared with the
/// simulator's report dump).
pub(crate) fn write_hist_json(w: &mut JsonWriter, h: &HistogramSnapshot) {
    w.begin_object();
    w.key("count");
    w.number_u64(h.count);
    w.key("sum");
    w.number_u64(h.sum);
    w.key("mean");
    w.number_f64(h.mean);
    w.key("p50");
    w.number_u64(h.p50);
    w.key("p90");
    w.number_u64(h.p90);
    w.key("p99");
    w.number_u64(h.p99);
    w.key("max");
    w.number_u64(h.max);
    w.end_object();
}

/// The process-wide registry, for subsystems (like the road network's
/// shortest-path engines) that have no natural owner to hang a
/// registry off.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("ops").get(), 3);
        let g = r.gauge("depth");
        g.set(-4);
        g.add(1);
        assert_eq!(r.gauge("depth").get(), -3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        let _ = r.histogram("x");
    }

    #[test]
    fn snapshot_json_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(7);
        r.gauge("c.level").set(-1);
        r.histogram("a.lat_ns").record(100);
        let json = r.snapshot_json();
        let a = json.find("\"a.lat_ns\"").expect("histogram present");
        let b = json.find("\"b.count\":7").expect("counter present");
        let c = json.find("\"c.level\":-1").expect("gauge present");
        assert!(a < b && b < c, "keys not sorted: {json}");
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global").inc();
        assert!(global().counter("test.global").get() >= 1);
    }
}
