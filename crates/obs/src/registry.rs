//! The named-metric registry.
//!
//! A [`Registry`] hands out `Arc` handles to counters, gauges and
//! histograms. Hot paths clone the handle once at setup and then
//! record through relaxed atomics — the registry lock is only touched
//! at registration and snapshot time.
//!
//! Every metric name is a *family*; a family holds one unlabeled
//! series plus any number (bounded — see [`MAX_SERIES_PER_FAMILY`]) of
//! *labeled* series distinguished by a small set of `key=value` label
//! pairs ([`Registry::histogram_with`] and friends). Label sets are
//! interned: the first `histogram_with("x", &[("tier", "t2")])` call
//! creates the series, every later call with an equal label set (in
//! any pair order) returns the same `Arc` handle without allocating —
//! so a hot path that cannot pre-resolve its handles can still look
//! one up per operation without touching the allocator, and one that
//! can (the normal case) holds plain `Arc`s and records lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::JsonWriter;

/// Upper bound on distinct labeled series per family. Labels are for
/// low-cardinality dimensions (a tier, a bucketed cluster id, an
/// outcome); once a family reaches the cap, further *new* label sets
/// all collapse into one reserved `{overflow="true"}` series so a
/// cardinality bug degrades a dashboard instead of eating the heap.
pub const MAX_SERIES_PER_FAMILY: usize = 64;

/// Upper bound on label pairs per series (kept tiny on purpose).
pub const MAX_LABELS_PER_SERIES: usize = 4;

/// A monotonically increasing relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add to the value (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram percentile summary (with bucket cells).
    Histogram(HistogramSnapshot),
}

/// One series at snapshot time: family name, label pairs (sorted by
/// key; empty for the unlabeled series) and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Family (metric) name.
    pub name: String,
    /// Label pairs, sorted by key. Empty for the unlabeled series.
    pub labels: Vec<(String, String)>,
    /// The recorded state.
    pub value: MetricSnapshot,
}

impl SeriesSnapshot {
    /// The series rendered as `name` or `name{k="v",k2="v2"}`.
    pub fn rendered_name(&self) -> String {
        render_series_name(&self.name, &self.labels)
    }
}

/// Render `name{k="v",...}` (or just `name` for no labels); the form
/// used as the JSON snapshot key and the window-store series key.
pub fn render_series_name(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Interned label set: pairs sorted by key, boxed once at creation.
type LabelSet = Box<[(Box<str>, Box<str>)]>;

/// Order-insensitive equality between a stored (sorted, distinct-key)
/// label set and a borrowed query. No allocation.
fn labels_match(stored: &LabelSet, query: &[(&str, &str)]) -> bool {
    stored.len() == query.len()
        && stored
            .iter()
            .all(|(k, v)| query.iter().any(|&(qk, qv)| qk == &**k && qv == &**v))
}

/// All series sharing one metric name. Exactly one kind per family.
struct Family {
    /// The label-less series, if it has been created.
    unlabeled: Option<Metric>,
    /// Labeled series in creation order (searched linearly: families
    /// are low-cardinality by the `MAX_SERIES_PER_FAMILY` contract).
    labeled: Vec<(LabelSet, Metric)>,
}

impl Family {
    fn kind(&self) -> Option<&'static str> {
        self.unlabeled
            .as_ref()
            .map(Metric::kind)
            .or_else(|| self.labeled.first().map(|(_, m)| m.kind()))
    }
}

/// A named-metric table: counters, gauges and histograms keyed by a
/// dotted name (convention: `<subsystem>.<metric>_<unit>`, e.g.
/// `engine.search_ns`), each optionally fanned out into labeled series.
///
/// Handles are `Arc`s resolved once and recorded into lock-free; the
/// registry lock is only taken at resolution and snapshot time:
///
/// ```
/// use xar_obs::Registry;
///
/// let reg = Registry::new();
/// let searches = reg.counter("engine.searches");
/// let latency = reg.histogram("engine.search_ns");
/// searches.inc();
/// latency.record(12_500);
/// assert_eq!(reg.counter("engine.searches").get(), 1); // same series
/// assert!(reg.snapshot_json().contains("\"engine.search_ns\""));
/// ```
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
    /// Distinct label sets rejected by the per-family cap (folded into
    /// the overflow series).
    label_overflow: AtomicU64,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("families", &self.lock_read().len()).finish()
    }
}

/// Label pairs `query` folded into the reserved overflow label set.
const OVERFLOW_LABELS: &[(&str, &str)] = &[("overflow", "true")];

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Family>> {
        self.families.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Family>> {
        self.families.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Get-or-create the series `(name, labels)`. `make` builds a fresh
    /// metric of the caller's kind; `pick` projects the handle back out
    /// (returning `None` on a kind mismatch, which panics: one family,
    /// one kind).
    fn series_with<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: &'static str,
        make: impl Fn() -> Metric,
        pick: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        assert!(
            labels.len() <= MAX_LABELS_PER_SERIES,
            "metric '{name}': more than {MAX_LABELS_PER_SERIES} labels"
        );
        // Fast path: read lock, allocation-free lookup.
        {
            let map = self.lock_read();
            if let Some(fam) = map.get(name) {
                let found = if labels.is_empty() {
                    fam.unlabeled.as_ref()
                } else {
                    fam.labeled.iter().find(|(ls, _)| labels_match(ls, labels)).map(|(_, m)| m)
                };
                if let Some(m) = found {
                    return pick(m).unwrap_or_else(|| {
                        panic!(
                            "metric '{name}' already registered with a different type ({})",
                            m.kind()
                        )
                    });
                }
            }
        }
        // Slow path: create under the write lock (re-checking, since
        // another thread may have won the race).
        for (i, (k, _)) in labels.iter().enumerate() {
            assert!(!k.is_empty(), "metric '{name}': empty label key");
            assert!(
                !labels[..i].iter().any(|(pk, _)| pk == k),
                "metric '{name}': duplicate label key '{k}'"
            );
        }
        let mut map = self.lock_write();
        let fam = map
            .entry(name.to_string())
            .or_insert_with(|| Family { unlabeled: None, labeled: Vec::new() });
        // One family, one kind — whichever series was created first
        // fixed it; check before inserting anything.
        if let Some(existing) = fam.kind() {
            assert!(
                existing == kind,
                "metric '{name}' already registered with a different type ({existing})"
            );
        }
        let intern = |pairs: &[(&str, &str)]| -> LabelSet {
            let mut ls: Vec<(Box<str>, Box<str>)> =
                pairs.iter().map(|&(k, v)| (Box::from(k), Box::from(v))).collect();
            ls.sort_by(|a, b| a.0.cmp(&b.0));
            ls.into_boxed_slice()
        };
        let is_overflow_query = labels.len() == 1 && labels[0] == OVERFLOW_LABELS[0];
        let metric = if labels.is_empty() {
            fam.unlabeled.get_or_insert_with(&make).clone()
        } else if let Some((_, m)) = fam.labeled.iter().find(|(ls, _)| labels_match(ls, labels)) {
            m.clone()
        } else if fam.labeled.len() >= MAX_SERIES_PER_FAMILY && !is_overflow_query {
            // Cardinality cap: fold this (new) label set into the
            // reserved overflow series.
            self.label_overflow.fetch_add(1, Ordering::Relaxed);
            match fam.labeled.iter().find(|(ls, _)| labels_match(ls, OVERFLOW_LABELS)) {
                Some((_, m)) => m.clone(),
                None => {
                    let m = make();
                    fam.labeled.push((intern(OVERFLOW_LABELS), m.clone()));
                    m
                }
            }
        } else {
            let m = make();
            fam.labeled.push((intern(labels), m.clone()));
            m
        };
        pick(&metric).unwrap_or_else(|| {
            panic!(
                "metric '{name}' already registered with a different type ({})",
                metric.kind()
            )
        })
    }

    /// Get or create the counter named `name` (the unlabeled series).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create the counter series `name{labels}`. Pair order is
    /// irrelevant; label keys must be distinct.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type, on a duplicate/empty label key, or on more than
    /// [`MAX_LABELS_PER_SERIES`] pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series_with(
            name,
            labels,
            "counter",
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create the gauge named `name` (the unlabeled series).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge series `name{labels}` (see
    /// [`Registry::counter_with`] for the label contract).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series_with(
            name,
            labels,
            "gauge",
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create the histogram named `name` (the unlabeled series).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get or create the histogram series `name{labels}` (see
    /// [`Registry::counter_with`] for the label contract).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.series_with(
            name,
            labels,
            "histogram",
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Distinct label sets folded into overflow series so far.
    pub fn label_overflow(&self) -> u64 {
        self.label_overflow.load(Ordering::Relaxed)
    }

    /// Snapshot every series, structured: family name + label pairs +
    /// value, sorted by family name then rendered labels (unlabeled
    /// series first within a family).
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        let mut out = Vec::new();
        for (name, fam) in self.lock_read().iter() {
            if let Some(m) = &fam.unlabeled {
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: snap_metric(m),
                });
            }
            let mut labeled: Vec<SeriesSnapshot> = fam
                .labeled
                .iter()
                .map(|(ls, m)| SeriesSnapshot {
                    name: name.clone(),
                    labels: ls.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
                    value: snap_metric(m),
                })
                .collect();
            labeled.sort_by(|a, b| a.labels.cmp(&b.labels));
            out.extend(labeled);
        }
        let overflow = self.label_overflow();
        if overflow > 0 {
            out.push(SeriesSnapshot {
                name: "obs.label_overflow".into(),
                labels: Vec::new(),
                value: MetricSnapshot::Counter(overflow),
            });
        }
        out
    }

    /// Snapshot every series as `(rendered name, value)`, sorted by
    /// family name (labeled series render as `name{k="v",...}`).
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        self.series().into_iter().map(|s| (s.rendered_name(), s.value)).collect()
    }

    /// Snapshot every metric as a deterministic JSON object.
    ///
    /// Schema: `{"<name>": <u64>}` for counters, `{"<name>": <i64>}`
    /// for gauges, and for histograms
    /// `{"<name>": {"count":u64,"sum":u64,"mean":f64,"p50":u64,
    /// "p90":u64,"p99":u64,"max":u64}}`. Labeled series appear under
    /// keys of the form `name{k="v",...}`.
    pub fn snapshot_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (name, snap) in self.snapshot() {
            w.key(&name);
            match snap {
                MetricSnapshot::Counter(v) => w.number_u64(v),
                MetricSnapshot::Gauge(v) => w.number_i64(v),
                MetricSnapshot::Histogram(h) => write_hist_json(&mut w, &h),
            }
        }
        w.end_object();
        w.finish()
    }
}

fn snap_metric(m: &Metric) -> MetricSnapshot {
    match m {
        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
        Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
    }
}

/// Write one histogram snapshot as a JSON object (shared with the
/// simulator's report dump).
pub(crate) fn write_hist_json(w: &mut JsonWriter, h: &HistogramSnapshot) {
    w.begin_object();
    w.key("count");
    w.number_u64(h.count);
    w.key("sum");
    w.number_u64(h.sum);
    w.key("mean");
    w.number_f64(h.mean);
    w.key("p50");
    w.number_u64(h.p50);
    w.key("p90");
    w.number_u64(h.p90);
    w.key("p99");
    w.number_u64(h.p99);
    w.key("max");
    w.number_u64(h.max);
    w.end_object();
}

/// The process-wide registry, for subsystems (like the road network's
/// shortest-path engines) that have no natural owner to hang a
/// registry off.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("ops").get(), 3);
        let g = r.gauge("depth");
        g.set(-4);
        g.add(1);
        assert_eq!(r.gauge("depth").get(), -3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        let _ = r.histogram("x");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn labeled_type_mismatch_panics() {
        let r = Registry::new();
        r.counter_with("x", &[("a", "1")]);
        let _ = r.histogram_with("x", &[("a", "2")]);
    }

    #[test]
    #[should_panic(expected = "duplicate label key")]
    fn duplicate_label_key_panics() {
        let r = Registry::new();
        let _ = r.counter_with("x", &[("a", "1"), ("a", "2")]);
    }

    #[test]
    fn labels_intern_order_insensitively() {
        let r = Registry::new();
        let a = r.counter_with("req", &[("tier", "t2"), ("cluster", "b3")]);
        let b = r.counter_with("req", &[("cluster", "b3"), ("tier", "t2")]);
        a.inc();
        b.inc();
        assert_eq!(r.counter_with("req", &[("tier", "t2"), ("cluster", "b3")]).get(), 2);
        // A different value is a different series.
        let c = r.counter_with("req", &[("tier", "t1"), ("cluster", "b3")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn unlabeled_and_labeled_coexist() {
        let r = Registry::new();
        r.histogram("h").record(10);
        r.histogram_with("h", &[("tier", "t1")]).record(20);
        let series = r.series();
        let names: Vec<String> = series.iter().map(SeriesSnapshot::rendered_name).collect();
        assert_eq!(names, vec!["h".to_string(), "h{tier=\"t1\"}".to_string()]);
    }

    #[test]
    fn cardinality_cap_folds_into_overflow() {
        let r = Registry::new();
        for i in 0..(MAX_SERIES_PER_FAMILY + 10) {
            r.counter_with("many", &[("i", &i.to_string())]).inc();
        }
        assert_eq!(r.label_overflow(), 10);
        let total: u64 = r
            .series()
            .iter()
            .filter(|s| s.name == "many")
            .map(|s| match s.value {
                MetricSnapshot::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(total, (MAX_SERIES_PER_FAMILY + 10) as u64, "counts conserved");
        assert!(r
            .series()
            .iter()
            .any(|s| s.name == "many" && s.labels == vec![("overflow".into(), "true".into())]));
        // The overflow series keeps absorbing further new sets.
        r.counter_with("many", &[("i", "zzz")]).inc();
        assert_eq!(r.label_overflow(), 11);
    }

    #[test]
    fn snapshot_json_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(7);
        r.gauge("c.level").set(-1);
        r.histogram("a.lat_ns").record(100);
        let json = r.snapshot_json();
        let a = json.find("\"a.lat_ns\"").expect("histogram present");
        let b = json.find("\"b.count\":7").expect("counter present");
        let c = json.find("\"c.level\":-1").expect("gauge present");
        assert!(a < b && b < c, "keys not sorted: {json}");
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn labeled_series_render_in_snapshot_json() {
        let r = Registry::new();
        r.counter_with("sim.requests", &[("outcome", "booked")]).add(3);
        let json = r.snapshot_json();
        assert!(json.contains("\"sim.requests{outcome=\\\"booked\\\"}\":3"), "{json}");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global").inc();
        assert!(global().counter("test.global").get() >= 1);
    }
}
