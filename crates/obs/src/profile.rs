//! Continuous profiling on top of the flight recorder.
//!
//! The [`trace`](crate::trace) module answers "what happened inside
//! *this* request"; this module answers "where does time and memory go
//! across *all* requests". It has four parts:
//!
//! * [`Profile`] — aggregates kept span trees into a hierarchical
//!   self/total-time profile (one node per distinct span *stack path*,
//!   merged across traces and threads).
//! * Artifact export/import — [`Profile::to_collapsed`] emits
//!   flamegraph.pl / inferno-compatible collapsed stacks and
//!   [`Profile::to_speedscope`] emits a speedscope "sampled" JSON
//!   document; [`parse_collapsed`] / [`parse_speedscope`] read both
//!   back so artifacts are self-validating (round-trip tested).
//! * Allocation attribution — an installable [`ProfilingAlloc`]
//!   global-allocator wrapper that, while [`set_alloc_profiling`] is
//!   on, attributes every allocation to the innermost open trace span
//!   on the allocating thread (a lock-free fixed-size table; the
//!   disabled path is one relaxed load). [`alloc_profile`] reads the
//!   attribution back.
//! * Exemplars — per-series retention of the trace ids behind the
//!   highest-latency samples ([`exemplar_handle`] / [`ExemplarSlot`]),
//!   rendered by [`promtext`](crate::promtext) in OpenMetrics exemplar
//!   syntax so `/metrics` links straight back to traces.
//!
//! ```
//! use xar_obs::profile::{parse_collapsed, Profile};
//! use xar_obs::trace::{Recorder, TraceConfig};
//!
//! let rec = Recorder::new(TraceConfig::keep_all());
//! {
//!     let _root = rec.start_root("request");
//!     let _child = rec.child_span("search");
//! }
//! let profile = Profile::from_snapshot(&rec.snapshot());
//! let collapsed = profile.to_collapsed();
//! assert!(collapsed.contains("request;search"));
//! assert_eq!(parse_collapsed(&collapsed).unwrap().len(), 2);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::{JsonValue, JsonWriter};
use crate::trace::{EventKind, TraceSnapshot};

// ---------------------------------------------------------------------------
// Span-tree aggregation
// ---------------------------------------------------------------------------

/// One node of an aggregated profile: a distinct span stack path, with
/// time and invocation counts merged over every occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name (the innermost frame of this path).
    pub name: String,
    /// Wall time spent in this path, children included.
    pub total_ns: u64,
    /// Wall time spent in this path, children excluded.
    pub self_ns: u64,
    /// Number of spans merged into this node.
    pub count: u64,
    /// Child paths, sorted by descending `total_ns`.
    pub children: Vec<ProfileNode>,
}

/// A hierarchical self/total-time profile aggregated from kept traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Root spans (request kinds), sorted by descending `total_ns`.
    pub roots: Vec<ProfileNode>,
    /// Number of traces merged in.
    pub traces: u64,
    /// Number of spans merged in.
    pub spans: u64,
}

/// Mutable aggregation node (arena form, finalized into [`ProfileNode`]).
struct ANode {
    name: String,
    total: u64,
    count: u64,
    children: Vec<usize>,
}

struct Arena {
    nodes: Vec<ANode>,
    roots: Vec<usize>,
}

impl Arena {
    fn child_of(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(ANode {
            name: name.to_string(),
            total: 0,
            count: 0,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn finalize(&self, idx: usize) -> ProfileNode {
        let node = &self.nodes[idx];
        let mut children: Vec<ProfileNode> =
            node.children.iter().map(|&c| self.finalize(c)).collect();
        children.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        ProfileNode {
            name: node.name.clone(),
            total_ns: node.total,
            self_ns: node.total.saturating_sub(child_total),
            count: node.count,
            children,
        }
    }
}

impl Profile {
    /// Aggregate every kept trace in `snap` into one profile. Spans
    /// merge by their stack *path* (root name, then each child name),
    /// so `request → search` accumulates separately from
    /// `request → book` even when both contain a `lock.read_acquire`.
    pub fn from_snapshot(snap: &TraceSnapshot) -> Self {
        let mut arena = Arena { nodes: Vec::new(), roots: Vec::new() };
        let mut spans = 0_u64;
        for trace in &snap.traces {
            // Events within one kept trace are in per-thread recording
            // order with balanced Begin/End pairs; adopted cross-thread
            // segments arrive as separate kept traces. Stacks are still
            // keyed by tid defensively.
            let mut stacks: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
            for ev in &trace.events {
                let stack = stacks.entry(ev.tid).or_default();
                match ev.kind {
                    EventKind::Begin => {
                        let parent = stack.last().map(|&(idx, _)| idx);
                        let idx = arena.child_of(parent, ev.name);
                        stack.push((idx, ev.ts_ns));
                    }
                    EventKind::End => {
                        if let Some((idx, start)) = stack.pop() {
                            arena.nodes[idx].total += ev.ts_ns.saturating_sub(start);
                            arena.nodes[idx].count += 1;
                            spans += 1;
                        }
                    }
                    EventKind::Instant => {}
                }
            }
        }
        let mut roots: Vec<ProfileNode> =
            arena.roots.iter().map(|&r| arena.finalize(r)).collect();
        roots.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Profile { roots, traces: snap.traces.len() as u64, spans }
    }

    /// Build a profile from `(stack path, self time)` entries — the
    /// inverse of [`Profile::collapsed_entries`], used by the artifact
    /// round-trip tests and by tooling that re-loads saved profiles.
    /// Counts are 1 for listed paths and 0 for implied ancestors.
    pub fn from_entries(entries: &[(Vec<String>, u64)]) -> Self {
        let mut arena = Arena { nodes: Vec::new(), roots: Vec::new() };
        let mut selfs: HashMap<usize, u64> = HashMap::new();
        let mut spans = 0_u64;
        for (path, value) in entries {
            let mut parent = None;
            for name in path {
                parent = Some(arena.child_of(parent, name));
            }
            if let Some(leaf) = parent {
                *selfs.entry(leaf).or_insert(0) += value;
                arena.nodes[leaf].count += 1;
                spans += 1;
            }
        }
        // Totals are self + descendant self, accumulated bottom-up.
        fn fill_total(arena: &mut Arena, selfs: &HashMap<usize, u64>, idx: usize) -> u64 {
            let children = arena.nodes[idx].children.clone();
            let mut total = selfs.get(&idx).copied().unwrap_or(0);
            for c in children {
                total += fill_total(arena, selfs, c);
            }
            arena.nodes[idx].total = total;
            total
        }
        for r in arena.roots.clone() {
            fill_total(&mut arena, &selfs, r);
        }
        let mut roots: Vec<ProfileNode> =
            arena.roots.iter().map(|&r| arena.finalize(r)).collect();
        roots.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Profile { roots, traces: 0, spans }
    }

    /// Total wall time across all roots.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// The canonical `(stack path, self time)` entry list: one entry
    /// per node with non-zero self time, in deterministic DFS order.
    /// Both artifact formats serialize exactly this.
    pub fn collapsed_entries(&self) -> Vec<(Vec<String>, u64)> {
        fn walk(
            node: &ProfileNode,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, u64)>,
        ) {
            path.push(node.name.clone());
            if node.self_ns > 0 {
                out.push((path.clone(), node.self_ns));
            }
            for c in &node.children {
                walk(c, path, out);
            }
            path.pop();
        }
        let mut out = Vec::new();
        let mut path = Vec::new();
        for r in &self.roots {
            walk(r, &mut path, &mut out);
        }
        out
    }

    /// Render as collapsed stacks: one `a;b;c <self_ns>` line per
    /// entry, directly loadable by flamegraph.pl and inferno.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, value) in self.collapsed_entries() {
            for (i, frame) in path.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                push_frame_sanitized(&mut out, frame);
            }
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// Render as a speedscope ("sampled" profile, nanosecond unit)
    /// JSON document: one sample per entry with its self time as the
    /// weight.
    pub fn to_speedscope(&self) -> String {
        let entries = self.collapsed_entries();
        let mut frames: Vec<&str> = Vec::new();
        let mut frame_idx: HashMap<&str, usize> = HashMap::new();
        for (path, _) in &entries {
            for frame in path {
                let frame = frame.as_str();
                if !frame_idx.contains_key(frame) {
                    frame_idx.insert(frame, frames.len());
                    frames.push(frame);
                }
            }
        }
        let total: u64 = entries.iter().map(|&(_, v)| v).sum();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("$schema");
        w.string("https://www.speedscope.app/file-format-schema.json");
        w.key("name");
        w.string("xar profile");
        w.key("activeProfileIndex");
        w.number_u64(0);
        w.key("shared");
        w.begin_object();
        w.key("frames");
        w.begin_array();
        for frame in &frames {
            w.begin_object();
            w.key("name");
            w.string(frame);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.key("profiles");
        w.begin_array();
        w.begin_object();
        w.key("type");
        w.string("sampled");
        w.key("name");
        w.string("wall");
        w.key("unit");
        w.string("nanoseconds");
        w.key("startValue");
        w.number_u64(0);
        w.key("endValue");
        w.number_u64(total);
        w.key("samples");
        w.begin_array();
        for (path, _) in &entries {
            w.begin_array();
            for frame in path {
                w.number_u64(frame_idx[frame.as_str()] as u64);
            }
            w.end_array();
        }
        w.end_array();
        w.key("weights");
        w.begin_array();
        for &(_, v) in &entries {
            w.number_u64(v);
        }
        w.end_array();
        w.end_object();
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The `n` heaviest paths by self time, as `(path, self_ns, count)`
    /// with the path joined by `;` — the CLI summary table.
    pub fn top_self(&self, n: usize) -> Vec<(String, u64, u64)> {
        fn walk(node: &ProfileNode, path: &mut Vec<String>, out: &mut Vec<(String, u64, u64)>) {
            path.push(node.name.clone());
            if node.self_ns > 0 {
                out.push((path.join(";"), node.self_ns, node.count));
            }
            for c in &node.children {
                walk(c, path, out);
            }
            path.pop();
        }
        let mut out = Vec::new();
        let mut path = Vec::new();
        for r in &self.roots {
            walk(r, &mut path, &mut out);
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(n);
        out
    }

    /// Render the hierarchical profile as JSON (the `/debug/profile`
    /// payload body).
    pub fn write_json(&self, w: &mut JsonWriter) {
        fn write_node(w: &mut JsonWriter, node: &ProfileNode) {
            w.begin_object();
            w.key("name");
            w.string(&node.name);
            w.key("total_ns");
            w.number_u64(node.total_ns);
            w.key("self_ns");
            w.number_u64(node.self_ns);
            w.key("count");
            w.number_u64(node.count);
            w.key("children");
            w.begin_array();
            for c in &node.children {
                write_node(w, c);
            }
            w.end_array();
            w.end_object();
        }
        w.begin_object();
        w.key("traces");
        w.number_u64(self.traces);
        w.key("spans");
        w.number_u64(self.spans);
        w.key("total_ns");
        w.number_u64(self.total_ns());
        w.key("roots");
        w.begin_array();
        for r in &self.roots {
            write_node(w, r);
        }
        w.end_array();
        w.end_object();
    }
}

/// Collapsed-stack frames must not contain the `;` path separator or
/// the value-separating space; span names are clean identifiers, but
/// sanitize defensively so artifacts always re-parse.
fn push_frame_sanitized(out: &mut String, frame: &str) {
    for c in frame.chars() {
        out.push(match c {
            ';' | ' ' | '\n' | '\t' | '\r' => '_',
            c => c,
        });
    }
}

/// Parse a collapsed-stack document back into `(path, value)` entries.
/// The inverse of [`Profile::to_collapsed`].
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", i + 1))?;
        let value: u64 =
            value.parse().map_err(|_| format!("line {}: bad value '{value}'", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        let path: Vec<String> = stack.split(';').map(str::to_string).collect();
        if path.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame in '{stack}'", i + 1));
        }
        out.push((path, value));
    }
    Ok(out)
}

/// Parse a speedscope "sampled" document (as written by
/// [`Profile::to_speedscope`]) back into `(path, weight)` entries.
pub fn parse_speedscope(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let doc = crate::json::parse(text)?;
    let frames = doc
        .get("shared")
        .and_then(|s| s.get("frames"))
        .and_then(JsonValue::as_array)
        .ok_or("missing shared.frames")?;
    let names: Vec<&str> = frames
        .iter()
        .map(|f| f.get("name").and_then(JsonValue::as_str).ok_or("frame without name"))
        .collect::<Result<_, _>>()?;
    let profile = doc
        .get("profiles")
        .and_then(JsonValue::as_array)
        .and_then(|p| p.first())
        .ok_or("missing profiles[0]")?;
    if profile.get("type").and_then(JsonValue::as_str) != Some("sampled") {
        return Err("profiles[0].type is not 'sampled'".to_string());
    }
    let samples = profile
        .get("samples")
        .and_then(JsonValue::as_array)
        .ok_or("missing samples")?;
    let weights = profile
        .get("weights")
        .and_then(JsonValue::as_array)
        .ok_or("missing weights")?;
    if samples.len() != weights.len() {
        return Err(format!(
            "samples/weights length mismatch: {} vs {}",
            samples.len(),
            weights.len()
        ));
    }
    let mut out = Vec::with_capacity(samples.len());
    for (sample, weight) in samples.iter().zip(weights) {
        let stack = sample.as_array().ok_or("sample is not an array")?;
        let mut path = Vec::with_capacity(stack.len());
        for idx in stack {
            let idx = idx.as_u64().ok_or("non-integer frame index")? as usize;
            let name = names.get(idx).ok_or("frame index out of range")?;
            path.push((*name).to_string());
        }
        let weight = weight.as_u64().ok_or("non-integer weight")?;
        out.push((path, weight));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Allocation attribution
// ---------------------------------------------------------------------------

/// Span-name frames the allocator hook may read concurrently with
/// normal span entry/exit on the same thread (never cross-thread), so
/// plain stores via `UnsafeCell` are sufficient; the entry is written
/// before the depth that exposes it.
struct SpanStack {
    frames: [(*const u8, usize); SPAN_STACK_DEPTH],
    depth: usize,
}

const SPAN_STACK_DEPTH: usize = 32;

thread_local! {
    static SPAN_STACK: UnsafeCell<SpanStack> = const {
        UnsafeCell::new(SpanStack {
            frames: [(std::ptr::null(), 0); SPAN_STACK_DEPTH],
            depth: 0,
        })
    };
}

/// Track span entry for allocation attribution. Called by the trace
/// guards on the armed path only (tracing disabled ⇒ zero cost here).
#[inline]
pub(crate) fn span_stack_push(name: &'static str) {
    let _ = SPAN_STACK.try_with(|s| {
        // SAFETY: the cell is thread-local and only accessed from this
        // thread; the allocator hook reads (never writes) it, and the
        // frame is stored before `depth` makes it visible.
        let stack = unsafe { &mut *s.get() };
        if stack.depth < SPAN_STACK_DEPTH {
            stack.frames[stack.depth] = (name.as_ptr(), name.len());
        }
        stack.depth += 1;
    });
}

/// Track span exit (mirror of [`span_stack_push`]).
#[inline]
pub(crate) fn span_stack_pop() {
    let _ = SPAN_STACK.try_with(|s| {
        // SAFETY: see `span_stack_push`.
        let stack = unsafe { &mut *s.get() };
        stack.depth = stack.depth.saturating_sub(1);
    });
}

/// The name under which allocations outside any open span are
/// attributed.
pub const UNTRACKED_SPAN: &str = "(untracked)";

static ALLOC_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn allocation attribution on or off. Off (the default) makes the
/// allocator hook a single relaxed load and a branch. Enable *before*
/// the traced work starts so span entry/exit pairs stay balanced.
pub fn set_alloc_profiling(on: bool) {
    ALLOC_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation attribution is currently on.
pub fn alloc_profiling_enabled() -> bool {
    ALLOC_ENABLED.load(Ordering::Relaxed)
}

/// One attribution bucket: a span name (as raw parts of the `'static`
/// string) plus byte/allocation counters. Slots are claimed once by
/// compare-and-swap and never released.
struct AllocCell {
    key: AtomicPtr<u8>,
    key_len: AtomicUsize,
    bytes: AtomicU64,
    allocs: AtomicU64,
}

impl AllocCell {
    const fn new() -> Self {
        Self {
            key: AtomicPtr::new(std::ptr::null_mut()),
            key_len: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }
}

const ALLOC_TABLE_SLOTS: usize = 256;
const ALLOC_PROBE_LIMIT: usize = 8;

static ALLOC_TABLE: [AllocCell; ALLOC_TABLE_SLOTS] =
    [const { AllocCell::new() }; ALLOC_TABLE_SLOTS];

/// Catch-all bucket when linear probing gives up (pathological name
/// count); conservation holds: every recorded byte lands somewhere.
static ALLOC_OVERFLOW: AllocCell = AllocCell::new();

/// The span name reported for the overflow bucket.
pub const OVERFLOW_SPAN: &str = "(table-overflow)";

fn alloc_hash(ptr: *const u8) -> usize {
    // SplitMix64 over the address; distinct `&'static str` literals
    // have distinct, stable addresses.
    let mut x = ptr as u64;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as usize
}

/// Record `size` bytes against the span name at (`ptr`, `len`).
/// Lock-free and allocation-free: at most `ALLOC_PROBE_LIMIT` probes
/// of relaxed atomics.
fn alloc_table_record(ptr: *const u8, len: usize, size: usize) {
    let start = alloc_hash(ptr);
    for probe in 0..ALLOC_PROBE_LIMIT {
        let cell = &ALLOC_TABLE[(start + probe) % ALLOC_TABLE_SLOTS];
        let key = cell.key.load(Ordering::Acquire);
        if key.is_null() {
            match cell.key.compare_exchange(
                std::ptr::null_mut(),
                ptr.cast_mut(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    cell.key_len.store(len, Ordering::Release);
                }
                Err(winner) if winner != ptr.cast_mut() => continue,
                Err(_) => {}
            }
        } else if key != ptr.cast_mut() {
            continue;
        }
        cell.bytes.fetch_add(size as u64, Ordering::Relaxed);
        cell.allocs.fetch_add(1, Ordering::Relaxed);
        return;
    }
    ALLOC_OVERFLOW.bytes.fetch_add(size as u64, Ordering::Relaxed);
    ALLOC_OVERFLOW.allocs.fetch_add(1, Ordering::Relaxed);
}

/// The allocator-side record hook: attribute `size` bytes to the
/// innermost open span on this thread (or [`UNTRACKED_SPAN`]).
#[inline]
fn record_alloc(size: usize) {
    if !ALLOC_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let frame = SPAN_STACK
        .try_with(|s| {
            // SAFETY: read-only access; same-thread writers order the
            // frame store before the depth store (see SpanStack).
            let stack = unsafe { &*s.get() };
            if stack.depth == 0 {
                None
            } else {
                Some(stack.frames[stack.depth.min(SPAN_STACK_DEPTH) - 1])
            }
        })
        .ok()
        .flatten();
    let (ptr, len) = frame.unwrap_or((UNTRACKED_SPAN.as_ptr(), UNTRACKED_SPAN.len()));
    alloc_table_record(ptr, len, size);
}

/// A global-allocator wrapper that feeds the allocation profiler.
///
/// Install it in a binary's root:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: xar_obs::profile::ProfilingAlloc = xar_obs::profile::ProfilingAlloc::system();
/// ```
///
/// While profiling is off (the default) each allocation pays one
/// relaxed atomic load and a branch on top of the wrapped allocator;
/// deallocation is entirely pass-through. The profiler attributes
/// *allocation volume* (bytes requested, call count), not live bytes.
#[derive(Debug, Default)]
pub struct ProfilingAlloc<A = System> {
    inner: A,
}

impl ProfilingAlloc<System> {
    /// Wrap the system allocator.
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl<A> ProfilingAlloc<A> {
    /// Wrap an arbitrary inner allocator.
    pub const fn with(inner: A) -> Self {
        Self { inner }
    }
}

// SAFETY: defers every allocator obligation to the wrapped allocator;
// the added hook neither allocates nor panics.
unsafe impl<A: GlobalAlloc> GlobalAlloc for ProfilingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { self.inner.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { self.inner.alloc_zeroed(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { self.inner.realloc(ptr, layout, new_size) };
        if !p.is_null() && new_size > layout.size() {
            record_alloc(new_size - layout.size());
        }
        p
    }
}

/// Bytes and allocation counts attributed to one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Span name ([`UNTRACKED_SPAN`] for allocations outside spans).
    pub name: String,
    /// Total bytes requested while this span was innermost.
    pub bytes: u64,
    /// Number of allocation calls.
    pub allocs: u64,
}

/// Read the current allocation attribution, aggregated by span name
/// (distinct `&'static str` addresses with equal text merge), sorted
/// by descending bytes.
pub fn alloc_profile() -> Vec<SpanAlloc> {
    let mut by_name: HashMap<String, (u64, u64)> = HashMap::new();
    let mut fold = |name: &str, bytes: u64, allocs: u64| {
        if allocs > 0 {
            let e = by_name.entry(name.to_string()).or_insert((0, 0));
            e.0 += bytes;
            e.1 += allocs;
        }
    };
    for cell in &ALLOC_TABLE {
        let key = cell.key.load(Ordering::Acquire);
        if key.is_null() {
            continue;
        }
        let len = cell.key_len.load(Ordering::Acquire);
        // SAFETY: (key, len) were captured from a `&'static str` in
        // `record_alloc`, so the bytes are live and valid UTF-8. A
        // racing claim may expose len 0 briefly; that yields "".
        let name = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(key, len))
        };
        fold(
            if name.is_empty() { UNTRACKED_SPAN } else { name },
            cell.bytes.load(Ordering::Relaxed),
            cell.allocs.load(Ordering::Relaxed),
        );
    }
    fold(
        OVERFLOW_SPAN,
        ALLOC_OVERFLOW.bytes.load(Ordering::Relaxed),
        ALLOC_OVERFLOW.allocs.load(Ordering::Relaxed),
    );
    let mut out: Vec<SpanAlloc> = by_name
        .into_iter()
        .map(|(name, (bytes, allocs))| SpanAlloc { name, bytes, allocs })
        .collect();
    out.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.name.cmp(&b.name)));
    out
}

/// Zero every attribution counter (slot keys are kept).
pub fn reset_alloc_profile() {
    for cell in &ALLOC_TABLE {
        cell.bytes.store(0, Ordering::Relaxed);
        cell.allocs.store(0, Ordering::Relaxed);
    }
    ALLOC_OVERFLOW.bytes.store(0, Ordering::Relaxed);
    ALLOC_OVERFLOW.allocs.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Exemplars
// ---------------------------------------------------------------------------

/// Exemplar slots retained per series.
pub const EXEMPLARS_PER_SERIES: usize = 4;

/// How long an exemplar stays eligible before any fresh sample may
/// replace it, regardless of value (keeps `/metrics` pointing at
/// recent traces instead of one ancient spike).
pub const EXEMPLAR_RETENTION_MS: u64 = 60_000;

fn now_ms() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    let base = BASE.get_or_init(Instant::now);
    // +1 so 0 stays the "empty slot" sentinel.
    u64::try_from(base.elapsed().as_millis()).unwrap_or(u64::MAX - 1) + 1
}

struct ExemplarCell {
    value: AtomicU64,
    trace: AtomicU64,
    ts_ms: AtomicU64,
}

/// Lock-free retention of the highest-valued recent samples of one
/// series, with the trace id that produced each. Obtain via
/// [`exemplar_handle`] at setup; [`ExemplarSlot::offer`] on the hot
/// path is a handful of relaxed atomics and never allocates.
pub struct ExemplarSlot {
    family: String,
    labels: Vec<(String, String)>,
    cells: [ExemplarCell; EXEMPLARS_PER_SERIES],
}

impl std::fmt::Debug for ExemplarSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExemplarSlot")
            .field("family", &self.family)
            .field("labels", &self.labels)
            .finish_non_exhaustive()
    }
}

impl ExemplarSlot {
    /// Offer a `(value, trace id)` observation. It is retained when a
    /// slot is empty, stale (older than [`EXEMPLAR_RETENTION_MS`]), or
    /// holds a smaller value — i.e. each series keeps (about) its
    /// [`EXEMPLARS_PER_SERIES`] largest recent samples. Races may drop
    /// an observation; retention is best-effort by design.
    pub fn offer(&self, value: u64, trace: u64) {
        let now = now_ms();
        let mut victim = None;
        let mut victim_value = u64::MAX;
        for cell in &self.cells {
            let ts = cell.ts_ms.load(Ordering::Relaxed);
            let stale = ts == 0 || now.saturating_sub(ts) > EXEMPLAR_RETENTION_MS;
            let v = if stale { 0 } else { cell.value.load(Ordering::Relaxed) };
            if v < victim_value {
                victim_value = v;
                victim = Some(cell);
            }
        }
        let Some(cell) = victim else { return };
        if value >= victim_value || victim_value == 0 {
            cell.value.store(value, Ordering::Relaxed);
            cell.trace.store(trace, Ordering::Relaxed);
            cell.ts_ms.store(now, Ordering::Relaxed);
        }
    }

    /// The metric family this slot belongs to (e.g. `engine.search_ns`).
    pub fn family(&self) -> &str {
        &self.family
    }
}

/// One retained exemplar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (same unit as the series it annotates).
    pub value: u64,
    /// The trace id of the request that produced it.
    pub trace: u64,
    /// Milliseconds since the observation.
    pub age_ms: u64,
}

/// The exemplars of one series, for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarSeries {
    /// Metric family name (pre-sanitization, e.g. `engine.search_ns`).
    pub family: String,
    /// Label pairs identifying the series within the family.
    pub labels: Vec<(String, String)>,
    /// Retained exemplars, sorted by descending value.
    pub exemplars: Vec<Exemplar>,
}

fn exemplar_store() -> &'static Mutex<Vec<Arc<ExemplarSlot>>> {
    static STORE: OnceLock<Mutex<Vec<Arc<ExemplarSlot>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Resolve (or create) the exemplar slot for `family` + `labels`.
/// Process-global, like [`registry::global`](crate::registry::global):
/// repeated resolution returns the same slot. Call at setup, keep the
/// `Arc`, and [`offer`](ExemplarSlot::offer) on the hot path.
pub fn exemplar_handle(family: &str, labels: &[(&str, &str)]) -> Arc<ExemplarSlot> {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    let mut store = exemplar_store().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) =
        store.iter().find(|s| s.family == family && s.labels == labels)
    {
        return Arc::clone(slot);
    }
    let slot = Arc::new(ExemplarSlot {
        family: family.to_string(),
        labels,
        cells: [const {
            ExemplarCell {
                value: AtomicU64::new(0),
                trace: AtomicU64::new(0),
                ts_ms: AtomicU64::new(0),
            }
        }; EXEMPLARS_PER_SERIES],
    });
    store.push(Arc::clone(&slot));
    slot
}

/// Snapshot every series that currently retains at least one fresh
/// exemplar.
pub fn exemplar_snapshot() -> Vec<ExemplarSeries> {
    let now = now_ms();
    let store = exemplar_store().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for slot in store.iter() {
        let mut exemplars: Vec<Exemplar> = slot
            .cells
            .iter()
            .filter_map(|cell| {
                let ts = cell.ts_ms.load(Ordering::Relaxed);
                if ts == 0 || now.saturating_sub(ts) > EXEMPLAR_RETENTION_MS {
                    return None;
                }
                Some(Exemplar {
                    value: cell.value.load(Ordering::Relaxed),
                    trace: cell.trace.load(Ordering::Relaxed),
                    age_ms: now.saturating_sub(ts),
                })
            })
            .collect();
        if exemplars.is_empty() {
            continue;
        }
        exemplars.sort_by(|a, b| b.value.cmp(&a.value).then(a.trace.cmp(&b.trace)));
        out.push(ExemplarSeries {
            family: slot.family.clone(),
            labels: slot.labels.clone(),
            exemplars,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// /debug/profile payload
// ---------------------------------------------------------------------------

/// Aggregate the global recorder's kept traces and the allocation
/// attribution into the `/debug/profile` JSON document.
pub fn debug_profile_json() -> String {
    let profile = Profile::from_snapshot(&crate::trace::recorder().snapshot());
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("profile");
    profile.write_json(&mut w);
    w.key("alloc");
    w.begin_object();
    w.key("enabled");
    w.boolean(alloc_profiling_enabled());
    w.key("by_span");
    w.begin_array();
    for entry in alloc_profile() {
        w.begin_object();
        w.key("name");
        w.string(&entry.name);
        w.key("bytes");
        w.number_u64(entry.bytes);
        w.key("allocs");
        w.number_u64(entry.allocs);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Recorder, TraceConfig};

    fn sample_profile() -> Profile {
        let rec = Recorder::new(TraceConfig::keep_all());
        for _ in 0..3 {
            let _root = rec.start_root("request");
            {
                let _s = rec.child_span("search");
                let _l = rec.child_span("lock.read_acquire");
            }
            let _b = rec.child_span("book");
        }
        Profile::from_snapshot(&rec.snapshot())
    }

    #[test]
    fn aggregates_by_stack_path() {
        let p = sample_profile();
        assert_eq!(p.traces, 3);
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "request");
        assert_eq!(root.count, 3);
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"search") && names.contains(&"book"), "{names:?}");
        let search = root.children.iter().find(|c| c.name == "search").unwrap();
        assert_eq!(search.children[0].name, "lock.read_acquire");
        assert_eq!(search.count, 3);
        // Total dominates self; self is total minus children.
        assert!(root.total_ns >= root.self_ns);
        let child_total: u64 = root.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(root.self_ns, root.total_ns - child_total);
    }

    #[test]
    fn collapsed_round_trips() {
        let p = sample_profile();
        let entries = parse_collapsed(&p.to_collapsed()).unwrap();
        assert_eq!(entries, p.collapsed_entries());
    }

    #[test]
    fn speedscope_round_trips() {
        let p = sample_profile();
        let entries = parse_speedscope(&p.to_speedscope()).unwrap();
        assert_eq!(entries, p.collapsed_entries());
    }

    #[test]
    fn from_entries_reconstructs_totals() {
        let entries = vec![
            (vec!["a".to_string()], 5),
            (vec!["a".to_string(), "b".to_string()], 7),
            (vec!["a".to_string(), "c".to_string()], 2),
        ];
        let p = Profile::from_entries(&entries);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].total_ns, 14);
        assert_eq!(p.roots[0].self_ns, 5);
        let mut got = p.collapsed_entries();
        got.sort();
        let mut want = entries.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn collapsed_sanitizes_separators() {
        let p = Profile::from_entries(&[(vec!["bad name;x".to_string()], 3)]);
        let text = p.to_collapsed();
        assert_eq!(text, "bad_name_x 3\n");
        assert!(parse_collapsed(&text).is_ok());
    }

    #[test]
    fn parse_collapsed_rejects_malformed() {
        assert!(parse_collapsed("novalue").is_err());
        assert!(parse_collapsed("a;b notanumber").is_err());
        assert!(parse_collapsed(";a 5").is_err());
        assert_eq!(parse_collapsed("\n  \n").unwrap(), vec![]);
    }

    #[test]
    fn exemplar_slot_keeps_largest_recent() {
        let slot = exemplar_handle("test.profile.exemplar_keeps", &[("k", "v")]);
        for (value, trace) in [(10, 1), (50, 2), (30, 3), (40, 4), (20, 5), (60, 6)] {
            slot.offer(value, trace);
        }
        let snap = exemplar_snapshot();
        let series = snap
            .iter()
            .find(|s| s.family == "test.profile.exemplar_keeps")
            .expect("series retained");
        assert_eq!(series.labels, vec![("k".to_string(), "v".to_string())]);
        let values: Vec<u64> = series.exemplars.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![60, 50, 40, 30], "keeps the 4 largest");
        assert_eq!(series.exemplars[0].trace, 6);
    }

    #[test]
    fn exemplar_handle_is_idempotent() {
        let a = exemplar_handle("test.profile.idem", &[("a", "1"), ("b", "2")]);
        let b = exemplar_handle("test.profile.idem", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b), "label order must not matter");
    }

    #[test]
    fn alloc_attribution_lands_on_innermost_span() {
        // Serialize against other tests that toggle the global flag.
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset_alloc_profile();
        span_stack_push("test.alloc.outer");
        span_stack_push("test.alloc.inner");
        set_alloc_profiling(true);
        record_alloc(100);
        record_alloc(28);
        span_stack_pop();
        record_alloc(7);
        set_alloc_profiling(false);
        span_stack_pop();
        let profile = alloc_profile();
        let inner = profile.iter().find(|s| s.name == "test.alloc.inner").unwrap();
        assert_eq!((inner.bytes, inner.allocs), (128, 2));
        let outer = profile.iter().find(|s| s.name == "test.alloc.outer").unwrap();
        assert_eq!((outer.bytes, outer.allocs), (7, 1));
    }

    #[test]
    fn debug_profile_json_parses() {
        let doc = crate::json::parse(&debug_profile_json()).unwrap();
        assert!(doc.get("profile").is_some());
        assert!(doc.get("alloc").and_then(|a| a.get("enabled")).is_some());
    }
}
