//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! A rule names an objective (latency: "at least `target` of samples in
//! a histogram series stay below a threshold"; ratio: "at least
//! `target` of `total` events are `good`"), and the engine evaluates
//! the *burn rate* — observed error rate divided by the error budget
//! `1 − target` — over two rolling windows from a
//! [`WindowStore`]. An alert fires only
//! when **both** the fast and the slow window burn at or above the
//! configured threshold: the slow window proves the problem is
//! sustained, the fast window proves it is still happening (so alerts
//! clear quickly after recovery). This is the standard multi-window
//! burn-rate construction from SRE practice.
//!
//! Rules are parsed from a compact `key=value` string so they can ride
//! on a CLI flag:
//!
//! ```text
//! name=search_p99 hist=sim.search_ns max_us=250 target=0.99 fast=10 slow=60 burn=2
//! name=bookings good=sim.requests{outcome="booked"} total=sim.requests_all target=0.9 fast=10 slow=60 burn=1
//! ```
//!
//! `fast`/`slow` are window lengths in seconds; `max_us` is the latency
//! threshold in microseconds (`max_ms`/`max_ns` are accepted too).
//! Once a rule has fired it stays latched in
//! [`AlertStatus::ever_fired`] so `xar simulate --slo-fail` can turn a
//! burst of bad seconds into a non-zero exit code even if the run ends
//! healthy.

use std::sync::Mutex;

use crate::json::JsonWriter;
use crate::window::{RollingKind, WindowStore};

/// What a rule measures.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Fraction of samples in histogram series `hist` above `max_ns`
    /// is the error rate.
    Latency {
        /// Rendered histogram series name (labels allowed).
        hist: String,
        /// Threshold in nanoseconds; samples above it are "bad".
        max_ns: u64,
    },
    /// `1 − good/total` over counter deltas is the error rate.
    Ratio {
        /// Rendered counter series counting good events.
        good: String,
        /// Rendered counter series counting all events.
        total: String,
    },
}

/// One parsed SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (alert identity).
    pub name: String,
    /// The measured objective.
    pub objective: Objective,
    /// Success target in (0, 1), e.g. `0.99`.
    pub target: f64,
    /// Fast window, milliseconds.
    pub fast_ms: u64,
    /// Slow window, milliseconds.
    pub slow_ms: u64,
    /// Burn-rate threshold (≥ this in both windows ⇒ firing).
    pub burn: f64,
}

impl SloRule {
    /// Parse a rule from whitespace-separated `key=value` tokens (see
    /// the module docs for the two forms).
    pub fn parse(spec: &str) -> Result<SloRule, String> {
        let mut name = None;
        let mut hist = None;
        let mut max_ns = None;
        let mut good = None;
        let mut total = None;
        let mut target = None;
        let mut fast_s = 10.0_f64;
        let mut slow_s = 60.0_f64;
        let mut burn = 1.0_f64;
        for tok in spec.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("slo: token '{tok}' is not key=value"))?;
            let num = || -> Result<f64, String> {
                v.parse::<f64>().map_err(|_| format!("slo: '{k}={v}' is not a number"))
            };
            match k {
                "name" => name = Some(v.to_string()),
                "hist" => hist = Some(v.to_string()),
                "max_ns" => max_ns = Some(num()? as u64),
                "max_us" => max_ns = Some((num()? * 1e3) as u64),
                "max_ms" => max_ns = Some((num()? * 1e6) as u64),
                "good" => good = Some(v.to_string()),
                "total" => total = Some(v.to_string()),
                "target" => target = Some(num()?),
                "fast" => fast_s = num()?,
                "slow" => slow_s = num()?,
                "burn" => burn = num()?,
                _ => return Err(format!("slo: unknown key '{k}'")),
            }
        }
        let name = name.ok_or("slo: missing name=")?;
        let target = target.ok_or("slo: missing target=")?;
        if !(0.0 < target && target < 1.0) {
            return Err(format!("slo: target must be in (0,1), got {target}"));
        }
        if !(fast_s > 0.0 && slow_s >= fast_s) {
            return Err(format!(
                "slo: need 0 < fast <= slow, got fast={fast_s} slow={slow_s}"
            ));
        }
        if burn <= 0.0 {
            return Err(format!("slo: burn must be positive, got {burn}"));
        }
        let objective = match (hist, max_ns, good, total) {
            (Some(hist), Some(max_ns), None, None) => Objective::Latency { hist, max_ns },
            (None, None, Some(good), Some(total)) => Objective::Ratio { good, total },
            (Some(_), None, ..) => return Err("slo: hist= needs max_us= (or max_ms=/max_ns=)".into()),
            _ => {
                return Err(
                    "slo: give either hist=+max_us= or good=+total=, not a mix".into(),
                )
            }
        };
        Ok(SloRule { name, objective, target, fast_ms: (fast_s * 1e3) as u64, slow_ms: (slow_s * 1e3) as u64, burn })
    }
}

/// The latest evaluation of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// Rule name.
    pub name: String,
    /// Firing right now (both windows burning ≥ threshold).
    pub firing: bool,
    /// Fired at any point since the engine started (latched).
    pub ever_fired: bool,
    /// Error rate over the fast window.
    pub fast_error_rate: f64,
    /// Error rate over the slow window.
    pub slow_error_rate: f64,
    /// Burn rate over the fast window (`error / (1 − target)`).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// The rule's burn-rate threshold, echoed for dashboards.
    pub burn_threshold: f64,
}

/// Evaluates a set of [`SloRule`]s against a window store.
pub struct SloEngine {
    rules: Vec<SloRule>,
    state: Mutex<Vec<AlertStatus>>,
}

impl SloEngine {
    /// An engine over `rules` (empty is fine: nothing ever fires).
    pub fn new(rules: Vec<SloRule>) -> Self {
        let state = rules
            .iter()
            .map(|r| AlertStatus {
                name: r.name.clone(),
                firing: false,
                ever_fired: false,
                fast_error_rate: 0.0,
                slow_error_rate: 0.0,
                fast_burn: 0.0,
                slow_burn: 0.0,
                burn_threshold: r.burn,
            })
            .collect();
        Self { rules, state: Mutex::new(state) }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Re-evaluate every rule against `window` (call once per tick).
    /// Returns the updated statuses.
    pub fn evaluate(&self, window: &WindowStore) -> Vec<AlertStatus> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for (rule, st) in self.rules.iter().zip(state.iter_mut()) {
            let fast = error_rate(&rule.objective, window, rule.fast_ms);
            let slow = error_rate(&rule.objective, window, rule.slow_ms);
            let budget = 1.0 - rule.target;
            st.fast_error_rate = fast;
            st.slow_error_rate = slow;
            st.fast_burn = fast / budget;
            st.slow_burn = slow / budget;
            st.firing = st.fast_burn >= rule.burn && st.slow_burn >= rule.burn;
            st.ever_fired |= st.firing;
        }
        state.clone()
    }

    /// Statuses from the most recent [`SloEngine::evaluate`] call.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Whether any rule is firing right now.
    pub fn any_firing(&self) -> bool {
        self.statuses().iter().any(|s| s.firing)
    }

    /// Whether any rule has ever fired (the `--slo-fail` latch).
    pub fn any_ever_fired(&self) -> bool {
        self.statuses().iter().any(|s| s.ever_fired)
    }

    /// The `/alerts` document: a JSON array of alert statuses.
    pub fn alerts_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_array();
        for s in self.statuses() {
            w.begin_object();
            w.key("name");
            w.string(&s.name);
            w.key("firing");
            w.boolean(s.firing);
            w.key("ever_fired");
            w.boolean(s.ever_fired);
            w.key("fast_error_rate");
            w.number_f64(s.fast_error_rate);
            w.key("slow_error_rate");
            w.number_f64(s.slow_error_rate);
            w.key("fast_burn");
            w.number_f64(s.fast_burn);
            w.key("slow_burn");
            w.number_f64(s.slow_burn);
            w.key("burn_threshold");
            w.number_f64(s.burn_threshold);
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine").field("rules", &self.rules.len()).finish()
    }
}

/// Error rate for an objective over the trailing `window_ms`.
/// No data ⇒ 0.0 (absence of traffic does not burn budget).
fn error_rate(objective: &Objective, window: &WindowStore, window_ms: u64) -> f64 {
    let ticks = window.ticks_for_ms(window_ms);
    match objective {
        Objective::Latency { hist, max_ns } => {
            match window.rolling(hist, ticks).map(|r| r.kind) {
                Some(RollingKind::Hist { snap, .. }) if snap.count > 0 => {
                    snap.frac_above(*max_ns)
                }
                _ => 0.0,
            }
        }
        Objective::Ratio { good, total } => {
            let read = |name: &str| match window.rolling(name, ticks).map(|r| r.kind) {
                Some(RollingKind::Counter { delta, .. }) => delta,
                _ => 0,
            };
            let t = read(total);
            if t == 0 {
                return 0.0;
            }
            let g = read(good).min(t);
            1.0 - g as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::window::WindowConfig;

    fn store() -> WindowStore {
        WindowStore::new(WindowConfig { tick_ms: 1_000, capacity: 64 })
    }

    #[test]
    fn parses_latency_and_ratio_rules() {
        let r = SloRule::parse(
            "name=search_p99 hist=sim.search_ns max_us=250 target=0.99 fast=10 slow=60 burn=2",
        )
        .unwrap();
        assert_eq!(r.name, "search_p99");
        assert_eq!(
            r.objective,
            Objective::Latency { hist: "sim.search_ns".into(), max_ns: 250_000 }
        );
        assert_eq!((r.fast_ms, r.slow_ms, r.burn), (10_000, 60_000, 2.0));

        let r = SloRule::parse(
            "name=bookings good=req{outcome=\"booked\"} total=req_all target=0.9",
        )
        .unwrap();
        assert_eq!(
            r.objective,
            Objective::Ratio { good: "req{outcome=\"booked\"}".into(), total: "req_all".into() }
        );
        assert_eq!((r.fast_ms, r.slow_ms, r.burn), (10_000, 60_000, 1.0));
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "hist=x max_us=1 target=0.9",              // no name
            "name=a hist=x target=0.9",                // hist without threshold
            "name=a good=g target=0.9",                // ratio missing total
            "name=a hist=x max_us=1 good=g total=t target=0.9", // mixed
            "name=a hist=x max_us=1 target=1.5",       // target out of range
            "name=a hist=x max_us=1 target=0.9 fast=60 slow=10", // fast > slow
            "name=a hist=x max_us=1 target=0.9 burn=0", // non-positive burn
            "name=a hist=x max_us=abc target=0.9",     // not a number
            "name=a frobnicate=1 target=0.9",          // unknown key
            "name=a notkeyvalue target=0.9",           // not key=value
        ] {
            assert!(SloRule::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn latency_rule_fires_on_sustained_slowness_and_clears() {
        let reg = Registry::new();
        let w = store();
        let h = reg.histogram("lat_ns");
        let rule = SloRule::parse(
            "name=p99 hist=lat_ns max_us=1 target=0.9 fast=2 slow=5 burn=1",
        )
        .unwrap();
        let slo = SloEngine::new(vec![rule]);

        // Healthy: everything below 1 µs.
        for _ in 0..5 {
            for _ in 0..100 {
                h.record(100);
            }
            w.tick(&reg);
            let st = slo.evaluate(&w);
            assert!(!st[0].firing, "healthy traffic must not fire: {st:?}");
        }

        // Sustained slowness: everything above the threshold.
        let mut fired = false;
        for _ in 0..6 {
            for _ in 0..100 {
                h.record(5_000_000);
            }
            w.tick(&reg);
            fired |= slo.evaluate(&w)[0].firing;
        }
        assert!(fired, "sustained slowness must fire");
        assert!(slo.any_ever_fired());

        // Recovery: fast window clears before the slow one, and the
        // alert stops firing while ever_fired stays latched.
        for _ in 0..5 {
            for _ in 0..100 {
                h.record(100);
            }
            w.tick(&reg);
            slo.evaluate(&w);
        }
        let st = slo.statuses();
        assert!(!st[0].firing, "alert must clear after recovery: {st:?}");
        assert!(st[0].ever_fired, "the latch must survive recovery");
    }

    #[test]
    fn ratio_rule_uses_good_over_total() {
        let reg = Registry::new();
        let w = store();
        let good = reg.counter("req_good");
        let total = reg.counter("req_total");
        let rule =
            SloRule::parse("name=succ good=req_good total=req_total target=0.5 fast=1 slow=2 burn=1")
                .unwrap();
        let slo = SloEngine::new(vec![rule]);

        // 9/10 good: error 0.1 < budget 0.5 ⇒ quiet.
        good.add(9);
        total.add(10);
        w.tick(&reg);
        assert!(!slo.evaluate(&w)[0].firing);

        // 1/10 good: error 0.9, burn 1.8 ≥ 1 in both windows ⇒ fires.
        good.add(1);
        total.add(10);
        w.tick(&reg);
        let st = slo.evaluate(&w);
        assert!(st[0].firing, "{st:?}");
        assert!(st[0].fast_burn > 1.0);
    }

    #[test]
    fn no_traffic_burns_no_budget() {
        let reg = Registry::new();
        let w = store();
        reg.histogram("quiet_ns");
        let rule =
            SloRule::parse("name=q hist=quiet_ns max_us=1 target=0.99 fast=1 slow=2 burn=1").unwrap();
        let slo = SloEngine::new(vec![rule]);
        w.tick(&reg);
        let st = slo.evaluate(&w);
        assert!(!st[0].firing);
        assert_eq!(st[0].fast_error_rate, 0.0);
    }

    #[test]
    fn alerts_json_is_parseable() {
        let rule =
            SloRule::parse("name=a hist=x max_us=1 target=0.9 fast=1 slow=2 burn=1").unwrap();
        let slo = SloEngine::new(vec![rule]);
        let doc = crate::json::parse(&slo.alerts_json()).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(arr[0].get("firing"), Some(&crate::json::JsonValue::Bool(false)));
    }
}
