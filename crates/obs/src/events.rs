//! The wide-event plane: one canonical record per request lifecycle.
//!
//! Metrics aggregate and the flight recorder tail-samples; neither can
//! answer *"why was request R rejected?"*. This module can: the
//! dispatch pipeline emits exactly one [`EventRecord`] per simulated
//! request — outcome, typed rejection reason, search tier, candidate
//! count, batch-window id and latencies — and the records flow into a
//! bounded global ring for the `/debug/events` tail and into segmented
//! JSONL on disk (`xar simulate --events-out`) for the `xar logs`
//! forensics CLI.
//!
//! The recording discipline matches the PR-2 flight recorder
//! ([`crate::trace`]):
//!
//! * **Disabled is free.** [`emit`] starts with one relaxed atomic
//!   load; when the sink is off it returns before touching any
//!   thread-local — no locks, no allocation (pinned ≤ 50 ns and
//!   0 allocations per event by `tests/events_overhead`).
//! * **No locks per event.** Enabled emits push onto a thread-local
//!   buffer; the global ring mutex is taken once per
//!   [`FLUSH_THRESHOLD`] events (and once more at [`flush_thread`]).
//! * **Conserved drop accounting.** The ring is bounded; eviction
//!   increments `dropped`, and `kept + dropped == emitted` always
//!   holds in a [`snapshot`] taken after flushes — the invariant the
//!   end-to-end conservation test reconciles against the simulator's
//!   outcome counters.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{self, JsonValue, JsonWriter};

/// Enabled emits buffer thread-locally and publish to the global ring
/// every this many events.
pub const FLUSH_THRESHOLD: usize = 64;

/// Default global ring capacity (events kept for `/debug/events` and
/// an in-process [`snapshot`]).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Events per on-disk segment: the JSONL writer emits a `segment`
/// checkpoint line before every block of this many events, so a
/// truncated file can be recovered segment-by-segment.
pub const SEGMENT_LEN: usize = 4_096;

/// On-disk format version written to the `meta` line.
pub const FORMAT_VERSION: u64 = 1;

/// Sentinel ride id for events that booked no ride.
pub const NO_RIDE: u64 = u64::MAX;

/// One wide event: the full decision record of a single request
/// lifecycle. All fields are plain `Copy` data (`&'static str` for the
/// enums), so constructing and emitting one never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Request (trip) id.
    pub request_id: u64,
    /// Simulated arrival time of the request, seconds.
    pub sim_t_s: f64,
    /// Lifecycle outcome: `"booked"`, `"created"` or `"unservable"`.
    pub outcome: &'static str,
    /// Typed rejection-reason code (`xar_core::Reason::code()`);
    /// `"served"` for booked requests.
    pub reason: &'static str,
    /// Search tier (1-based fan-out bucket; 0 = search never reached
    /// candidate generation).
    pub tier: u8,
    /// Candidate-set size `|R1|` of the (first) search.
    pub candidates: u32,
    /// Feasible matches the (first) search returned.
    pub matches: u32,
    /// Batch-window id the request was decided in (per-worker
    /// sequence; the immediate dispatcher gives each request its own).
    pub window: u64,
    /// Search calls performed for this request (re-searches included).
    pub searches: u32,
    /// Booking attempts that failed stale before the outcome.
    pub stale: u32,
    /// Booked ride id, or [`NO_RIDE`].
    pub ride: u64,
    /// Search latency, nanoseconds (first search).
    pub search_ns: u64,
    /// Booking latency, nanoseconds (successful attempt only; 0
    /// otherwise).
    pub book_ns: u64,
    /// Rider walking distance for the booked match, metres (0 when not
    /// booked).
    pub walk_m: f64,
    /// Realised detour of the booked match, metres (0 when not
    /// booked).
    pub detour_m: f64,
    /// Rider wait from request to scheduled pick-up, seconds (0 when
    /// not booked).
    pub wait_s: f64,
}

impl EventRecord {
    /// A record with every field zeroed and the given id — callers
    /// fill in what they know.
    pub fn new(request_id: u64) -> Self {
        EventRecord {
            request_id,
            sim_t_s: 0.0,
            outcome: "",
            reason: "",
            tier: 0,
            candidates: 0,
            matches: 0,
            window: 0,
            searches: 0,
            stale: 0,
            ride: NO_RIDE,
            search_ns: 0,
            book_ns: 0,
            walk_m: 0.0,
            detour_m: 0.0,
            wait_s: 0.0,
        }
    }
}

/// Bounded ring plus the conserved accounting counters.
struct Ring {
    events: VecDeque<EventRecord>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

/// The global wide-event sink: an enabled flag read on every emit and
/// a bounded ring behind one mutex taken only on (amortized) flushes.
pub struct EventSink {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

thread_local! {
    static LOCAL: RefCell<Vec<EventRecord>> = const { RefCell::new(Vec::new()) };
}

static SINK: OnceLock<EventSink> = OnceLock::new();

/// The process-wide sink. Starts **disabled** with
/// [`DEFAULT_CAPACITY`].
pub fn sink() -> &'static EventSink {
    SINK.get_or_init(|| EventSink {
        enabled: AtomicBool::new(false),
        ring: Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            emitted: 0,
            dropped: 0,
        }),
    })
}

/// Point-in-time copy of the sink's state. `kept + dropped ==
/// emitted` when every emitting thread has [`flush_thread`]-ed.
#[derive(Debug, Clone)]
pub struct EventsSnapshot {
    /// Events still in the ring, oldest first.
    pub events: Vec<EventRecord>,
    /// Events published to the ring since the last [`configure`].
    pub emitted: u64,
    /// Events evicted from the bounded ring.
    pub dropped: u64,
}

impl EventsSnapshot {
    /// Events retained (`emitted - dropped`).
    pub fn kept(&self) -> u64 {
        self.events.len() as u64
    }
}

/// Turn the sink on or off. Off is the default; emits while off cost
/// one relaxed load.
pub fn set_enabled(on: bool) {
    sink().enabled.store(on, Ordering::Relaxed);
}

/// Whether the sink currently accepts events.
pub fn is_enabled() -> bool {
    sink().enabled.load(Ordering::Relaxed)
}

/// Resize the ring to `capacity` events and reset the ring plus its
/// accounting to empty. Call once before a run.
pub fn configure(capacity: usize) {
    let mut ring = sink().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.events.clear();
    ring.capacity = capacity.max(1);
    ring.emitted = 0;
    ring.dropped = 0;
}

/// Record one wide event. When the sink is disabled this is one
/// relaxed load and a branch — no thread-local access, no allocation.
#[inline]
pub fn emit(record: EventRecord) {
    if !sink().enabled.load(Ordering::Relaxed) {
        return;
    }
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.push(record);
        if buf.len() >= FLUSH_THRESHOLD {
            publish(&mut buf);
        }
    });
}

/// Publish this thread's buffered events to the global ring. Call at
/// the end of every emitting thread (the dispatch loop does, for the
/// driver thread and each parallel worker).
pub fn flush_thread() {
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.is_empty() {
            publish(&mut buf);
        }
    });
}

fn publish(buf: &mut Vec<EventRecord>) {
    let mut ring = sink().ring.lock().unwrap_or_else(|e| e.into_inner());
    for rec in buf.drain(..) {
        ring.emitted += 1;
        ring.events.push_back(rec);
    }
    while ring.events.len() > ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
}

/// Copy out the ring and its accounting.
pub fn snapshot() -> EventsSnapshot {
    let ring = sink().ring.lock().unwrap_or_else(|e| e.into_inner());
    EventsSnapshot {
        events: ring.events.iter().copied().collect(),
        emitted: ring.emitted,
        dropped: ring.dropped,
    }
}

fn write_event_line(out: &mut String, e: &EventRecord) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("type");
    w.string("event");
    w.key("id");
    w.number_u64(e.request_id);
    w.key("t_s");
    w.number_f64(e.sim_t_s);
    w.key("outcome");
    w.string(e.outcome);
    w.key("reason");
    w.string(e.reason);
    w.key("tier");
    w.number_u64(u64::from(e.tier));
    w.key("candidates");
    w.number_u64(u64::from(e.candidates));
    w.key("matches");
    w.number_u64(u64::from(e.matches));
    w.key("window");
    w.number_u64(e.window);
    w.key("searches");
    w.number_u64(u64::from(e.searches));
    w.key("stale");
    w.number_u64(u64::from(e.stale));
    w.key("ride");
    if e.ride == NO_RIDE {
        w.null();
    } else {
        w.number_u64(e.ride);
    }
    w.key("search_ns");
    w.number_u64(e.search_ns);
    w.key("book_ns");
    w.number_u64(e.book_ns);
    w.key("walk_m");
    w.number_f64(e.walk_m);
    w.key("detour_m");
    w.number_f64(e.detour_m);
    w.key("wait_s");
    w.number_f64(e.wait_s);
    w.end_object();
    out.push_str(&w.finish());
    out.push('\n');
}

/// Render a snapshot as the segmented JSONL format `xar logs` reads:
/// a `meta` header, a `segment` checkpoint line before every
/// [`SEGMENT_LEN`] events, one `event` line per record, and a final
/// `drops` accounting line (`kept + dropped == emitted`).
pub fn to_jsonl(snap: &EventsSnapshot) -> String {
    let mut out = String::new();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("type");
    w.string("meta");
    w.key("version");
    w.number_u64(FORMAT_VERSION);
    w.key("segment_len");
    w.number_u64(SEGMENT_LEN as u64);
    w.end_object();
    out.push_str(&w.finish());
    out.push('\n');
    for (i, e) in snap.events.iter().enumerate() {
        if i % SEGMENT_LEN == 0 {
            let mut s = JsonWriter::new();
            s.begin_object();
            s.key("type");
            s.string("segment");
            s.key("seq");
            s.number_u64((i / SEGMENT_LEN) as u64);
            s.key("start");
            s.number_u64(i as u64);
            s.key("len");
            s.number_u64(SEGMENT_LEN.min(snap.events.len() - i) as u64);
            s.end_object();
            out.push_str(&s.finish());
            out.push('\n');
        }
        write_event_line(&mut out, e);
    }
    let mut f = JsonWriter::new();
    f.begin_object();
    f.key("type");
    f.string("drops");
    f.key("emitted");
    f.number_u64(snap.emitted);
    f.key("dropped");
    f.number_u64(snap.dropped);
    f.key("kept");
    f.number_u64(snap.kept());
    f.end_object();
    out.push_str(&f.finish());
    out.push('\n');
    out
}

/// One event as parsed back from JSONL — the owned-string twin of
/// [`EventRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Request (trip) id.
    pub request_id: u64,
    /// Simulated arrival time, seconds.
    pub sim_t_s: f64,
    /// Lifecycle outcome.
    pub outcome: String,
    /// Rejection-reason code (`"served"` for booked requests).
    pub reason: String,
    /// Search tier.
    pub tier: u64,
    /// Candidate-set size.
    pub candidates: u64,
    /// Matches returned.
    pub matches: u64,
    /// Batch-window id.
    pub window: u64,
    /// Search calls performed.
    pub searches: u64,
    /// Stale booking attempts.
    pub stale: u64,
    /// Booked ride id, if any.
    pub ride: Option<u64>,
    /// Search latency, nanoseconds.
    pub search_ns: u64,
    /// Booking latency, nanoseconds.
    pub book_ns: u64,
    /// Walking distance, metres.
    pub walk_m: f64,
    /// Realised detour, metres.
    pub detour_m: f64,
    /// Wait to pick-up, seconds.
    pub wait_s: f64,
}

/// A parsed event log: the decoded events plus the drop accounting
/// from the footer.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Decoded events, file order.
    pub events: Vec<ParsedEvent>,
    /// Total events published at write time.
    pub emitted: u64,
    /// Events evicted before the file was written.
    pub dropped: u64,
}

impl EventLog {
    /// `(code, count)` per distinct reason, most frequent first (ties
    /// by code).
    pub fn reason_histogram(&self) -> Vec<(String, u64)> {
        histogram(self.events.iter().map(|e| e.reason.as_str()))
    }

    /// `(outcome, count)` per distinct outcome, most frequent first.
    pub fn outcome_histogram(&self) -> Vec<(String, u64)> {
        histogram(self.events.iter().map(|e| e.outcome.as_str()))
    }
}

fn histogram<'a>(keys: impl Iterator<Item = &'a str>) -> Vec<(String, u64)> {
    let mut counts: Vec<(String, u64)> = Vec::new();
    for k in keys {
        match counts.iter_mut().find(|(name, _)| name == k) {
            Some((_, n)) => *n += 1,
            None => counts.push((k.to_string(), 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
}

fn field_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("event line missing numeric field {key:?}"))
}

fn field_f64(obj: &JsonValue, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("event line missing numeric field {key:?}"))
}

fn field_str(obj: &JsonValue, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("event line missing string field {key:?}"))
}

/// Parse the segmented JSONL format back into an [`EventLog`].
///
/// Validates the envelope: a `meta` line must come first, every line
/// must carry a known `type`, and the `drops` footer's `kept` must
/// equal the number of event lines (conservation of the on-disk
/// record).
pub fn parse_jsonl(text: &str) -> Result<EventLog, String> {
    let mut log = EventLog::default();
    let mut saw_meta = false;
    let mut saw_drops = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = field_str(&v, "type").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match ty.as_str() {
            "meta" => {
                let version = field_u64(&v, "version")
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if version > FORMAT_VERSION {
                    return Err(format!("unsupported events format version {version}"));
                }
                saw_meta = true;
            }
            "segment" => {}
            "event" => {
                if !saw_meta {
                    return Err("event line before meta header".to_string());
                }
                let parse = |v: &JsonValue| -> Result<ParsedEvent, String> {
                    Ok(ParsedEvent {
                        request_id: field_u64(v, "id")?,
                        sim_t_s: field_f64(v, "t_s")?,
                        outcome: field_str(v, "outcome")?,
                        reason: field_str(v, "reason")?,
                        tier: field_u64(v, "tier")?,
                        candidates: field_u64(v, "candidates")?,
                        matches: field_u64(v, "matches")?,
                        window: field_u64(v, "window")?,
                        searches: field_u64(v, "searches")?,
                        stale: field_u64(v, "stale")?,
                        ride: v.get("ride").and_then(JsonValue::as_u64),
                        search_ns: field_u64(v, "search_ns")?,
                        book_ns: field_u64(v, "book_ns")?,
                        walk_m: field_f64(v, "walk_m")?,
                        detour_m: field_f64(v, "detour_m")?,
                        wait_s: field_f64(v, "wait_s")?,
                    })
                };
                log.events.push(parse(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
            }
            "drops" => {
                log.emitted = field_u64(&v, "emitted")
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                log.dropped = field_u64(&v, "dropped")
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                let kept = field_u64(&v, "kept")
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if kept != log.events.len() as u64 {
                    return Err(format!(
                        "drops line claims {kept} kept events, file has {}",
                        log.events.len()
                    ));
                }
                if log.emitted != kept + log.dropped {
                    return Err(format!(
                        "drop accounting violated: emitted {} != kept {kept} + dropped {}",
                        log.emitted, log.dropped
                    ));
                }
                saw_drops = true;
            }
            other => {
                return Err(format!("line {}: unknown record type {other:?}", lineno + 1));
            }
        }
    }
    if !saw_meta {
        return Err("not an events file: no meta header".to_string());
    }
    if !saw_drops {
        return Err("truncated events file: no drops footer".to_string());
    }
    Ok(log)
}

/// JSON body for the `/debug/events` endpoint: the sink state, the
/// conserved accounting, and the newest `tail_len` ring events.
pub fn debug_events_json(tail_len: usize) -> String {
    let snap = snapshot();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("enabled");
    w.boolean(is_enabled());
    w.key("emitted");
    w.number_u64(snap.emitted);
    w.key("dropped");
    w.number_u64(snap.dropped);
    w.key("kept");
    w.number_u64(snap.kept());
    w.key("tail");
    let start = snap.events.len().saturating_sub(tail_len);
    let mut tail = String::new();
    for e in &snap.events[start..] {
        write_event_line(&mut tail, e);
    }
    w.begin_array();
    for line in tail.lines() {
        w.raw(line);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The sink is process-global; tests that reconfigure it must not
    // interleave.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn rec(id: u64, outcome: &'static str, reason: &'static str) -> EventRecord {
        EventRecord { outcome, reason, ..EventRecord::new(id) }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = lock();
        configure(16);
        set_enabled(false);
        emit(rec(1, "booked", "served"));
        flush_thread();
        let snap = snapshot();
        assert_eq!(snap.emitted, 0);
        assert_eq!(snap.kept(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_conserves_accounting() {
        let _g = lock();
        configure(8);
        set_enabled(true);
        for i in 0..20 {
            emit(rec(i, "created", "no_cluster_candidates"));
        }
        flush_thread();
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.emitted, 20);
        assert_eq!(snap.kept(), 8);
        assert_eq!(snap.dropped, 12);
        assert_eq!(snap.kept() + snap.dropped, snap.emitted);
        // Oldest evicted: the ring holds the newest 8 ids.
        assert_eq!(snap.events[0].request_id, 12);
        assert_eq!(snap.events[7].request_id, 19);
    }

    #[test]
    fn jsonl_round_trips_and_validates() {
        let _g = lock();
        configure(64);
        set_enabled(true);
        for i in 0..10 {
            let mut r = rec(i, if i % 2 == 0 { "booked" } else { "created" }, if i % 2 == 0 { "served" } else { "capacity_full" });
            r.sim_t_s = i as f64 * 0.5;
            r.candidates = 3;
            r.matches = u32::from(i % 2 == 0);
            r.ride = if i % 2 == 0 { i * 7 } else { NO_RIDE };
            emit(r);
        }
        flush_thread();
        set_enabled(false);
        let snap = snapshot();
        let text = to_jsonl(&snap);
        let log = parse_jsonl(&text).expect("round trip");
        assert_eq!(log.events.len(), 10);
        assert_eq!(log.emitted, 10);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events[0].ride, Some(0));
        assert_eq!(log.events[1].ride, None);
        assert_eq!(log.events[3].reason, "capacity_full");
        let hist = log.reason_histogram();
        assert_eq!(hist[0], ("capacity_full".to_string(), 5));
    }

    #[test]
    fn parse_rejects_corruption() {
        assert!(parse_jsonl("").is_err(), "empty file");
        assert!(parse_jsonl("{\"type\":\"event\"}").is_err(), "event before meta");
        assert!(parse_jsonl("not json\n").is_err(), "invalid JSON");
        let ok = "{\"type\":\"meta\",\"version\":1}\n{\"type\":\"drops\",\"emitted\":0,\"dropped\":0,\"kept\":0}\n";
        assert!(parse_jsonl(ok).is_ok());
        let missing_footer = "{\"type\":\"meta\",\"version\":1}\n";
        assert!(parse_jsonl(missing_footer).is_err(), "no footer");
        let bad_kept = "{\"type\":\"meta\",\"version\":1}\n{\"type\":\"drops\",\"emitted\":3,\"dropped\":1,\"kept\":1}\n";
        assert!(parse_jsonl(bad_kept).is_err(), "kept mismatch");
    }

    #[test]
    fn debug_json_reports_tail() {
        let _g = lock();
        configure(32);
        set_enabled(true);
        for i in 0..5 {
            emit(rec(i, "booked", "served"));
        }
        flush_thread();
        set_enabled(false);
        let body = debug_events_json(2);
        let v = json::parse(&body).expect("valid JSON");
        assert_eq!(v.get("kept").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(v.get("tail").and_then(JsonValue::as_array).map(<[JsonValue]>::len), Some(2));
    }
}
