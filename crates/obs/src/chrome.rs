//! Chrome trace-event export for the flight recorder, plus the
//! reader/timeline tooling the `xar trace` CLI and the CI trace
//! checker are built on.
//!
//! [`export_chrome`] renders a [`TraceSnapshot`] as Chrome trace-event
//! JSON (the "JSON Array Format" with a top-level object), loadable in
//! Perfetto or `chrome://tracing`:
//!
//! * span Begin/End events → phases `"B"` / `"E"` (`ts` in µs, one
//!   lane per recording thread via `tid`);
//! * instants and lifecycle events → phase `"i"`, scope `"t"`;
//! * every event's `args` carries `trace` / `span` / `parent` ids plus
//!   the recorded attributes, so causality survives the export;
//! * a top-level `"xar"` object records the recorder's counters
//!   (started/kept/sampled-out traces, dropped events) and sampling
//!   configuration — the file is self-describing about what it omits.
//!
//! [`parse_chrome`] + [`Timeline::build`] invert the export: they
//! re-match `B`/`E` pairs per thread and rebuild span trees with
//! per-span self-time. Export → parse is round-trip property-tested in
//! `tests/trace_properties.rs`.
//!
//! ```
//! use xar_obs::trace::{Recorder, TraceConfig};
//! use xar_obs::chrome::{export_chrome, parse_chrome, Timeline};
//!
//! let rec = Recorder::new(TraceConfig::keep_all());
//! {
//!     let _root = rec.start_root("request");
//!     let _child = rec.child_span("search");
//! }
//! let json = export_chrome(&rec.snapshot());
//! let parsed = parse_chrome(&json).unwrap();
//! let timelines = Timeline::build(&parsed);
//! assert_eq!(timelines.len(), 1);
//! assert_eq!(timelines[0].root.name, "request");
//! assert_eq!(timelines[0].root.children[0].name, "search");
//! ```

use crate::json::{parse, JsonValue, JsonWriter};
use crate::trace::{AttrValue, EventKind, TraceSnapshot};

/// Attributes read back from a trace file: `args` entries minus the
/// causality ids.
pub type Attrs = Vec<(String, JsonValue)>;

/// An instant as it appears on a timeline: name, timestamp (µs), attrs.
pub type InstantRecord = (String, f64, Attrs);

/// Render a snapshot as Chrome trace-event JSON.
pub fn export_chrome(snap: &TraceSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("traceEvents");
    w.begin_array();
    // Merge span events and lifecycle instants, ordered by timestamp
    // (stable, so per-thread recording order is preserved on ties).
    let mut events: Vec<&crate::trace::TraceEvent> = snap
        .traces
        .iter()
        .flat_map(|t| t.events.iter())
        .chain(snap.lifecycle.iter())
        .collect();
    events.sort_by_key(|e| e.ts_ns);
    for ev in events {
        w.begin_object();
        w.key("name");
        w.string(ev.name);
        w.key("ph");
        w.string(match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        });
        if ev.kind == EventKind::Instant {
            w.key("s");
            w.string("t"); // thread-scoped instant
        }
        w.key("ts");
        w.number_f64(ev.ts_ns as f64 / 1_000.0); // µs
        w.key("pid");
        w.number_u64(1);
        w.key("tid");
        w.number_u64(ev.tid);
        w.key("args");
        w.begin_object();
        w.key("trace");
        w.number_u64(ev.trace);
        if ev.span != 0 {
            w.key("span");
            w.number_u64(ev.span);
        }
        if ev.parent != 0 {
            w.key("parent");
            w.number_u64(ev.parent);
        }
        for (k, v) in ev.attrs.iter() {
            w.key(k);
            match v {
                AttrValue::U64(x) => w.number_u64(x),
                AttrValue::I64(x) => w.number_i64(x),
                AttrValue::F64(x) => w.number_f64(x),
                AttrValue::Str(x) => w.string(x),
            }
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    // Self-description: what the recorder kept, dropped and sampled.
    let st = snap.stats;
    w.key("xar");
    w.begin_object();
    w.key("started_traces");
    w.number_u64(st.started_traces);
    w.key("kept_traces");
    w.number_u64(st.kept_traces);
    w.key("sampled_out_traces");
    w.number_u64(st.sampled_out_traces);
    w.key("adopted_segments");
    w.number_u64(st.adopted_segments);
    w.key("dropped_events");
    w.number_u64(st.dropped_events);
    w.key("slow_threshold_ns");
    w.number_u64(st.slow_threshold_ns);
    w.key("sample_per_mille");
    w.number_u64(u64::from(st.sample_per_mille));
    w.end_object();
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One event read back from a Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// `"B"`, `"E"` or `"i"`.
    pub ph: String,
    /// Timestamp, microseconds.
    pub ts_us: f64,
    /// Thread lane.
    pub tid: u64,
    /// `args.trace` (0 if absent).
    pub trace: u64,
    /// `args.span` (0 if absent).
    pub span: u64,
    /// `args.parent` (0 if absent).
    pub parent: u64,
    /// Remaining `args` entries (attributes), in document order.
    pub attrs: Attrs,
}

/// A parsed trace file: the events plus the recorder's self-reported
/// counters from the `"xar"` block.
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    /// All events, in document order.
    pub events: Vec<ChromeEvent>,
    /// `xar.started_traces` (0 if the block is absent).
    pub started_traces: u64,
    /// `xar.kept_traces`.
    pub kept_traces: u64,
    /// `xar.sampled_out_traces`.
    pub sampled_out_traces: u64,
    /// `xar.dropped_events`.
    pub dropped_events: u64,
    /// Whether the `"xar"` self-description block (and its drop
    /// counter) was present at all.
    pub has_drop_counter: bool,
}

/// Parse Chrome trace-event JSON (as written by [`export_chrome`]).
pub fn parse_chrome(text: &str) -> Result<ChromeTrace, String> {
    let doc = parse(text)?;
    let events_json = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, ev) in events_json.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let ts_us = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let tid = ev.get("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        let (mut trace, mut span, mut parent) = (0u64, 0u64, 0u64);
        let mut attrs = Vec::new();
        if let Some(args) = ev.get("args").and_then(|v| v.as_object()) {
            for (k, v) in args {
                match k.as_str() {
                    "trace" => trace = v.as_u64().unwrap_or(0),
                    "span" => span = v.as_u64().unwrap_or(0),
                    "parent" => parent = v.as_u64().unwrap_or(0),
                    _ => attrs.push((k.clone(), v.clone())),
                }
            }
        }
        events.push(ChromeEvent { name, ph, ts_us, tid, trace, span, parent, attrs });
    }
    let xar = doc.get("xar");
    let counter = |key: &str| -> u64 {
        xar.and_then(|x| x.get(key)).and_then(|v| v.as_u64()).unwrap_or(0)
    };
    Ok(ChromeTrace {
        events,
        started_traces: counter("started_traces"),
        kept_traces: counter("kept_traces"),
        sampled_out_traces: counter("sampled_out_traces"),
        dropped_events: counter("dropped_events"),
        has_drop_counter: xar
            .map(|x| x.get("dropped_events").is_some())
            .unwrap_or(false),
    })
}

// ---------------------------------------------------------------------------
// Timelines
// ---------------------------------------------------------------------------

/// A reconstructed span: name, wall-clock bounds, children, and the
/// time not covered by any direct child (self-time).
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start, microseconds.
    pub start_us: f64,
    /// Duration, microseconds (≥ 0 for any trace this module exported).
    pub dur_us: f64,
    /// Duration minus the summed durations of direct children, µs.
    pub self_us: f64,
    /// Attributes from the span's End event.
    pub attrs: Attrs,
    /// Nested spans, in start order.
    pub children: Vec<SpanNode>,
    /// Instants recorded while this span was innermost.
    pub instants: Vec<InstantRecord>,
}

/// One complete per-trace timeline: a root span tree plus any
/// out-of-band lifecycle instants that arrived after the root closed.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Trace id.
    pub trace: u64,
    /// The root span (e.g. `request`).
    pub root: SpanNode,
    /// Lifecycle instants attached to the trace but outside the root
    /// span (name, ts µs, attrs).
    pub lifecycle: Vec<InstantRecord>,
}

impl Timeline {
    /// Rebuild per-trace span trees from a parsed Chrome trace by
    /// matching `B`/`E` pairs per thread lane. Unmatched events are
    /// skipped (an exported file from this module never produces any).
    /// Returns timelines sorted by root start time.
    pub fn build(trace: &ChromeTrace) -> Vec<Timeline> {
        // Per-tid open-span stack of partially built nodes.
        struct Open {
            node: SpanNode,
            trace: u64,
            parent_is_root: bool,
        }
        let mut stacks: std::collections::HashMap<u64, Vec<Open>> =
            std::collections::HashMap::new();
        let mut roots: Vec<(u64, SpanNode)> = Vec::new();
        let mut orphan_instants: Vec<(u64, InstantRecord)> = Vec::new();

        for ev in &trace.events {
            let stack = stacks.entry(ev.tid).or_default();
            match ev.ph.as_str() {
                "B" => {
                    stack.push(Open {
                        node: SpanNode {
                            name: ev.name.clone(),
                            start_us: ev.ts_us,
                            dur_us: 0.0,
                            self_us: 0.0,
                            attrs: Vec::new(),
                            children: Vec::new(),
                            instants: Vec::new(),
                        },
                        trace: ev.trace,
                        parent_is_root: stack.is_empty(),
                    });
                }
                "E" => {
                    let Some(mut open) = stack.pop() else { continue };
                    open.node.dur_us = (ev.ts_us - open.node.start_us).max(0.0);
                    open.node.attrs = ev.attrs.clone();
                    let child_total: f64 =
                        open.node.children.iter().map(|c| c.dur_us).sum();
                    open.node.self_us = (open.node.dur_us - child_total).max(0.0);
                    if open.parent_is_root {
                        roots.push((open.trace, open.node));
                    } else if let Some(parent) = stack.last_mut() {
                        parent.node.children.push(open.node);
                    }
                }
                "i" => {
                    if let Some(top) = stack.last_mut() {
                        top.node.instants.push((
                            ev.name.clone(),
                            ev.ts_us,
                            ev.attrs.clone(),
                        ));
                    } else {
                        orphan_instants.push((
                            ev.trace,
                            (ev.name.clone(), ev.ts_us, ev.attrs.clone()),
                        ));
                    }
                }
                _ => {}
            }
        }

        let mut timelines: Vec<Timeline> = roots
            .into_iter()
            .map(|(trace, root)| Timeline { trace, root, lifecycle: Vec::new() })
            .collect();
        timelines.sort_by(|a, b| {
            a.root
                .start_us
                .partial_cmp(&b.root.start_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (trace_id, instant) in orphan_instants {
            if let Some(t) = timelines.iter_mut().find(|t| t.trace == trace_id) {
                t.lifecycle.push(instant);
            }
        }
        timelines
    }

    /// Total events in the root tree (for reporting).
    pub fn span_count(&self) -> usize {
        fn walk(n: &SpanNode) -> usize {
            1 + n.children.iter().map(walk).sum::<usize>()
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AttrList, Recorder, TraceConfig};

    fn sample_snapshot() -> TraceSnapshot {
        let rec = Recorder::new(TraceConfig::keep_all());
        {
            let mut root = rec.start_root("request");
            root.attr("idx", 1u64);
            {
                let mut s = rec.child_span("search");
                s.attr("candidates", 5u64);
                drop(rec.child_span("enumerate"));
            }
            {
                let _b = rec.child_span("book");
                drop(rec.child_span("shortest_path"));
                drop(rec.child_span("shortest_path"));
            }
            rec.instant("offered", AttrList::new().with("matches", 2u64));
        }
        let trace_id = rec.snapshot().traces[0].trace;
        rec.lifecycle(trace_id, "picked_up", AttrList::new().with("sim_t_s", 12.5));
        rec.snapshot()
    }

    #[test]
    fn export_parse_round_trip() {
        let snap = sample_snapshot();
        let json = export_chrome(&snap);
        let parsed = parse_chrome(&json).expect("valid JSON");
        // Every B has a matching E per tid.
        let begins = parsed.events.iter().filter(|e| e.ph == "B").count();
        let ends = parsed.events.iter().filter(|e| e.ph == "E").count();
        assert_eq!(begins, ends);
        assert!(parsed.has_drop_counter);
        assert_eq!(parsed.kept_traces, 1);
    }

    #[test]
    fn timeline_rebuilds_nesting_and_self_time() {
        let snap = sample_snapshot();
        let parsed = parse_chrome(&export_chrome(&snap)).unwrap();
        let timelines = Timeline::build(&parsed);
        assert_eq!(timelines.len(), 1);
        let t = &timelines[0];
        assert_eq!(t.root.name, "request");
        let names: Vec<&str> = t.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["search", "book"]);
        assert_eq!(t.root.children[0].children[0].name, "enumerate");
        assert_eq!(t.root.children[1].children.len(), 2);
        // Self-time never exceeds duration, durations non-negative.
        fn check(n: &SpanNode) {
            assert!(n.dur_us >= 0.0);
            assert!(n.self_us >= 0.0);
            assert!(n.self_us <= n.dur_us + 1e-9);
            n.children.iter().for_each(check);
        }
        check(&t.root);
        // The instant landed inside the root; lifecycle arrived after.
        assert!(t.root.instants.iter().any(|(n, _, _)| n == "offered"));
        assert!(t.lifecycle.iter().any(|(n, _, _)| n == "picked_up"));
        assert_eq!(t.span_count(), 6);
    }

    #[test]
    fn parse_rejects_non_trace_json() {
        assert!(parse_chrome("[]").is_err());
        assert!(parse_chrome(r#"{"traceEvents": 3}"#).is_err());
        assert!(parse_chrome(r#"{"traceEvents": [{"ph":"B"}]}"#).is_err());
    }
}
