//! Embedded operational-plane HTTP server (std `TcpListener` only).
//!
//! [`serve`] binds a plain HTTP/1.1 listener and exposes the live
//! process over a handful of GET routes:
//!
//! * `/metrics` — Prometheus text ([`crate::promtext::render`]) of
//!   every registry series — latency families carry OpenMetrics
//!   **exemplars** linking slow samples to flight-recorder trace ids
//!   ([`crate::profile::exemplar_snapshot`]) — plus `xar_rolling`
//!   gauges (rolling-window p50/p99/rates from the [`WindowStore`])
//!   and `xar_alert_*` gauges mirroring the SLO engine.
//! * `/snapshot` — the registry's cumulative JSON snapshot.
//! * `/health` — `200 ok` when no alert is firing, `503` naming the
//!   firing alerts otherwise (load-balancer / CI friendly). When
//!   [`OpsPlane::max_backlog`] is set, a snapshot retire backlog above
//!   it also turns health `503` (stuck epoch reader).
//! * `/alerts` — the SLO engine's status array as JSON.
//! * `/debug/profile` — the aggregated span profile plus per-span
//!   allocation attribution ([`crate::profile::debug_profile_json`]).
//! * `/debug/events` — the wide-event sink's state and newest ring
//!   events ([`crate::events::debug_events_json`]).
//! * `/debug/epoch`, `/debug/shards` — live introspection JSON from
//!   the embedding process via [`DebugHooks`] (the `xar-core` epoch
//!   domain and shard map, without `xar-obs` depending on it).
//!
//! A background ticker thread advances the window store and
//! re-evaluates SLO rules every `window.tick_ms()` milliseconds, so
//! scrapes and health checks read pre-computed state. Requests are
//! served sequentially from the accept thread — scrape traffic, not a
//! web service. [`OpsServer::shutdown`] stops both threads (the accept
//! loop is woken by a self-connect).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::promtext;
use crate::registry::Registry;
use crate::slo::SloEngine;
use crate::window::{RollingKind, WindowStore};

/// The rolling windows exported on `/metrics`, as `(label, millis)`.
pub const ROLLING_WINDOWS: &[(&str, u64)] = &[("1s", 1_000), ("10s", 10_000), ("60s", 60_000)];

/// A callback producing a JSON document for one `/debug/*` route.
pub type DebugJsonFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Introspection callbacks the embedding process wires into the ops
/// server. `xar-obs` sits below `xar-core`, so the server cannot reach
/// the epoch domain or the shard map itself — the process hands it
/// closures instead. Unset hooks answer `404`.
#[derive(Clone, Default)]
pub struct DebugHooks {
    /// `/debug/epoch` — epoch-reclamation domain state (e.g.
    /// `xar_core::snapshot::epoch_debug`).
    pub epoch: Option<DebugJsonFn>,
    /// `/debug/shards` — per-shard occupancy / versions / backlogs
    /// (e.g. `ShardedXarEngine::shard_debug_json`).
    pub shards: Option<DebugJsonFn>,
}

impl std::fmt::Debug for DebugHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DebugHooks")
            .field("epoch", &self.epoch.is_some())
            .field("shards", &self.shards.is_some())
            .finish()
    }
}

/// Everything the ops plane serves: the metric registry, its window
/// store, and the SLO engine evaluated over it.
#[derive(Clone)]
pub struct OpsPlane {
    /// The live metric registry.
    pub registry: Arc<Registry>,
    /// Rolling-window state over `registry`.
    pub window: Arc<WindowStore>,
    /// SLO rules evaluated against `window`.
    pub slo: Arc<SloEngine>,
    /// Live-introspection callbacks for the `/debug/*` routes.
    pub debug: DebugHooks,
    /// When set, `/health` also reports `503` while the
    /// `engine.snapshot_backlog` gauge exceeds this many retired,
    /// unreclaimed snapshots — the signature of a reader stuck pinned
    /// to an old epoch.
    pub max_backlog: Option<i64>,
}

impl OpsPlane {
    /// An ops plane with no debug hooks and no backlog threshold.
    pub fn new(registry: Arc<Registry>, window: Arc<WindowStore>, slo: Arc<SloEngine>) -> Self {
        Self { registry, window, slo, debug: DebugHooks::default(), max_backlog: None }
    }

    /// One tick: advance the window store and re-evaluate SLO rules.
    /// The server's ticker thread calls this; tests may drive it
    /// directly for deterministic time.
    pub fn tick(&self) {
        self.window.tick(&self.registry);
        self.slo.evaluate(&self.window);
    }

    /// The `/metrics` document: cumulative series, rolling-window
    /// gauges, and alert gauges.
    pub fn metrics_text(&self) -> String {
        let mut out = promtext::render_with_exemplars(
            &self.registry.series(),
            &crate::profile::exemplar_snapshot(),
        );
        self.render_rolling(&mut out);
        self.render_alerts(&mut out);
        out
    }

    fn render_rolling(&self, out: &mut String) {
        use std::fmt::Write as _;
        let names = self.window.series_names();
        if names.is_empty() {
            return;
        }
        out.push_str("# TYPE xar_rolling gauge\n");
        for name in &names {
            let metric = promtext::escape_label_value(name);
            for &(wname, wms) in ROLLING_WINDOWS {
                let ticks = self.window.ticks_for_ms(wms);
                let Some(r) = self.window.rolling(name, ticks) else { continue };
                let mut sample = |stat: &str, value: f64| {
                    let _ = writeln!(
                        out,
                        "xar_rolling{{metric=\"{metric}\",window=\"{wname}\",stat=\"{stat}\"}} {value}",
                    );
                };
                match r.kind {
                    RollingKind::Counter { rate_per_s, .. } => {
                        sample("rate_per_s", rate_per_s);
                    }
                    RollingKind::Hist { snap, rate_per_s } => {
                        sample("p50", snap.p50 as f64);
                        sample("p99", snap.p99 as f64);
                        sample("rate_per_s", rate_per_s);
                    }
                    RollingKind::Gauge { .. } => {} // level already exported
                }
            }
        }
    }

    fn render_alerts(&self, out: &mut String) {
        use std::fmt::Write as _;
        let statuses = self.slo.statuses();
        if statuses.is_empty() {
            return;
        }
        for fam in ["xar_alert_firing", "xar_alert_ever_fired", "xar_alert_fast_burn", "xar_alert_slow_burn"] {
            let _ = writeln!(out, "# TYPE {fam} gauge");
        }
        for s in &statuses {
            let name = promtext::escape_label_value(&s.name);
            let _ = writeln!(out, "xar_alert_firing{{name=\"{name}\"}} {}", u8::from(s.firing));
            let _ = writeln!(
                out,
                "xar_alert_ever_fired{{name=\"{name}\"}} {}",
                u8::from(s.ever_fired)
            );
            let _ = writeln!(out, "xar_alert_fast_burn{{name=\"{name}\"}} {}", s.fast_burn);
            let _ = writeln!(out, "xar_alert_slow_burn{{name=\"{name}\"}} {}", s.slow_burn);
        }
    }

    /// The `/health` body and HTTP status: `(200, "ok")` when quiet,
    /// `503` naming the firing alerts and/or a snapshot retire backlog
    /// above [`OpsPlane::max_backlog`].
    pub fn health(&self) -> (u16, String) {
        let mut problems: Vec<String> = Vec::new();
        let firing: Vec<String> = self
            .slo
            .statuses()
            .into_iter()
            .filter(|s| s.firing)
            .map(|s| s.name)
            .collect();
        if !firing.is_empty() {
            problems.push(format!("firing: {}", firing.join(", ")));
        }
        if let Some(max) = self.max_backlog {
            let backlog = self.registry.gauge("engine.snapshot_backlog").get();
            if backlog > max {
                problems.push(format!("snapshot backlog {backlog} > {max}"));
            }
        }
        if problems.is_empty() {
            (200, "ok\n".to_string())
        } else {
            (503, format!("{}\n", problems.join("; ")))
        }
    }

    /// A `/debug/*` hook's document, or `None` when the hook is unset.
    fn debug_json(&self, hook: &Option<DebugJsonFn>) -> Option<String> {
        hook.as_ref().map(|f| f())
    }
}

/// Handle to a running ops server.
pub struct OpsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl OpsServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the ticker and accept threads and join them.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for OpsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsServer").field("local_addr", &self.local_addr).finish()
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `plane` until
/// [`OpsServer::shutdown`]. Spawns the accept thread and a ticker
/// thread advancing the plane every `plane.window.tick_ms()` ms.
pub fn serve(addr: impl ToSocketAddrs, plane: OpsPlane) -> std::io::Result<OpsServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let ticker = {
        let plane = plane.clone();
        let stop = Arc::clone(&stop);
        let tick = Duration::from_millis(plane.window.tick_ms());
        std::thread::spawn(move || {
            let slice = tick.min(Duration::from_millis(25));
            let mut elapsed = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed >= tick {
                    elapsed = Duration::ZERO;
                    plane.tick();
                }
            }
        })
    };

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = handle(&mut stream, &plane);
            }
        })
    };

    Ok(OpsServer { local_addr, stop, threads: vec![ticker, acceptor] })
}

/// Read one request, route it, write one response.
fn handle(stream: &mut TcpStream, plane: &OpsPlane) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the headers; the routes take no body.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 16 * 1024 {
            break; // oversized request: respond to what we have
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => (200, "text/plain; version=0.0.4", plane.metrics_text()),
            "/snapshot" => (200, "application/json", plane.registry.snapshot_json()),
            "/alerts" => (200, "application/json", plane.slo.alerts_json()),
            "/health" => {
                let (code, body) = plane.health();
                (code, "text/plain", body)
            }
            "/debug/profile" => {
                (200, "application/json", crate::profile::debug_profile_json())
            }
            "/debug/events" => {
                (200, "application/json", crate::events::debug_events_json(32))
            }
            "/debug/epoch" => match plane.debug_json(&plane.debug.epoch) {
                Some(body) => (200, "application/json", body),
                None => (404, "text/plain", "epoch debug hook not wired\n".to_string()),
            },
            "/debug/shards" => match plane.debug_json(&plane.debug.shards) {
                Some(body) => (200, "application/json", body),
                None => (404, "text/plain", "shards debug hook not wired\n".to_string()),
            },
            _ => (404, "text/plain", "not found\n".to_string()),
        }
    };
    respond(stream, status, content_type, &body)
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloRule;
    use crate::window::WindowConfig;

    fn plane_with(rules: Vec<SloRule>, tick_ms: u64) -> OpsPlane {
        OpsPlane::new(
            Arc::new(Registry::new()),
            Arc::new(WindowStore::new(WindowConfig { tick_ms, capacity: 64 })),
            Arc::new(SloEngine::new(rules)),
        )
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {response}"));
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_snapshot_health_alerts_and_404() {
        let rule = SloRule::parse("name=p99 hist=lat_ns max_us=1000 target=0.9 fast=1 slow=2 burn=1")
            .unwrap();
        let plane = plane_with(vec![rule], 10_000); // ticker effectively idle
        let h = plane.registry.histogram_with("lat_ns", &[]);
        plane.registry.counter_with("reqs", &[("outcome", "booked")]).add(3);
        h.record(500);
        plane.tick(); // deterministic tick instead of waiting for the ticker
        let mut server = serve("127.0.0.1:0", plane.clone()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        let parsed = promtext::parse(&body).expect("own exposition parses");
        assert_eq!(parsed.find("reqs", &[("outcome", "booked")]).map(|s| s.value), Some(3.0));
        assert!(
            parsed
                .find("xar_rolling", &[("metric", "lat_ns"), ("window", "1s"), ("stat", "p50")])
                .is_some(),
            "rolling gauges present: {body}"
        );
        assert!(parsed.find("xar_alert_firing", &[("name", "p99")]).is_some());

        let (status, body) = http_get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert!(crate::json::parse(&body).is_ok(), "{body}");

        let (status, body) = http_get(addr, "/health");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(addr, "/alerts");
        assert_eq!(status, 200);
        let alerts = crate::json::parse(&body).unwrap();
        assert_eq!(alerts.as_array().unwrap().len(), 1);

        let (status, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn health_goes_503_while_an_alert_fires() {
        let rule = SloRule::parse("name=slow hist=lat_ns max_us=1 target=0.5 fast=1 slow=1 burn=1")
            .unwrap();
        let plane = plane_with(vec![rule], 10_000);
        let h = plane.registry.histogram_with("lat_ns", &[]);
        for _ in 0..100 {
            h.record(10_000_000); // every sample breaches the 1 µs target
        }
        plane.tick();
        let server = serve("127.0.0.1:0", plane.clone()).expect("bind");

        let (status, body) = http_get(server.local_addr(), "/health");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("slow"), "{body}");
        let (_, body) = http_get(server.local_addr(), "/alerts");
        assert!(body.contains("\"firing\":true"), "{body}");
        drop(server); // Drop also shuts down cleanly
    }

    #[test]
    fn background_ticker_advances_the_window() {
        let plane = plane_with(Vec::new(), 20);
        plane.registry.counter("ticked").add(5);
        let server = serve("127.0.0.1:0", plane.clone()).expect("bind");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while plane.window.ticks() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(plane.window.ticks() > 0, "ticker thread never ticked");
        let (status, body) = http_get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("xar_rolling"), "{body}");
    }

    #[test]
    fn debug_routes_serve_json_or_404_when_unwired() {
        let mut plane = plane_with(Vec::new(), 10_000);
        let server = serve("127.0.0.1:0", plane.clone()).expect("bind");
        let addr = server.local_addr();
        // Built-in: the profile route always answers.
        let (status, body) = http_get(addr, "/debug/profile");
        assert_eq!(status, 200);
        assert!(crate::json::parse(&body).is_ok(), "{body}");
        // Built-in: the wide-event tail answers even with an empty sink.
        let (status, body) = http_get(addr, "/debug/events");
        assert_eq!(status, 200);
        let events = crate::json::parse(&body).expect("events JSON");
        assert!(events.get("emitted").is_some(), "{body}");
        // Unwired hooks are a clean 404, not a panic.
        let (status, _) = http_get(addr, "/debug/epoch");
        assert_eq!(status, 404);
        let (status, _) = http_get(addr, "/debug/shards");
        assert_eq!(status, 404);
        drop(server);
        // Wired hooks serve whatever the embedder produces.
        plane.debug.epoch = Some(Arc::new(|| "{\"epoch\":7}".to_string()));
        plane.debug.shards = Some(Arc::new(|| "{\"shards\":[]}".to_string()));
        let server = serve("127.0.0.1:0", plane).expect("bind");
        let (status, body) = http_get(server.local_addr(), "/debug/epoch");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"epoch\":7}");
        let (status, body) = http_get(server.local_addr(), "/debug/shards");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"shards\":[]}");
    }

    #[test]
    fn health_goes_503_when_snapshot_backlog_exceeds_threshold() {
        let mut plane = plane_with(Vec::new(), 10_000);
        plane.max_backlog = Some(2);
        plane.registry.gauge("engine.snapshot_backlog").set(1);
        let (status, _) = plane.health();
        assert_eq!(status, 200, "backlog at or under the threshold is healthy");
        plane.registry.gauge("engine.snapshot_backlog").set(3);
        let (status, body) = plane.health();
        assert_eq!(status, 503);
        assert!(body.contains("snapshot backlog 3 > 2"), "{body}");
        // No threshold configured: any backlog is tolerated.
        plane.max_backlog = None;
        assert_eq!(plane.health().0, 200);
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let plane = plane_with(Vec::new(), 10_000);
        let server = serve("127.0.0.1:0", plane).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
