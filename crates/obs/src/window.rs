//! Windowed time series: rolling rates and percentiles over a bounded
//! ring of per-tick deltas.
//!
//! A [`WindowStore`] is ticked on a fixed cadence (the ops server's
//! ticker thread, or a test calling [`WindowStore::tick`] directly).
//! Each tick snapshots every series in a [`Registry`], subtracts the
//! previous cumulative snapshot ([`HistogramSnapshot::delta`] for
//! histograms, plain subtraction for counters) and pushes the interval
//! delta into a ring of bounded length. Rolling statistics over the
//! last `n` ticks are then the merge of `n` deltas
//! ([`HistogramSnapshot::merge`] / sums) — honest windowed
//! percentiles, not decayed approximations, with memory bounded by
//! `capacity × live series`.
//!
//! ```
//! use xar_obs::{window::{WindowConfig, WindowStore}, Registry};
//!
//! let reg = Registry::new();
//! let w = WindowStore::new(WindowConfig { tick_ms: 1_000, capacity: 8 });
//! reg.histogram("lat_ns").record(500);
//! w.tick(&reg);
//! reg.histogram("lat_ns").record(3_000);
//! w.tick(&reg);
//! let r = w.rolling("lat_ns", 1).unwrap(); // last tick only
//! let xar_obs::window::RollingKind::Hist { snap, rate_per_s } = r.kind else { panic!() };
//! assert_eq!(snap.count, 1); // the 500 ns sample is outside the window
//! assert!(rate_per_s > 0.9 && rate_per_s < 1.1);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::hist::HistogramSnapshot;
use crate::registry::{MetricSnapshot, Registry};

/// Window-store tuning.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Nominal milliseconds between ticks (used to convert tick counts
    /// into rates and seconds; the caller drives actual ticking).
    pub tick_ms: u64,
    /// Ticks retained in the ring (older deltas fall off).
    pub capacity: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // 1 s ticks, 64 retained ⇒ rolling windows up to ~1 minute.
        Self { tick_ms: 1_000, capacity: 64 }
    }
}

/// One series' interval delta for a single tick.
#[derive(Debug, Clone, PartialEq)]
enum Delta {
    /// Counter increment during the tick.
    Counter(u64),
    /// Gauge value at the end of the tick (last-write-wins).
    Gauge(i64),
    /// Histogram samples recorded during the tick.
    Hist(HistogramSnapshot),
}

/// Cumulative state at the previous tick, for subtraction.
enum LastState {
    Counter(u64),
    Hist(HistogramSnapshot),
}

struct Inner {
    /// Previous cumulative snapshot per series (rendered name key).
    last: BTreeMap<String, LastState>,
    /// Ring of per-tick deltas, newest at the back.
    ring: VecDeque<BTreeMap<String, Delta>>,
    /// Ticks observed since creation (monotone; ring holds the tail).
    ticks: u64,
}

/// Rolling statistics over the last `ticks` ticks of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Rolling {
    /// Ticks actually covered (≤ requested when the ring is young).
    pub ticks: usize,
    /// Window length in seconds (`ticks × tick_ms / 1000`).
    pub seconds: f64,
    /// The windowed statistic.
    pub kind: RollingKind,
}

/// The windowed statistic per metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum RollingKind {
    /// Counter: total increment over the window and the per-second rate.
    Counter {
        /// Increment over the window.
        delta: u64,
        /// `delta / seconds`.
        rate_per_s: f64,
    },
    /// Gauge: the most recent value inside the window.
    Gauge {
        /// Last observed value.
        last: i64,
    },
    /// Histogram: the merged interval distribution and sample rate.
    Hist {
        /// Merge of the window's per-tick deltas (honest windowed
        /// percentiles via `snap.p50` / `snap.quantile`).
        snap: HistogramSnapshot,
        /// Samples per second over the window.
        rate_per_s: f64,
    },
}

/// A bounded ring of per-tick series deltas over one [`Registry`].
pub struct WindowStore {
    cfg: WindowConfig,
    inner: Mutex<Inner>,
}

impl WindowStore {
    /// An empty store.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.capacity > 0, "window capacity must be positive");
        assert!(cfg.tick_ms > 0, "tick period must be positive");
        Self {
            cfg,
            inner: Mutex::new(Inner {
                last: BTreeMap::new(),
                ring: VecDeque::new(),
                ticks: 0,
            }),
        }
    }

    /// The configured tick period, milliseconds.
    pub fn tick_ms(&self) -> u64 {
        self.cfg.tick_ms
    }

    /// Ticks observed since creation.
    pub fn ticks(&self) -> u64 {
        self.lock().ticks
    }

    /// How many ticks cover `window_ms`, clamped to the ring capacity.
    pub fn ticks_for_ms(&self, window_ms: u64) -> usize {
        (window_ms.div_ceil(self.cfg.tick_ms) as usize).clamp(1, self.cfg.capacity)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take one tick: snapshot `registry`, push the delta since the
    /// previous tick, evict the oldest tick beyond capacity.
    pub fn tick(&self, registry: &Registry) {
        let series = registry.series();
        let mut inner = self.lock();
        let mut deltas: BTreeMap<String, Delta> = BTreeMap::new();
        for s in series {
            let key = s.rendered_name();
            match s.value {
                MetricSnapshot::Counter(now) => {
                    let prev = match inner.last.get(&key) {
                        Some(LastState::Counter(p)) => *p,
                        _ => 0,
                    };
                    deltas.insert(key.clone(), Delta::Counter(now.saturating_sub(prev)));
                    inner.last.insert(key, LastState::Counter(now));
                }
                MetricSnapshot::Gauge(now) => {
                    // Gauges are levels, not rates: the delta is the level.
                    deltas.insert(key, Delta::Gauge(now));
                }
                MetricSnapshot::Histogram(now) => {
                    let d = match inner.last.get(&key) {
                        Some(LastState::Hist(p)) => now.delta(p),
                        _ => now.clone(),
                    };
                    deltas.insert(key.clone(), Delta::Hist(d));
                    inner.last.insert(key, LastState::Hist(now));
                }
            }
        }
        inner.ring.push_back(deltas);
        inner.ticks += 1;
        while inner.ring.len() > self.cfg.capacity {
            inner.ring.pop_front();
        }
    }

    /// Rolling statistics for `series` (rendered name, e.g.
    /// `engine.search_ns{tier="t2"}`) over the last `ticks` ticks.
    /// `None` when the series never appeared in the covered ticks.
    pub fn rolling(&self, series: &str, ticks: usize) -> Option<Rolling> {
        let inner = self.lock();
        let avail = inner.ring.len();
        let n = ticks.clamp(1, self.cfg.capacity).min(avail);
        if n == 0 {
            return None;
        }
        let seconds = n as f64 * self.cfg.tick_ms as f64 / 1_000.0;
        let mut acc: Option<RollingKind> = None;
        // Newest-first so a gauge keeps its most recent value.
        for tickmap in inner.ring.iter().rev().take(n) {
            let Some(d) = tickmap.get(series) else { continue };
            acc = Some(match (acc, d) {
                (None, Delta::Counter(c)) => RollingKind::Counter { delta: *c, rate_per_s: 0.0 },
                (None, Delta::Gauge(g)) => RollingKind::Gauge { last: *g },
                (None, Delta::Hist(h)) => {
                    RollingKind::Hist { snap: h.clone(), rate_per_s: 0.0 }
                }
                (Some(RollingKind::Counter { delta, .. }), Delta::Counter(c)) => {
                    RollingKind::Counter { delta: delta + c, rate_per_s: 0.0 }
                }
                (Some(g @ RollingKind::Gauge { .. }), Delta::Gauge(_)) => g, // newest wins
                (Some(RollingKind::Hist { snap, .. }), Delta::Hist(h)) => {
                    RollingKind::Hist { snap: snap.merge(h), rate_per_s: 0.0 }
                }
                // A series changed kind mid-ring (registry misuse):
                // keep what we have.
                (Some(acc), _) => acc,
            });
        }
        let kind = match acc? {
            RollingKind::Counter { delta, .. } => RollingKind::Counter {
                delta,
                rate_per_s: delta as f64 / seconds,
            },
            RollingKind::Hist { snap, .. } => {
                let rate = snap.count as f64 / seconds;
                RollingKind::Hist { snap, rate_per_s: rate }
            }
            g => g,
        };
        Some(Rolling { ticks: n, seconds, kind })
    }

    /// Every series name seen in the retained ticks, sorted.
    pub fn series_names(&self) -> Vec<String> {
        let inner = self.lock();
        let mut names: Vec<String> = inner
            .ring
            .iter()
            .flat_map(|t| t.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

impl std::fmt::Debug for WindowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("WindowStore")
            .field("tick_ms", &self.cfg.tick_ms)
            .field("capacity", &self.cfg.capacity)
            .field("ticks", &inner.ticks)
            .field("retained", &inner.ring.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize) -> WindowStore {
        WindowStore::new(WindowConfig { tick_ms: 1_000, capacity })
    }

    #[test]
    fn counter_rates_come_from_deltas() {
        let reg = Registry::new();
        let w = store(8);
        let c = reg.counter("reqs");
        c.add(10);
        w.tick(&reg);
        c.add(30);
        w.tick(&reg);
        // Last tick: +30.
        let r = w.rolling("reqs", 1).unwrap();
        assert_eq!(
            r.kind,
            RollingKind::Counter { delta: 30, rate_per_s: 30.0 }
        );
        // Both ticks: +40 over 2 s.
        let r = w.rolling("reqs", 2).unwrap();
        assert_eq!(
            r.kind,
            RollingKind::Counter { delta: 40, rate_per_s: 20.0 }
        );
    }

    #[test]
    fn histogram_windows_merge_deltas() {
        let reg = Registry::new();
        let w = store(8);
        let h = reg.histogram("lat");
        h.record(100);
        w.tick(&reg);
        h.record(1_000);
        h.record(1_000);
        w.tick(&reg);
        let r = w.rolling("lat", 1).unwrap();
        let RollingKind::Hist { snap, rate_per_s } = r.kind else { panic!("{r:?}") };
        assert_eq!(snap.count, 2, "only the last tick's samples");
        assert!(snap.p50 >= 900 && snap.p50 <= 1_100);
        assert!((rate_per_s - 2.0).abs() < 1e-9);
        let r2 = w.rolling("lat", 8).unwrap();
        assert_eq!(r2.ticks, 2, "ring only has two ticks yet");
        let RollingKind::Hist { snap, .. } = r2.kind else { panic!() };
        assert_eq!(snap.count, 3);
    }

    #[test]
    fn ring_evicts_old_ticks() {
        let reg = Registry::new();
        let w = store(2);
        let c = reg.counter("x");
        for _ in 0..5 {
            c.add(1);
            w.tick(&reg);
        }
        assert_eq!(w.ticks(), 5);
        let r = w.rolling("x", 100).unwrap();
        assert_eq!(r.ticks, 2, "capacity bounds the window");
        let RollingKind::Counter { delta, .. } = r.kind else { panic!() };
        assert_eq!(delta, 2);
    }

    #[test]
    fn gauges_report_last_value() {
        let reg = Registry::new();
        let w = store(4);
        let g = reg.gauge("depth");
        g.set(3);
        w.tick(&reg);
        g.set(7);
        w.tick(&reg);
        let r = w.rolling("depth", 4).unwrap();
        assert_eq!(r.kind, RollingKind::Gauge { last: 7 });
    }

    #[test]
    fn labeled_series_are_independent_windows() {
        let reg = Registry::new();
        let w = store(4);
        reg.counter_with("req", &[("outcome", "booked")]).add(5);
        reg.counter_with("req", &[("outcome", "created")]).add(2);
        w.tick(&reg);
        let booked = w.rolling("req{outcome=\"booked\"}", 1).unwrap();
        let RollingKind::Counter { delta, .. } = booked.kind else { panic!() };
        assert_eq!(delta, 5);
        assert!(w.rolling("req{outcome=\"missing\"}", 1).is_none());
        assert_eq!(w.series_names().len(), 2);
    }

    #[test]
    fn labels_gained_mid_run_enter_the_delta_algebra_cleanly() {
        // A tiered histogram and a labeled counter that do not exist at
        // tick time 0 — the engine only mints `{tier="t2"}` once a deep
        // search happens. The window algebra must (a) treat the first
        // observation as a delta from zero, not from garbage, (b) keep
        // rolling windows that predate the series' birth well-formed,
        // and (c) keep per-label windows independent afterwards.
        let reg = Registry::new();
        let w = store(8);
        reg.counter_with("req", &[("outcome", "booked")]).add(3);
        w.tick(&reg); // tick 1: only the booked label exists
        w.tick(&reg); // tick 2: still quiet

        // Mid-run, new labels appear with history already on the ring.
        reg.counter_with("req", &[("outcome", "created")]).add(7);
        reg.histogram_with("search_ns", &[("tier", "t2")]).record(500);
        w.tick(&reg); // tick 3: first sight of both

        // First delta is the full value (prev = 0)…
        let created = w.rolling("req{outcome=\"created\"}", 1).unwrap();
        assert_eq!(created.kind, RollingKind::Counter { delta: 7, rate_per_s: 7.0 });
        // …and a window reaching back before the birth tick sums only
        // the ticks where the series existed, over the full window time
        // (the rate is genuinely diluted, not NaN or inflated).
        let created = w.rolling("req{outcome=\"created\"}", 3).unwrap();
        assert_eq!(created.ticks, 3);
        let RollingKind::Counter { delta, rate_per_s } = created.kind else { panic!() };
        assert_eq!(delta, 7);
        assert!((rate_per_s - 7.0 / 3.0).abs() < 1e-9);

        let deep = w.rolling("search_ns{tier=\"t2\"}", 8).unwrap();
        let RollingKind::Hist { snap, .. } = deep.kind else { panic!("{deep:?}") };
        assert_eq!(snap.count, 1, "histogram born mid-run starts from zero");

        // The pre-existing label's window is untouched by the newcomers:
        // no activity since tick 1 means a zero delta over recent ticks.
        let booked = w.rolling("req{outcome=\"booked\"}", 2).unwrap();
        assert_eq!(booked.kind, RollingKind::Counter { delta: 0, rate_per_s: 0.0 });
        reg.counter_with("req", &[("outcome", "created")]).add(2);
        w.tick(&reg); // tick 4
        let created = w.rolling("req{outcome=\"created\"}", 1).unwrap();
        assert_eq!(created.kind, RollingKind::Counter { delta: 2, rate_per_s: 2.0 });
        let booked = w.rolling("req{outcome=\"booked\"}", 4).unwrap();
        let RollingKind::Counter { delta, .. } = booked.kind else { panic!() };
        assert_eq!(delta, 3, "only tick 1's +3, independent of the created label");

        assert_eq!(w.series_names().len(), 3);
    }

    #[test]
    fn ticks_for_ms_rounds_up_and_clamps() {
        let w = WindowStore::new(WindowConfig { tick_ms: 250, capacity: 64 });
        assert_eq!(w.ticks_for_ms(1_000), 4);
        assert_eq!(w.ticks_for_ms(10_000), 40);
        assert_eq!(w.ticks_for_ms(60_000), 64, "clamped to capacity");
        assert_eq!(w.ticks_for_ms(1), 1);
    }
}
