//! Lock-free log-bucketed histograms.
//!
//! Layout (HDR-style log-linear): values below 32 get one exact bucket
//! each; above that, every power-of-two octave is split into 16
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most 1/16 of its lower bound. Percentile estimates read from
//! bucket midpoints are therefore within ≈ 6.25 % (≈ 3.2 % at the
//! midpoint) of the true sample — far tighter than the run-to-run noise
//! of any latency experiment in the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (16 ⇒ ≤ 6.25 % relative error).
const SUBS: usize = 16;
/// Values below this threshold get exact unit buckets.
const LINEAR_MAX: u64 = 32;
/// First octave that uses log-linear buckets (`log2(LINEAR_MAX)`).
const FIRST_OCTAVE: usize = 5;
/// Total bucket count: 32 exact + 16 per octave for octaves 5..=63.
const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE) * SUBS;

/// A fixed-size, lock-free histogram over `u64` samples (typically
/// nanoseconds or set sizes).
///
/// `record` is wait-free: one relaxed `fetch_add` on the bucket plus
/// relaxed updates of count/sum/max. Snapshots are taken concurrently
/// with writers and are weakly consistent (they may miss in-flight
/// increments, never corrupt).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

/// The index of the bucket `value` falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize; // >= FIRST_OCTAVE
        let sub = ((value >> (msb - 4)) & 0xF) as usize;
        LINEAR_MAX as usize + (msb - FIRST_OCTAVE) * SUBS + sub
    }
}

/// Inclusive `[low, high]` value range of bucket `idx`.
///
/// # Panics
///
/// Panics if `idx >= Histogram::bucket_count()`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < LINEAR_MAX as usize {
        (idx as u64, idx as u64)
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + rel / SUBS;
        let sub = (rel % SUBS) as u64;
        let width = 1u64 << (octave - 4);
        let low = (16 + sub) << (octave - 4);
        // `low + (width - 1)`, not `low + width - 1`: the top bucket's
        // upper bound is exactly `u64::MAX`, so adding `width` first
        // would overflow.
        (low, low + (width - 1))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array in place.
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is BUCKETS by construction"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Number of buckets (fixed at compile time).
    pub const fn bucket_count() -> usize {
        BUCKETS
    }

    /// Record one sample. Wait-free; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record `n` occurrences of one sample value.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Merge another live histogram into this one. Both sides may be
    /// recorded into concurrently; the merge is weakly consistent the
    /// same way [`Histogram::snapshot`] is (it may miss in-flight
    /// increments on `other`, never corrupt either side).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A weakly consistent snapshot with percentile estimates and the
    /// (sparse) bucket cells, so snapshots can be subtracted
    /// ([`HistogramSnapshot::delta`]) and merged
    /// ([`HistogramSnapshot::merge`]) after the fact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cells: Vec<(u16, u64)> = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                cells.push((i as u16, c));
            }
        }
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot::from_cells(cells, sum, max)
    }
}

/// Point-in-time summary of a [`Histogram`]: percentile estimates plus
/// the sparse non-empty bucket cells `(bucket index, count)`, sorted by
/// bucket index. Carrying the cells makes snapshots *algebraic*: two
/// snapshots of the same histogram taken at different times can be
/// subtracted into an interval delta, and snapshots of different
/// histograms can be merged into an aggregate — both with honest
/// percentiles recomputed from the combined cells.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps only after ~584 years of nanoseconds).
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (bucket midpoint).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Maximum recorded value (exact for live snapshots; for deltas, the
    /// tightest bucket upper bound).
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending index.
    pub cells: Vec<(u16, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::from_cells(Vec::new(), 0, 0)
    }
}

impl HistogramSnapshot {
    /// Build a snapshot from sparse cells plus exact `sum` and `max`.
    /// `count`, `mean` and the percentile fields are derived from the
    /// cells. Cells must be sorted by bucket index (they are whenever
    /// they come from [`Histogram::snapshot`], `delta` or `merge`).
    pub fn from_cells(cells: Vec<(u16, u64)>, sum: u64, max: u64) -> Self {
        debug_assert!(cells.windows(2).all(|w| w[0].0 < w[1].0), "cells not sorted");
        let count: u64 = cells.iter().map(|&(_, c)| c).sum();
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        let q = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for &(i, c) in &cells {
                seen += c;
                if seen >= rank {
                    let (lo, hi) = bucket_bounds(i as usize);
                    return (lo + (hi - lo) / 2).min(max);
                }
            }
            max
        };
        let (p50, p90, p99) = (q(50.0), q(90.0), q(99.0));
        Self { count, sum, mean, p50, p90, p99, max, cells }
    }

    /// Arbitrary quantile estimate (`p` in 0–100) from the cells.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, c) in &self.cells {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i as usize);
                return (lo + (hi - lo) / 2).min(self.max);
            }
        }
        self.max
    }

    /// Fraction of samples whose bucket midpoint exceeds `threshold`
    /// (0.0 when empty). This is the SLI the SLO engine uses: with a
    /// latency objective "99 % of searches under 250 µs", the error
    /// rate of a window is `frac_above(250_000)`.
    pub fn frac_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = 0u64;
        for &(i, c) in &self.cells {
            let (lo, hi) = bucket_bounds(i as usize);
            if lo + (hi - lo) / 2 > threshold {
                above += c;
            }
        }
        above as f64 / self.count as f64
    }

    /// The interval delta `self − earlier`, where `earlier` is an older
    /// snapshot of the *same* histogram: what was recorded between the
    /// two snapshot instants. Per-bucket counts subtract saturating (a
    /// concurrent writer can make one bucket appear to run slightly
    /// ahead), `sum` subtracts saturating, and `max` is the tightest
    /// bucket upper bound of the delta (the live max covers all time,
    /// not the interval).
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut cells: Vec<(u16, u64)> = Vec::with_capacity(self.cells.len());
        let mut old = earlier.cells.iter().peekable();
        for &(i, c) in &self.cells {
            let mut prev = 0u64;
            while let Some(&&(oi, oc)) = old.peek() {
                match oi.cmp(&i) {
                    std::cmp::Ordering::Less => {
                        old.next();
                    }
                    std::cmp::Ordering::Equal => {
                        prev = oc;
                        old.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            let d = c.saturating_sub(prev);
            if d != 0 {
                cells.push((i, d));
            }
        }
        let max = cells.last().map_or(0, |&(i, _)| bucket_bounds(i as usize).1.min(self.max));
        Self::from_cells(cells, self.sum.saturating_sub(earlier.sum), max)
    }

    /// The merge of two snapshots (cells add, sums add, max is the
    /// larger) — aggregating shards or windows into one distribution.
    pub fn merge(&self, other: &Self) -> Self {
        let mut cells: Vec<(u16, u64)> = Vec::with_capacity(self.cells.len() + other.cells.len());
        let (mut a, mut b) = (self.cells.iter().peekable(), other.cells.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, ac)), Some(&&(bi, bc))) => match ai.cmp(&bi) {
                    std::cmp::Ordering::Less => {
                        cells.push((ai, ac));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        cells.push((bi, bc));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        cells.push((ai, ac + bc));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&(ai, ac)), None) => {
                    cells.push((ai, ac));
                    a.next();
                }
                (None, Some(&&(bi, bc))) => {
                    cells.push((bi, bc));
                    b.next();
                }
                (None, None) => break,
            }
        }
        Self::from_cells(cells, self.sum.saturating_add(other.sum), self.max.max(other.max))
    }
    /// Render a nanosecond-valued snapshot as human-readable text.
    pub fn format_ns(&self) -> String {
        fn t(ns: u64) -> String {
            let ns = ns as f64;
            if ns >= 1e9 {
                format!("{:.2}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.1}µs", ns / 1e3)
            } else {
                format!("{ns:.0}ns")
            }
        }
        format!(
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            t(self.p50),
            t(self.p90),
            t(self.p99),
            t(self.max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, LINEAR_MAX);
        assert_eq!(s.max, LINEAR_MAX - 1);
        // Exact buckets => p50 is the exact median bucket value.
        assert_eq!(s.p50, 15);
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "index decreased at {v}");
            prev = i;
            v = v.saturating_mul(2).saturating_add(1);
        }
        // Octave boundary continuity.
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 123_456, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        let within = |got: u64, want: f64| (got as f64 - want).abs() / want < 0.07;
        assert!(within(s.p50, 5_000.0), "p50 {}", s.p50);
        assert!(within(s.p90, 9_000.0), "p90 {}", s.p90);
        assert!(within(s.p99, 9_900.0), "p99 {}", s.p99);
        assert!((s.mean - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.sum, s.p50, s.p90, s.p99, s.max),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn live_merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 70, 9_000] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn delta_isolates_the_interval() {
        let h = Histogram::new();
        h.record(100);
        h.record(5_000);
        let before = h.snapshot();
        h.record(200);
        h.record(200);
        h.record(9_999_999);
        let after = h.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 200 + 200 + 9_999_999);
        // Only the interval's samples contribute to percentiles.
        assert!(d.p50 >= 150 && d.p50 <= 250, "p50 {}", d.p50);
        // Interval max is a bucket upper bound containing the true max.
        assert!(d.max >= 9_999_999);
        // Full-history snapshot deltas to itself as empty.
        let zero = after.delta(&after);
        assert_eq!(zero.count, 0);
        assert_eq!(zero.sum, 0);
    }

    #[test]
    fn snapshot_merge_conserves_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 1_000..=1_050u64 {
            b.record(v * 97);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let m = sa.merge(&sb);
        assert_eq!(m.count, sa.count + sb.count);
        assert_eq!(m.sum, sa.sum + sb.sum);
        assert_eq!(m.max, sa.max.max(sb.max));
        assert!(m.p50 <= m.p90 && m.p90 <= m.p99 && m.p99 <= m.max);
    }

    #[test]
    fn frac_above_and_quantile_agree() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let f = s.frac_above(s.quantile(90.0));
        assert!(f > 0.02 && f < 0.2, "frac above p90 was {f}");
        assert_eq!(s.frac_above(u64::MAX), 0.0);
        assert!(s.frac_above(0) > 0.99);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(777, 5);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
