//! Lock-free log-bucketed histograms.
//!
//! Layout (HDR-style log-linear): values below 32 get one exact bucket
//! each; above that, every power-of-two octave is split into 16
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most 1/16 of its lower bound. Percentile estimates read from
//! bucket midpoints are therefore within ≈ 6.25 % (≈ 3.2 % at the
//! midpoint) of the true sample — far tighter than the run-to-run noise
//! of any latency experiment in the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (16 ⇒ ≤ 6.25 % relative error).
const SUBS: usize = 16;
/// Values below this threshold get exact unit buckets.
const LINEAR_MAX: u64 = 32;
/// First octave that uses log-linear buckets (`log2(LINEAR_MAX)`).
const FIRST_OCTAVE: usize = 5;
/// Total bucket count: 32 exact + 16 per octave for octaves 5..=63.
const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE) * SUBS;

/// A fixed-size, lock-free histogram over `u64` samples (typically
/// nanoseconds or set sizes).
///
/// `record` is wait-free: one relaxed `fetch_add` on the bucket plus
/// relaxed updates of count/sum/max. Snapshots are taken concurrently
/// with writers and are weakly consistent (they may miss in-flight
/// increments, never corrupt).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

/// The index of the bucket `value` falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize; // >= FIRST_OCTAVE
        let sub = ((value >> (msb - 4)) & 0xF) as usize;
        LINEAR_MAX as usize + (msb - FIRST_OCTAVE) * SUBS + sub
    }
}

/// Inclusive `[low, high]` value range of bucket `idx`.
///
/// # Panics
///
/// Panics if `idx >= Histogram::bucket_count()`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < LINEAR_MAX as usize {
        (idx as u64, idx as u64)
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + rel / SUBS;
        let sub = (rel % SUBS) as u64;
        let width = 1u64 << (octave - 4);
        let low = (16 + sub) << (octave - 4);
        // `low + (width - 1)`, not `low + width - 1`: the top bucket's
        // upper bound is exactly `u64::MAX`, so adding `width` first
        // would overflow.
        (low, low + (width - 1))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array in place.
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is BUCKETS by construction"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Number of buckets (fixed at compile time).
    pub const fn bucket_count() -> usize {
        BUCKETS
    }

    /// Record one sample. Wait-free; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record `n` occurrences of one sample value.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A weakly consistent snapshot with percentile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        let mut total: u64 = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            counts[i] = c;
            total += c;
        }
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let mean = if total == 0 { 0.0 } else { sum as f64 / total as f64 };
        let q = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    let (lo, hi) = bucket_bounds(i);
                    return (lo + (hi - lo) / 2).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            sum,
            mean,
            p50: q(50.0),
            p90: q(90.0),
            p99: q(99.0),
            max,
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps only after ~584 years of nanoseconds).
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (bucket midpoint).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Render a nanosecond-valued snapshot as human-readable text.
    pub fn format_ns(&self) -> String {
        fn t(ns: u64) -> String {
            let ns = ns as f64;
            if ns >= 1e9 {
                format!("{:.2}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.1}µs", ns / 1e3)
            } else {
                format!("{ns:.0}ns")
            }
        }
        format!(
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            t(self.p50),
            t(self.p90),
            t(self.p99),
            t(self.max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, LINEAR_MAX);
        assert_eq!(s.max, LINEAR_MAX - 1);
        // Exact buckets => p50 is the exact median bucket value.
        assert_eq!(s.p50, 15);
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "index decreased at {v}");
            prev = i;
            v = v.saturating_mul(2).saturating_add(1);
        }
        // Octave boundary continuity.
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 123_456, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        let within = |got: u64, want: f64| (got as f64 - want).abs() / want < 0.07;
        assert!(within(s.p50, 5_000.0), "p50 {}", s.p50);
        assert!(within(s.p90, 9_000.0), "p90 {}", s.p90);
        assert!(within(s.p99, 9_900.0), "p99 {}", s.p99);
        assert!((s.mean - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.sum, s.p50, s.p90, s.p99, s.max),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(777, 5);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
