//! RAII span timers: measure a scope, record on drop.

use std::sync::Arc;
use std::time::Instant;

use crate::hist::Histogram;

/// Records the elapsed nanoseconds between construction and drop into
/// a histogram. Construction costs one `Instant::now()`; drop costs
/// one more plus the histogram's wait-free record.
///
/// ```
/// use xar_obs::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::new(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        Self { hist: Some(hist), start: Instant::now() }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stop early, recording now instead of at scope end.
    pub fn stop(self) {
        drop(self);
    }

    /// Abandon the span without recording anything.
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(hist) = &self.hist {
            hist.record(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _s = SpanTimer::new(Arc::clone(&h));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 2_000_000, "slept 2 ms but recorded {} ns", snap.max);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Arc::new(Histogram::new());
        let s = SpanTimer::new(Arc::clone(&h));
        s.cancel();
        assert_eq!(h.count(), 0);
    }
}
