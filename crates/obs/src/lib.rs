//! `xar-obs` — zero-dependency telemetry for the XAR system.
//!
//! The paper's entire evaluation is latency curves (Fig. 3, Fig. 5a,
//! Fig. 5b), so the runtime needs latency *distributions*, not means.
//! This crate provides the measurement substrate every engine, bench
//! harness and simulation in the workspace records into:
//!
//! * [`Histogram`] — a lock-free, log-bucketed (HDR-style) histogram
//!   over `u64` samples. The record path is a handful of relaxed
//!   atomic operations (no locks, no allocation); relative bucket
//!   error is bounded by 1/16 ≈ 6.25 %.
//! * [`Counter`] / [`Gauge`] — relaxed atomic scalars.
//! * [`Registry`] — a named-metric table handing out `Arc` handles, so
//!   hot paths never touch the registry lock after setup, with
//!   deterministic [`Registry::snapshot_json`] export.
//! * [`SpanTimer`] — RAII timers recording elapsed nanoseconds into a
//!   histogram on drop.
//! * [`json`] — the tiny JSON writer behind `snapshot_json` (and a
//!   matching reader for the trace tooling), public so sibling crates
//!   emit reports without a serde dependency.
//! * [`trace`] — a bounded flight recorder for request-scoped causal
//!   span timelines with tail sampling; [`chrome`] exports its
//!   snapshots as Perfetto-loadable Chrome trace-event JSON.
//! * [`events`] — the wide-event plane: one canonical per-request
//!   decision record (outcome, typed rejection reason, tier,
//!   latencies) with the recorder's discipline — free when disabled,
//!   no locks per event, conserved drop accounting — exported as
//!   segmented JSONL for the `xar logs` forensics CLI.
//! * [`profile`] — continuous profiling over the flight recorder:
//!   hierarchical self/total-time aggregation, collapsed-stack and
//!   speedscope artifacts, per-span allocation attribution, and
//!   latency exemplars linking `/metrics` back to trace ids.
//!
//! ```
//! use xar_obs::Registry;
//!
//! let registry = Registry::new();
//! let hist = registry.histogram("search_ns");
//! for v in [120_u64, 450, 900, 4_000] {
//!     hist.record(v);
//! }
//! registry.counter("searches").add(4);
//! let snap = hist.snapshot();
//! assert_eq!(snap.count, 4);
//! assert_eq!(snap.max, 4_000);
//! assert!(snap.p50 >= 120 && snap.p50 <= 1_000);
//! assert!(registry.snapshot_json().contains("\"searches\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod events;
pub mod hist;
pub mod json;
pub mod profile;
pub mod promtext;
pub mod registry;
pub mod serve;
pub mod slo;
pub mod span;
pub mod trace;
pub mod window;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, MetricSnapshot, Registry, SeriesSnapshot};
pub use span::SpanTimer;
pub use trace::{AttrList, AttrValue, Recorder, TraceConfig, TraceCtx};
