//! Prometheus text exposition format — render and parse.
//!
//! [`render`] turns a registry's [`SeriesSnapshot`]s into the
//! Prometheus text format (version 0.0.4) served on `/metrics`:
//!
//! * counters → `# TYPE <name> counter` + one sample per series,
//! * gauges → `# TYPE <name> gauge` likewise,
//! * histograms → `# TYPE <name> summary`: per-series `{quantile="…"}`
//!   samples plus `<name>_sum` / `<name>_count` / `<name>_max`
//!   (the max is exported as a separate gauge family, since the
//!   summary type has no max sample).
//!
//! Metric names are sanitized (`engine.search_ns` →
//! `engine_search_ns`); label values are escaped per the exposition
//! format (`\\`, `\"`, `\n`).
//!
//! [`parse`] is the matching reader. It exists so the repo can
//! validate its own exposition in CI and so `xar top` can scrape a
//! live process without any HTTP/metrics dependency — it accepts
//! exactly the subset `render` emits plus unknown comment lines, and
//! round-trips sample values.
//!
//! [`render_with_exemplars`] additionally annotates histogram `_max`
//! and `quantile="0.99"` samples with OpenMetrics exemplar syntax
//! (` # {trace_id="0x…"} <value>`) from the profiling plane's
//! [`exemplar_snapshot`](crate::profile::exemplar_snapshot), closing
//! the metrics→trace loop; the parser reads the annotation back into
//! [`PromSample::exemplar`].

use std::fmt::Write as _;

use crate::profile::ExemplarSeries;
use crate::registry::{MetricSnapshot, SeriesSnapshot};

/// The quantiles exported for every histogram series.
pub const QUANTILES: &[(&str, f64)] = &[("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)];

/// Sanitize a metric name for the exposition format: every character
/// outside `[a-zA-Z0-9_:]` becomes `_` (so `engine.search_ns` →
/// `engine_search_ns`), and a leading digit gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Render series snapshots as Prometheus text. Series must be sorted
/// by family (they are, coming from `Registry::series`); each family
/// gets one `# TYPE` line.
pub fn render(series: &[SeriesSnapshot]) -> String {
    render_with_exemplars(series, &[])
}

/// Look up the exemplar series matching one metric series (family name
/// and label pairs both pre-sanitization, both sorted).
fn exemplars_for<'a>(
    exemplars: &'a [ExemplarSeries],
    s: &SeriesSnapshot,
) -> Option<&'a ExemplarSeries> {
    exemplars.iter().find(|e| e.family == s.name && e.labels == s.labels)
}

fn write_exemplar(out: &mut String, e: &crate::profile::Exemplar) {
    let _ = write!(out, " # {{trace_id=\"{:#x}\"}} {}", e.trace, e.value);
}

/// Like [`render`], but annotates histogram samples with exemplars:
/// each matching series gets its largest retained exemplar on the
/// `_max` sample and its second-largest (when present) on the
/// `quantile="0.99"` sample, in OpenMetrics exemplar syntax.
pub fn render_with_exemplars(series: &[SeriesSnapshot], exemplars: &[ExemplarSeries]) -> String {
    let mut out = String::new();
    let mut last_family: Option<(String, &'static str)> = None;
    for s in series {
        let fam = sanitize_name(&s.name);
        let kind = match &s.value {
            MetricSnapshot::Counter(_) => "counter",
            MetricSnapshot::Gauge(_) => "gauge",
            MetricSnapshot::Histogram(_) => "summary",
        };
        if last_family.as_ref().is_none_or(|(f, _)| *f != fam) {
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            if kind == "summary" {
                let _ = writeln!(out, "# TYPE {fam}_max gauge");
            }
            last_family = Some((fam.clone(), kind));
        }
        match &s.value {
            MetricSnapshot::Counter(v) => {
                out.push_str(&fam);
                write_labels(&mut out, &s.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&fam);
                write_labels(&mut out, &s.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricSnapshot::Histogram(h) => {
                let ex = exemplars_for(exemplars, s);
                for &(q, p) in QUANTILES {
                    out.push_str(&fam);
                    write_labels(&mut out, &s.labels, Some(("quantile", q)));
                    let _ = write!(out, " {}", h.quantile(p));
                    if q == "0.99" {
                        if let Some(e) = ex.and_then(|e| e.exemplars.get(1)) {
                            write_exemplar(&mut out, e);
                        }
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{fam}_sum");
                write_labels(&mut out, &s.labels, None);
                let _ = writeln!(out, " {}", h.sum);
                let _ = write!(out, "{fam}_count");
                write_labels(&mut out, &s.labels, None);
                let _ = writeln!(out, " {}", h.count);
                let _ = write!(out, "{fam}_max");
                write_labels(&mut out, &s.labels, None);
                let _ = write!(out, " {}", h.max);
                if let Some(e) = ex.and_then(|e| e.exemplars.first()) {
                    write_exemplar(&mut out, e);
                }
                out.push('\n');
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (family name, possibly with a `_sum`/`_count`/`_max`
    /// suffix for summaries).
    pub name: String,
    /// Label pairs in appearance order (includes `quantile` for
    /// summary quantile samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The OpenMetrics exemplar annotation, if the line carried one.
    pub exemplar: Option<PromExemplar>,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parsed OpenMetrics exemplar annotation
/// (` # {trace_id="0x2a"} 1234567`).
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs (`trace_id` for this repo's exposition).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
}

impl PromExemplar {
    /// The `trace_id` label, if present.
    pub fn trace_id(&self) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == "trace_id").map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: samples plus the `# TYPE` declarations.
#[derive(Debug, Clone, Default)]
pub struct PromText {
    /// All sample lines, in order.
    pub samples: Vec<PromSample>,
    /// `# TYPE` declarations as `(family, kind)`.
    pub types: Vec<(String, String)>,
}

impl PromText {
    /// All samples with the given name.
    pub fn with_name<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a PromSample> {
        let name = name.to_string();
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The first sample matching `name` and all `labels` pairs.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&PromSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels.iter().all(|&(k, v)| s.label(k) == Some(v))
        })
    }
}

/// Parse Prometheus text exposition (the subset [`render`] emits;
/// unknown `#` comment lines are skipped). Returns an error naming the
/// first malformed line.
pub fn parse(text: &str) -> Result<PromText, String> {
    let mut out = PromText::default();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let fam = it.next().ok_or_else(|| format!("line {}: empty TYPE", ln + 1))?;
                let kind =
                    it.next().ok_or_else(|| format!("line {}: TYPE without kind", ln + 1))?;
                if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                    return Err(format!("line {}: unknown TYPE kind '{kind}'", ln + 1));
                }
                out.types.push((fam.to_string(), kind.to_string()));
            }
            continue; // HELP and arbitrary comments are legal
        }
        out.samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    // Split `name{labels} value` / `name value`, honouring quotes and
    // escapes inside the label block (a label value may contain `}`).
    let (name_labels, value_str) = match line.find('{') {
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let n = it.next().unwrap_or_default();
            (n, it.next().unwrap_or_default().trim())
        }
        Some(_) => {
            let mut in_quotes = false;
            let mut escaped = false;
            let mut close = None;
            for (i, c) in line.char_indices() {
                if escaped {
                    escaped = false;
                } else if in_quotes {
                    match c {
                        '\\' => escaped = true,
                        '"' => in_quotes = false,
                        _ => {}
                    }
                } else if c == '"' {
                    in_quotes = true;
                } else if c == '}' {
                    close = Some(i);
                    break;
                }
            }
            let close = close.ok_or("unterminated label block")?;
            let (nl, rest) = line.split_at(close + 1);
            (nl, rest.trim())
        }
    };
    // An OpenMetrics exemplar rides after the value as
    // ` # {labels} exemplar-value`; split it off before parsing.
    let (value_str, exemplar) = match value_str.split_once(" # ") {
        Some((v, ex)) => (v.trim(), Some(parse_exemplar(ex.trim())?)),
        None => (value_str, None),
    };
    let value: f64 = value_str
        .split_whitespace()
        .next()
        .ok_or("missing value")?
        .parse()
        .map_err(|_| format!("bad value '{value_str}'"))?;

    let (name, labels) = match name_labels.find('{') {
        None => (name_labels.trim().to_string(), Vec::new()),
        Some(open) => {
            let name = name_labels[..open].trim().to_string();
            let body = name_labels[open + 1..]
                .strip_suffix('}')
                .ok_or("unterminated label block")?;
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name '{name}'"));
    }
    Ok(PromSample { name, labels, value, exemplar })
}

fn parse_exemplar(text: &str) -> Result<PromExemplar, String> {
    let body = text.strip_prefix('{').ok_or("exemplar without label block")?;
    let (labels, rest) = body.split_once('}').ok_or("unterminated exemplar labels")?;
    let labels = parse_labels(labels)?;
    let value: f64 = rest
        .split_whitespace()
        .next()
        .ok_or("exemplar without value")?
        .parse()
        .map_err(|_| format!("bad exemplar value '{rest}'"))?;
    Ok(PromExemplar { labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators / whitespace.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err("empty label key".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label '{key}': value not quoted"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut closed = false;
        for c in chars.by_ref() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other, // covers \\ and \"
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed = true;
                break;
            } else {
                value.push(c);
            }
        }
        if !closed {
            return Err(format!("label '{key}': unterminated value"));
        }
        labels.push((key, value));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("engine.searches").add(42);
        r.counter_with("sim.requests", &[("outcome", "booked")]).add(7);
        r.counter_with("sim.requests", &[("outcome", "created")]).add(3);
        r.gauge_with("engine.cluster_rides", &[("cluster", "b2")]).set(5);
        let h = r.histogram_with("engine.search_ns", &[("tier", "t2")]);
        for v in [100u64, 2_000, 50_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn renders_types_labels_and_summaries() {
        let text = render(&sample_registry().series());
        assert!(text.contains("# TYPE engine_searches counter"), "{text}");
        assert!(text.contains("engine_searches 42"), "{text}");
        assert!(text.contains("sim_requests{outcome=\"booked\"} 7"), "{text}");
        assert!(text.contains("# TYPE engine_search_ns summary"), "{text}");
        assert!(text.contains("engine_search_ns{tier=\"t2\",quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("engine_search_ns_count{tier=\"t2\"} 3"), "{text}");
        assert!(text.contains("engine_search_ns_sum{tier=\"t2\"} 52100"), "{text}");
        assert!(text.contains("engine_cluster_rides{cluster=\"b2\"} 5"), "{text}");
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE sim_requests counter").count(), 1);
    }

    #[test]
    fn round_trips_through_the_parser() {
        let reg = sample_registry();
        let text = render(&reg.series());
        let parsed = parse(&text).expect("own exposition must parse");
        assert_eq!(
            parsed.find("sim_requests", &[("outcome", "booked")]).map(|s| s.value),
            Some(7.0)
        );
        assert_eq!(
            parsed.find("engine_search_ns_count", &[("tier", "t2")]).map(|s| s.value),
            Some(3.0)
        );
        let p99 = parsed
            .find("engine_search_ns", &[("tier", "t2"), ("quantile", "0.99")])
            .expect("p99 sample");
        assert!(p99.value >= 2_000.0, "{}", p99.value);
        assert!(parsed.types.contains(&("engine_search_ns".into(), "summary".into())));
        // Every sample the renderer emitted is present.
        assert_eq!(parsed.samples.len(), text.lines().filter(|l| !l.starts_with('#')).count());
    }

    #[test]
    fn escapes_label_values() {
        let r = Registry::new();
        r.counter_with("c", &[("path", "a\"b\\c\nd")]).inc();
        let text = render(&r.series());
        let parsed = parse(&text).expect("escaped exposition parses");
        assert_eq!(parsed.samples[0].label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("ok_name 1\nbad name 2").is_err());
        assert!(parse("x{unterminated=\"v} 1").is_err());
        assert!(parse("x{k=unquoted} 1").is_err());
        assert!(parse("x{k=\"v\"} notanumber").is_err());
        assert!(parse("9leading_digit 1").is_err());
        // Unknown comments are fine.
        assert!(parse("# anything goes\n# HELP x help text\nx 1").is_ok());
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("engine.search_ns"), "engine_search_ns");
        assert_eq!(sanitize_name("9x"), "_9x");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn exemplars_render_and_round_trip() {
        let r = Registry::new();
        let h = r.histogram_with("promtext.exemplar_ns", &[("tier", "t1")]);
        for v in [100u64, 2_000, 900_000] {
            h.record(v);
        }
        let slot =
            crate::profile::exemplar_handle("promtext.exemplar_ns", &[("tier", "t1")]);
        slot.offer(900_000, 0x2a);
        slot.offer(750_000, 0x1b);
        let text = render_with_exemplars(&r.series(), &crate::profile::exemplar_snapshot());
        assert!(
            text.contains("promtext_exemplar_ns_max{tier=\"t1\"} 900000 # {trace_id=\"0x2a\"} 900000"),
            "{text}"
        );
        let parsed = parse(&text).expect("exemplar exposition parses");
        let max = parsed.find("promtext_exemplar_ns_max", &[("tier", "t1")]).unwrap();
        assert_eq!(max.value, 900_000.0);
        let ex = max.exemplar.as_ref().expect("max carries exemplar");
        assert_eq!(ex.trace_id(), Some("0x2a"));
        assert_eq!(ex.value, 900_000.0);
        // Second-largest rides on the 0.99 quantile sample.
        let p99 = parsed
            .find("promtext_exemplar_ns", &[("tier", "t1"), ("quantile", "0.99")])
            .unwrap();
        assert_eq!(
            p99.exemplar.as_ref().and_then(|e| e.trace_id()),
            Some("0x1b")
        );
        // Samples without exemplars parse with None.
        assert!(parsed
            .find("promtext_exemplar_ns_count", &[("tier", "t1")])
            .unwrap()
            .exemplar
            .is_none());
    }

    #[test]
    fn rejects_malformed_exemplars() {
        assert!(parse("x 1 # notabrace 2").is_err());
        assert!(parse("x 1 # {k=\"v\"}").is_err());
        assert!(parse("x 1 # {k=\"v\"} notanumber").is_err());
    }
}
