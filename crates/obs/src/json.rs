//! A tiny, dependency-free JSON writer and reader.
//!
//! Sibling crates use this to emit reports (`Registry::snapshot_json`,
//! the workload simulator's `--metrics-out` dump) without a serde
//! dependency. The writer tracks nesting and comma placement; keys are
//! written in the order given, so callers control determinism. The
//! matching [`parse`] function reads JSON back into a [`JsonValue`]
//! tree — it exists for the trace tooling (`xar trace`, the CI trace
//! checker, export round-trip tests), not as a general-purpose parser.
//!
//! ```
//! use xar_obs::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("xar");
//! w.key("values");
//! w.begin_array();
//! w.number_u64(1);
//! w.number_f64(2.5);
//! w.end_array();
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"xar","values":[1,2.5]}"#);
//! ```

/// Streaming JSON writer with automatic comma handling.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Per nesting level: whether a value has already been written at
    /// this level (so the next one needs a comma).
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self { buf: String::with_capacity(256), needs_comma: Vec::new() }
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    /// Write an object key (call between `begin_object`/`end_object`,
    /// immediately before the value).
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
        // The following value must not emit another comma.
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false;
        }
    }

    /// Write a string value.
    pub fn string(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.buf, v);
    }

    /// Write an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.pre_value();
        self.buf.push_str(&v.to_string());
    }

    /// Write a signed integer value.
    pub fn number_i64(&mut self, v: i64) {
        self.pre_value();
        self.buf.push_str(&v.to_string());
    }

    /// Write a float value (non-finite values become `null`).
    pub fn number_f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Write `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    /// Splice pre-serialized JSON in as one value. The caller is
    /// responsible for `json` being a single well-formed JSON value
    /// (e.g. the output of another writer's `finish`).
    pub fn raw(&mut self, json: &str) {
        self.pre_value();
        self.buf.push_str(json);
    }

    /// Consume the writer, returning the JSON text.
    ///
    /// # Panics
    ///
    /// Panics if objects or arrays are still open.
    pub fn finish(self) -> String {
        assert!(self.needs_comma.is_empty(), "unbalanced JSON writer");
        self.buf
    }
}

/// Append `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as `u64` (if non-negative and integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry the byte offset and a short
/// description.
///
/// ```
/// use xar_obs::json::parse;
///
/// let v = parse(r#"{"a":[1,2.5,"x"],"b":null}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
/// assert_eq!(v.get("b"), Some(&xar_obs::json::JsonValue::Null));
/// ```
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // trace tooling; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.number_u64(1);
        w.key("b");
        w.begin_object();
        w.key("c");
        w.begin_array();
        w.number_i64(-2);
        w.boolean(true);
        w.null();
        w.end_array();
        w.end_object();
        w.key("d");
        w.number_f64(0.5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":{"c":[-2,true,null]},"d":0.5}"#);
    }

    #[test]
    fn escapes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(f64::NAN);
        w.number_f64(f64::INFINITY);
        w.number_f64(1.25);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,1.25]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("xar \"quoted\"\n");
        w.key("n");
        w.number_i64(-7);
        w.key("f");
        w.number_f64(2.5);
        w.key("arr");
        w.begin_array();
        w.boolean(false);
        w.null();
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("xar \"quoted\"\n"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-7.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            v.get("arr").unwrap().as_array(),
            Some(&[JsonValue::Bool(false), JsonValue::Null][..])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = parse(r#"["café", "日本語"]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_str(), Some("café"));
        assert_eq!(arr[1].as_str(), Some("日本語"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
