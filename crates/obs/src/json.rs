//! A tiny, dependency-free JSON writer.
//!
//! Sibling crates use this to emit reports (`Registry::snapshot_json`,
//! the workload simulator's `--metrics-out` dump) without a serde
//! dependency. The writer tracks nesting and comma placement; keys are
//! written in the order given, so callers control determinism.
//!
//! ```
//! use xar_obs::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("xar");
//! w.key("values");
//! w.begin_array();
//! w.number_u64(1);
//! w.number_f64(2.5);
//! w.end_array();
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"xar","values":[1,2.5]}"#);
//! ```

/// Streaming JSON writer with automatic comma handling.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Per nesting level: whether a value has already been written at
    /// this level (so the next one needs a comma).
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self { buf: String::with_capacity(256), needs_comma: Vec::new() }
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    /// Write an object key (call between `begin_object`/`end_object`,
    /// immediately before the value).
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
        // The following value must not emit another comma.
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false;
        }
    }

    /// Write a string value.
    pub fn string(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.buf, v);
    }

    /// Write an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.pre_value();
        self.buf.push_str(&v.to_string());
    }

    /// Write a signed integer value.
    pub fn number_i64(&mut self, v: i64) {
        self.pre_value();
        self.buf.push_str(&v.to_string());
    }

    /// Write a float value (non-finite values become `null`).
    pub fn number_f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Write `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    /// Splice pre-serialized JSON in as one value. The caller is
    /// responsible for `json` being a single well-formed JSON value
    /// (e.g. the output of another writer's `finish`).
    pub fn raw(&mut self, json: &str) {
        self.pre_value();
        self.buf.push_str(json);
    }

    /// Consume the writer, returning the JSON text.
    ///
    /// # Panics
    ///
    /// Panics if objects or arrays are still open.
    pub fn finish(self) -> String {
        assert!(self.needs_comma.is_empty(), "unbalanced JSON writer");
        self.buf
    }
}

/// Append `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.number_u64(1);
        w.key("b");
        w.begin_object();
        w.key("c");
        w.begin_array();
        w.number_i64(-2);
        w.boolean(true);
        w.null();
        w.end_array();
        w.end_object();
        w.key("d");
        w.number_f64(0.5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":{"c":[-2,true,null]},"d":0.5}"#);
    }

    #[test]
    fn escapes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(f64::NAN);
        w.number_f64(f64::INFINITY);
        w.number_f64(1.25);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,1.25]");
    }
}
